//! Hot-lock contention microbenchmark: all 64 threads hammer one lock
//! homed at tile (5, 6), reproducing the Figure-10 scenario. Prints the
//! per-core invalidation–acknowledgement delay map for Original vs iNPG
//! so the "distance-dependent long tail vs flat" contrast is visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p inpg --example hot_lock_contention
//! ```

use inpg::{Experiment, LockPrimitive, Mechanism, ThreadProgram};
use inpg_sim::{CoreId, LockId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let home = CoreId::new(6 * 8 + 5); // tile (5, 6)
    let programs: Vec<ThreadProgram> = (0..64)
        .map(|_| ThreadProgram::new().rounds(20, 500, LockId::new(0), 100))
        .collect();

    for mechanism in [Mechanism::Original, Mechanism::Inpg] {
        let result = Experiment::custom("hot-lock", programs.clone(), 1)
            .mechanism(mechanism)
            .primitive(LockPrimitive::Tas)
            .lock_home(home)
            .run()?;
        assert!(result.completed);

        println!("== {mechanism} ==");
        println!(
            "ROI {} cycles | Inv-Ack mean {:.1}, max {} over {} round trips | {} early invalidations",
            result.roi_cycles,
            result.invack.mean,
            result.invack.max,
            result.invack.count,
            result.noc.early_invs,
        );
        println!("per-core mean Inv-Ack delay ('-' = never invalidated, H = home):");
        for y in 0..8 {
            let mut row = String::from("  ");
            for x in 0..8 {
                let idx = y * 8 + x;
                if idx == home.index() {
                    row.push_str("    H ");
                    continue;
                }
                match result.invack.per_core_mean[idx] {
                    Some(v) => row.push_str(&format!("{v:5.1} ")),
                    None => row.push_str("    - "),
                }
            }
            println!("{row}");
        }
        println!();
    }
    println!("Paper shape: Original delays grow with distance from (5,6) and show a");
    println!("long tail; iNPG delays are flat and small (invalidation happens at the");
    println!("nearest big router instead of the home node).");
    Ok(())
}
