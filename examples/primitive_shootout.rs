//! Lock primitive shootout: runs the fluidanimate model under all five
//! primitives, Original vs iNPG, and prints ROI times, competition
//! overhead per critical section, and the iNPG benefit per primitive
//! (the Figure-13 trend: TAS benefits most, MCS least).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p inpg --example primitive_shootout
//! ```

use inpg::stats::{pct, Table};
use inpg::{Experiment, LockPrimitive, Mechanism};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::var("INPG_SCALE").map_or(0.1, |s| s.parse().unwrap_or(0.1));
    println!("fluidanimate model, 8x8 mesh, scale {scale}\n");

    let mut table = Table::new(vec![
        "primitive",
        "ROI (Original)",
        "ROI (iNPG)",
        "iNPG ROI reduction",
        "COH/CS (Original)",
        "COH/CS (iNPG)",
    ]);
    for primitive in LockPrimitive::ALL {
        let run = |mechanism: Mechanism| {
            Experiment::benchmark("fluid")
                .primitive(primitive)
                .mechanism(mechanism)
                .scale(scale)
                .run()
        };
        let base = run(Mechanism::Original)?;
        let inpg = run(Mechanism::Inpg)?;
        assert!(base.completed && inpg.completed, "{primitive}");
        table.add_row(vec![
            primitive.to_string(),
            base.roi_cycles.to_string(),
            inpg.roi_cycles.to_string(),
            pct(1.0 - inpg.roi_cycles as f64 / base.roi_cycles as f64),
            format!("{:.0}", base.avg_cs_coh),
            format!("{:.0}", inpg.avg_cs_coh),
        ]);
    }
    println!("{table}");
    println!("Paper trend (Figure 13): TAS > TTL ≈ ABQL > QSL > MCS in iNPG benefit.");
    Ok(())
}
