//! Mesh scaling study: how iNPG's benefit grows with the core count
//! (Figure 15's NoC-dimension sensitivity), on the kdtree model.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p inpg --example scaling_study
//! ```

use inpg::stats::{pct, Table};
use inpg::{Experiment, Mechanism};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = std::env::var("INPG_SCALE").map_or(0.1, |s| s.parse().unwrap_or(0.1));
    println!("kdtree model (one hot lock), QSL, scale {scale}\n");

    let mut table = Table::new(vec![
        "mesh",
        "threads",
        "ROI (Original)",
        "ROI (iNPG)",
        "iNPG ROI reduction",
        "Inv-Ack mean orig/iNPG",
    ]);
    for (w, h) in [(2u8, 2u8), (4, 4), (8, 8), (16, 16)] {
        let run = |mechanism: Mechanism| {
            Experiment::benchmark("kdtree")
                .mechanism(mechanism)
                .mesh(w, h)
                .scale(scale)
                .run()
        };
        let base = run(Mechanism::Original)?;
        let inpg = run(Mechanism::Inpg)?;
        assert!(base.completed && inpg.completed, "{w}x{h}");
        table.add_row(vec![
            format!("{w}x{h}"),
            (w as usize * h as usize).to_string(),
            base.roi_cycles.to_string(),
            inpg.roi_cycles.to_string(),
            pct(1.0 - inpg.roi_cycles as f64 / base.roi_cycles as f64),
            format!("{:.1} / {:.1}", base.invack.mean, inpg.invack.mean),
        ]);
    }
    println!("{table}");
    println!("Paper trend (Figure 15): the benefit grows with the mesh — more threads");
    println!("compete for the same lock and invalidation distances grow, so early");
    println!("in-network invalidation saves more.");
    Ok(())
}
