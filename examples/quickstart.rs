//! Quickstart: compare the four mechanisms of the paper (Original, OCOR,
//! iNPG, iNPG+OCOR) on the freqmine model and print the headline
//! metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p inpg --example quickstart
//! ```

use inpg::stats::{pct, speedup, Table};
use inpg::{Experiment, Mechanism};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scale keeps the demo under a minute; raise it (up to 1.0, the
    // paper's Figure-8 CS counts) for a full-length run.
    let scale = std::env::var("INPG_SCALE").map_or(0.1, |s| s.parse().unwrap_or(0.1));

    println!("freqmine model, 8x8 mesh, QSL locks, scale {scale}\n");

    let mut results = Vec::new();
    for mechanism in Mechanism::ALL {
        let result = Experiment::benchmark("freq")
            .mechanism(mechanism)
            .scale(scale)
            .run()?;
        assert!(result.completed, "{mechanism} hit the cycle bound");
        results.push(result);
    }

    let baseline_roi = results[0].roi_cycles as f64;
    let baseline_cs = results[0].cs_access_time();

    let mut table = Table::new(vec![
        "mechanism",
        "ROI cycles",
        "rel. ROI",
        "CS expedition",
        "COH share",
        "Inv-Ack mean",
        "early invs",
    ]);
    for r in &results {
        let (_, coh, _) = r.phase_shares();
        table.add_row(vec![
            r.mechanism.to_string(),
            r.roi_cycles.to_string(),
            pct(r.roi_cycles as f64 / baseline_roi),
            speedup(baseline_cs / r.cs_access_time()),
            pct(coh),
            format!("{:.1}", r.invack.mean),
            r.noc.early_invs.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "iNPG stopped {} lock requests at big routers and relayed {} early \
         acknowledgements to the home nodes.",
        results[2].barrier.requests_stopped, results[2].barrier.acks_relayed
    );
    Ok(())
}
