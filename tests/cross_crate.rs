//! Workspace-level integration tests: exercise the full public API the
//! way the benchmark harness does, and pin the paper-shape properties
//! that must hold at any scale.

use inpg::sim::{CoreId, LockId};
use inpg::{Experiment, LockPrimitive, Mechanism, ThreadProgram};

fn hot_lock(threads: usize, rounds: usize) -> Vec<ThreadProgram> {
    (0..threads)
        .map(|_| ThreadProgram::new().rounds(rounds, 400, LockId::new(0), 80))
        .collect()
}

#[test]
fn table1_defaults_match_the_paper() {
    let cfg = inpg::SystemConfig::paper_default();
    assert_eq!(cfg.cores(), 64, "64 cores on an 8x8 mesh");
    assert_eq!(cfg.noc.width, 8);
    assert_eq!(cfg.noc.height, 8);
    assert_eq!(cfg.l1_hit_latency, 2, "2-cycle L1");
    assert_eq!(cfg.l2_latency, 6, "6-cycle L2");
    assert_eq!(cfg.retry_budget, 128, "128 retries in the spinning phase");
    assert_eq!(cfg.noc.vnets, 4, "4 virtual networks");
    assert_eq!(cfg.noc.vc_depth, 4, "4 flits per VC");
    assert_eq!(cfg.noc.data_flits, 8, "one cache block = one 8-flit packet");
    assert_eq!(cfg.noc.barrier_entries, 16, "16-entry locking barrier table");
    assert_eq!(cfg.noc.barrier_ttl, 128);
    assert_eq!(cfg.noc.placement.count(8, 8), 32, "32 big routers interleaved");
    assert_eq!(cfg.primitive, LockPrimitive::Qsl, "QSL is the default primitive");
}

#[test]
fn figure10_shape_inpg_flattens_invack_delays() {
    let home = CoreId::new(6 * 8 + 5); // tile (5,6) as in the paper
    let run = |mechanism: Mechanism| {
        Experiment::custom("fig10", hot_lock(64, 6), 1)
            .mechanism(mechanism)
            .primitive(LockPrimitive::Tas)
            .lock_home(home)
            .run()
            .expect("valid experiment")
    };
    let original = run(Mechanism::Original);
    let inpg = run(Mechanism::Inpg);
    assert!(original.completed && inpg.completed);
    assert!(original.invack.count > 0 && inpg.invack.count > 0);

    // iNPG shortens both the mean and the tail (p95 of the histogram —
    // the paper's "long tail is eliminated").
    assert!(
        inpg.invack.mean < original.invack.mean,
        "mean {:.1} !< {:.1}",
        inpg.invack.mean,
        original.invack.mean
    );
    assert!(
        inpg.invack.percentile(95.0) < original.invack.percentile(95.0),
        "p95 {} !< {}",
        inpg.invack.percentile(95.0),
        original.invack.percentile(95.0)
    );

    // Original delays grow with distance from the home tile; iNPG's
    // dependence is much weaker (the paper's Figures 10a vs 10c).
    let distance_spread = |r: &inpg::ExperimentResult| {
        let (hx, hy) = (5i32, 6i32);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for (idx, mean) in r.invack.per_core_mean.iter().enumerate() {
            let Some(mean) = mean else { continue };
            let (x, y) = ((idx % 8) as i32, (idx / 8) as i32);
            let dist = (x - hx).abs() + (y - hy).abs();
            if dist <= 3 {
                near.push(*mean);
            } else if dist >= 7 {
                far.push(*mean);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        avg(&far) - avg(&near)
    };
    let orig_spread = distance_spread(&original);
    let inpg_spread = distance_spread(&inpg);
    assert!(
        orig_spread > 0.0,
        "Original delays should grow with distance (spread {orig_spread:.1})"
    );
    assert!(
        inpg_spread < orig_spread,
        "iNPG should flatten the distance dependence ({inpg_spread:.1} !< {orig_spread:.1})"
    );
}

#[test]
fn more_big_routers_stop_more_requests() {
    let mut stops_by_count = Vec::new();
    for count in [4usize, 16, 64] {
        let r = Experiment::custom("deploy", hot_lock(64, 4), 1)
            .mechanism(Mechanism::Inpg)
            .primitive(LockPrimitive::Tas)
            .big_routers(count)
            .run()
            .expect("valid experiment");
        assert!(r.completed);
        stops_by_count.push(r.barrier.requests_stopped);
    }
    assert!(
        stops_by_count[0] < stops_by_count[2],
        "64 big routers should stop more than 4: {stops_by_count:?}"
    );
}

#[test]
fn experiment_results_are_deterministic() {
    let run = || {
        Experiment::benchmark("dedup")
            .mechanism(Mechanism::Inpg)
            .mesh(4, 4)
            .scale(0.05)
            .run()
            .expect("valid experiment")
    };
    let a = run();
    let b = run();
    assert_eq!(a.roi_cycles, b.roi_cycles);
    assert_eq!(a.cs_count, b.cs_count);
    assert_eq!(a.noc.delivered, b.noc.delivered);
    assert_eq!(a.barrier.requests_stopped, b.barrier.requests_stopped);
}

#[test]
fn all_mechanisms_and_primitives_complete_on_a_benchmark() {
    for mechanism in Mechanism::ALL {
        for primitive in [LockPrimitive::Tas, LockPrimitive::Qsl] {
            let r = Experiment::benchmark("can")
                .mechanism(mechanism)
                .primitive(primitive)
                .mesh(4, 4)
                .scale(0.05)
                .run()
                .expect("valid experiment");
            assert!(r.completed, "{mechanism}/{primitive}");
            assert!(r.cs_count > 0);
            let (p, c, s) = r.phase_shares();
            assert!((p + c + s - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn hardware_model_is_reachable_through_the_facade() {
    let chip = inpg::hardware::chip(&inpg::noc::NocConfig::paper_default());
    assert_eq!(chip.big_routers, 32);
    assert!(chip.power_overhead > 0.0 && chip.power_overhead < 0.01);
}

#[test]
fn parallel_only_workloads_are_untouched_by_mechanisms() {
    let programs = inpg::workloads::micro::embarrassingly_parallel(16, 5_000);
    let mut rois = Vec::new();
    for mechanism in Mechanism::ALL {
        let r = Experiment::custom("parallel", programs.clone(), 1)
            .mechanism(mechanism)
            .mesh(4, 4)
            .run()
            .expect("valid experiment");
        assert!(r.completed);
        rois.push(r.roi_cycles);
    }
    assert!(
        rois.iter().all(|&x| x == rois[0]),
        "no mechanism may perturb synchronization-free code: {rois:?}"
    );
}
