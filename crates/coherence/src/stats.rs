//! Coherence-level instrumentation: invalidation round trips, lock
//! transaction occupancy, directory counters.

use inpg_sim::CoreId;

/// Accumulates invalidation–acknowledgement round-trip delays, the metric
/// of the paper's Figure 10.
///
/// For the Original system a round trip runs from the home node
/// generating an `Inv` to the winner receiving the `InvAck`; under iNPG
/// an early round trip runs from the big router generating the `Inv` to
/// the acknowledgement returning to that router. Delays are attributed to
/// the invalidated core so the per-core delay map can be drawn.
#[derive(Debug, Clone)]
pub struct InvAckRoundTrips {
    sum: Vec<u64>,
    count: Vec<u64>,
    max: u64,
    /// Histogram of delays; bucket `i` counts round trips of exactly `i`
    /// cycles, with the last bucket saturating.
    histogram: Vec<u64>,
}

impl InvAckRoundTrips {
    /// Creates an accumulator for `cores` cores with `max_bucket`
    /// histogram buckets.
    pub fn new(cores: usize, max_bucket: usize) -> Self {
        InvAckRoundTrips {
            sum: vec![0; cores],
            count: vec![0; cores],
            max: 0,
            histogram: vec![0; max_bucket + 1],
        }
    }

    /// Records one round trip of `delay` cycles for `core`.
    pub fn record(&mut self, core: CoreId, delay: u64) {
        if core.index() < self.sum.len() {
            self.sum[core.index()] += delay;
            self.count[core.index()] += 1;
        }
        self.max = self.max.max(delay);
        let bucket = (delay as usize).min(self.histogram.len() - 1);
        self.histogram[bucket] += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &InvAckRoundTrips) {
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        for (a, b) in self.count.iter_mut().zip(&other.count) {
            *a += b;
        }
        self.max = self.max.max(other.max);
        for (a, b) in self.histogram.iter_mut().zip(&other.histogram) {
            *a += b;
        }
    }

    /// Mean delay for `core`, or `None` if it was never invalidated.
    pub fn mean_for(&self, core: CoreId) -> Option<f64> {
        let i = core.index();
        if i >= self.count.len() || self.count[i] == 0 {
            return None;
        }
        Some(self.sum[i] as f64 / self.count[i] as f64)
    }

    /// Mean delay over every recorded round trip.
    pub fn mean(&self) -> f64 {
        let total: u64 = self.count.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.sum.iter().sum::<u64>() as f64 / total as f64
    }

    /// Largest recorded delay.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Total recorded round trips.
    pub fn total_count(&self) -> u64 {
        self.count.iter().sum()
    }

    /// The histogram buckets (`bucket[i]` = trips of `i` cycles; last
    /// bucket saturates).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }
}

/// Per-L1 counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores and atomic RMWs issued.
    pub stores: u64,
    /// Hits served locally.
    pub hits: u64,
    /// Misses that produced coherence traffic.
    pub misses: u64,
    /// GetX requests issued.
    pub getx_issued: u64,
    /// GetS requests issued.
    pub gets_issued: u64,
    /// Invalidations received (home- or router-generated).
    pub invs_received: u64,
    /// Cycles spent with a lock-variable transaction outstanding — the
    /// per-core lock coherence overhead (LCO) numerator.
    pub lock_txn_cycles: u64,
    /// Number of lock-variable transactions (issue → completion).
    pub lock_txns: u64,
    /// Cycles spent with any memory transaction outstanding.
    pub mem_txn_cycles: u64,
    /// Conditional lock RMWs completed as demoted failures.
    pub demoted_fails: u64,
    /// Demoted RMWs that observed a success value and retried with a
    /// full exclusive request.
    pub demote_retries: u64,
    /// Owner forwards that arrived after ownership moved and were
    /// bounced back to the home node.
    pub forwards_bounced: u64,
    /// Sum and count of read-miss transaction latencies.
    pub read_miss_lat: u64,
    /// Read-miss transactions.
    pub read_misses: u64,
    /// Sum and count of write/RMW-miss transaction latencies.
    pub write_miss_lat: u64,
    /// Write/RMW-miss transactions.
    pub write_misses: u64,
    /// Recovery retransmissions fired (abort-and-reissue GetX).
    pub retransmits: u64,
    /// Invalidation acknowledgements from an aborted request epoch,
    /// dropped by the recovery filter.
    pub stale_acks_dropped: u64,
    /// Duplicate exclusive grants dropped while recovering.
    pub dup_grants_dropped: u64,
    /// Stale responses for a completed recovery transaction absorbed by
    /// the post-completion guard.
    pub stale_absorbed: u64,
    /// Exclusive grants from an aborted request epoch, dropped by the
    /// recovery filter (a slow grant lost its race with the retransmit).
    pub stale_grants_dropped: u64,
    /// Retransmission timeouts that had already reached the backoff
    /// ceiling when they doubled.
    pub backoff_ceiling_hits: u64,
    /// Recovery attempts abandoned because the retry budget ran out.
    pub recovery_exhausted: u64,
}

/// Per-home-bank counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomeStats {
    /// Requests processed (GetS + GetX + relayed).
    pub requests: u64,
    /// GetX (incl. relayed) processed.
    pub getx: u64,
    /// Invalidations the home node itself sent.
    pub invs_sent: u64,
    /// Invalidations skipped because a big router performed them early.
    pub invs_saved_by_early: u64,
    /// Relayed early acknowledgements forwarded to a winner.
    pub relays_forwarded: u64,
    /// Relayed acknowledgements consumed from the early-record store.
    pub early_acks_consumed: u64,
    /// Relayed acknowledgements that matched nothing and were parked.
    pub acks_parked: u64,
    /// Failable lock requests demoted to shared-copy service.
    pub demotions: u64,
    /// Cycles a request spent queued behind a busy block, summed.
    pub queue_wait_cycles: u64,
    /// Peak length of any block's request queue.
    pub max_queue_len: u64,
    /// Retransmitted requests recognised as duplicates and dropped.
    pub dup_requests_dropped: u64,
    /// Exclusive grants re-sent to a retransmitting winner.
    pub recovery_regrants: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_record_and_mean() {
        let mut rt = InvAckRoundTrips::new(4, 128);
        rt.record(CoreId::new(0), 10);
        rt.record(CoreId::new(0), 20);
        rt.record(CoreId::new(2), 40);
        assert_eq!(rt.mean_for(CoreId::new(0)), Some(15.0));
        assert_eq!(rt.mean_for(CoreId::new(1)), None);
        assert!((rt.mean() - (70.0 / 3.0)).abs() < 1e-9);
        assert_eq!(rt.max(), 40);
        assert_eq!(rt.total_count(), 3);
        assert_eq!(rt.histogram()[10], 1);
        assert_eq!(rt.histogram()[40], 1);
    }

    #[test]
    fn histogram_saturates() {
        let mut rt = InvAckRoundTrips::new(1, 16);
        rt.record(CoreId::new(0), 500);
        assert_eq!(rt.histogram()[16], 1);
        assert_eq!(rt.max(), 500);
    }

    #[test]
    fn merge_combines() {
        let mut a = InvAckRoundTrips::new(2, 8);
        let mut b = InvAckRoundTrips::new(2, 8);
        a.record(CoreId::new(0), 4);
        b.record(CoreId::new(0), 6);
        b.record(CoreId::new(1), 2);
        a.merge(&b);
        assert_eq!(a.mean_for(CoreId::new(0)), Some(5.0));
        assert_eq!(a.total_count(), 3);
    }

    #[test]
    fn out_of_range_core_still_counts_globally() {
        let mut rt = InvAckRoundTrips::new(1, 8);
        rt.record(CoreId::new(9), 3);
        assert_eq!(rt.total_count(), 0, "per-core table untouched");
        assert_eq!(rt.histogram()[3], 1, "histogram still sees it");
    }
}
