//! The home node: one shared-L2 bank with its coherence directory.
//!
//! Each tile hosts one bank; blocks interleave across banks via
//! [`HomeMap`](crate::HomeMap). The directory serializes transactions per
//! block: while a transaction is in flight the block is *busy* and later
//! requests queue in FIFO order — this queue is precisely the home-node
//! serialization the paper identifies as the source of lock coherence
//! overhead.
//!
//! Like the L1 (see [`l1`](crate::l1)), the home node is split into the
//! **pure, timing-free directory state machine** [`HomeCore`] — whose
//! step function [`HomeCore::process`] maps one message to state updates
//! plus an [`HomeOutcome`] of emissions and bookkeeping notes — and the
//! timed wrapper [`HomeBank`] that owns the inboxes, the delayed-response
//! wheel and the statistics. The `inpg-analysis` model checker enumerates
//! `HomeCore` directly.
//!
//! # iNPG support
//!
//! Big routers convert stopped lock `GetX` requests into
//! [`RelayedGetX`](crate::CoherenceMsg::RelayedGetX) messages and relay
//! the early invalidation acknowledgements as
//! [`RelayedInvAck`](crate::CoherenceMsg::RelayedInvAck)s. The home node:
//!
//! * treats a `RelayedGetX` as the loser's queued lock request **and** as
//!   notice that the loser's L1 was early-invalidated (keyed by the
//!   interception cycle `stopped_at`);
//! * when processing a winner's `GetX`, skips sending its own `Inv` to
//!   sharers known to be early-invalidated — it either forwards the
//!   already-arrived acknowledgement on their behalf or marks the
//!   transaction to forward it on arrival;
//! * deduplicates: a relayed acknowledgement matching no record is parked
//!   and only consumed by the matching `RelayedGetX` notification, so a
//!   duplicate (the loser also answered a home `Inv` directly) can never
//!   satisfy a later invalidation wrongly.

use crate::err::CoherenceError;
use crate::msg::{AckTarget, CoherenceMsg, Envelope};
use crate::stats::{HomeStats, InvAckRoundTrips};
use inpg_sim::{coverage, Addr, CoreId, Cycle, EventWheel};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Directory state of one block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DirState {
    /// No cached copies; the L2 value is authoritative.
    Unowned,
    /// Clean copies at the listed cores; the L2 value is current.
    ///
    /// With owner-retention MOESI (the first reader is granted E and a
    /// forwarding owner stays in O), a block that has cached copies
    /// always has an owner, so this state is only reachable if a future
    /// extension adds owner write-back/downgrade. Kept for protocol
    /// totality.
    Shared(BTreeSet<CoreId>),
    /// `owner` holds the (possibly dirty) block; `sharers` hold copies.
    Owned {
        /// The forwarding owner (MOESI O).
        owner: CoreId,
        /// Cores holding clean copies.
        sharers: BTreeSet<CoreId>,
    },
    /// `owner` holds the block exclusively (E or M).
    Exclusive {
        /// The exclusive owner.
        owner: CoreId,
    },
}

/// Early-invalidation knowledge about one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EarlyRec {
    /// The `RelayedGetX` notification arrived; the acknowledgement is in
    /// flight to us.
    Notified {
        /// Interception cycle, the matching key.
        stopped_at: Cycle,
    },
    /// Both the notification and the relayed acknowledgement arrived.
    AckArrived {
        /// Interception cycle, the matching key.
        stopped_at: Cycle,
    },
}

/// A queued request waiting for the block to become free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueuedReq {
    /// The requesting core.
    pub requester: CoreId,
    /// Exclusive (GetX) or read (GetS).
    pub exclusive: bool,
    /// Exclusive requests that may be demoted to a shared-copy service
    /// when the block is owned (conditional lock RMWs).
    pub failable: bool,
    /// Stopped by a big router: the request provably lost an in-network
    /// race, so it is demote-eligible even if the block is idle when it
    /// is finally processed.
    pub relayed: bool,
    /// When the request arrived (queue-wait accounting).
    pub queued_at: Cycle,
    /// The requester's per-core issue sequence number (0 for reads,
    /// which are never retransmitted). Recovery reissues of a queued
    /// request update this in place instead of queueing twice.
    pub seq: u64,
}

/// The in-flight transaction blocking a block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BusyTxn {
    /// A read being served by an owner forward or an E grant.
    Read {
        /// The reader the home waits on.
        requester: CoreId,
    },
    /// An exclusive access: `winner` is collecting data + acks.
    Exclusive {
        /// The core collecting data and acknowledgements.
        winner: CoreId,
        /// The sequence number of the winner's request epoch: stamped as
        /// `for_seq` on every invalidation and forwarded acknowledgement
        /// of this transaction, and compared against retransmits.
        winner_seq: u64,
        /// Sharers whose acknowledgement will arrive as a relayed early
        /// ack; maps to the interception cycle for matching.
        pending_relay: BTreeMap<CoreId, Cycle>,
        /// Sharers we sent our own `Inv` to (their relayed duplicates,
        /// if any, must be dropped).
        direct_inv: BTreeSet<CoreId>,
        /// Whether the winner's data payload came from the home's L2
        /// (no prior owner). When false the payload lives with the old
        /// owner (forward) or the winner itself (upgrade in place), so a
        /// recovery regrant must not fabricate one from stale L2 data.
        granted_from_l2: bool,
    },
}

/// Directory entry of one block: stable state, in-flight transaction,
/// serialization queue and early-invalidation records.
#[derive(Debug, Default, Clone, PartialEq, Eq, Hash)]
pub struct DirEntry {
    /// Stable directory state (`None` = never touched = Unowned).
    pub state: Option<DirState>,
    /// The transaction currently blocking the block.
    pub busy: Option<BusyTxn>,
    /// FIFO of requests waiting for the block.
    pub queue: VecDeque<QueuedReq>,
    /// Early-invalidation records per core.
    pub early: BTreeMap<CoreId, EarlyRec>,
    /// Relayed acknowledgements that matched no record yet: they wait for
    /// their `RelayedGetX` notification (never satisfy invalidations
    /// directly).
    pub parked_acks: Vec<(CoreId, Cycle)>,
    /// Highest exclusive-request sequence number admitted per core: the
    /// retransmission dedup watermark. A `GetX` at or below its
    /// requester's watermark is a duplicate and is dropped.
    pub last_seq: BTreeMap<CoreId, u64>,
}

impl DirEntry {
    /// The stable state, defaulting to Unowned.
    pub fn state(&self) -> &DirState {
        self.state.as_ref().unwrap_or(&DirState::Unowned)
    }
}

/// When an emitted message leaves the home node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitAt {
    /// This cycle (control messages, forwards, aggregated acks).
    Now,
    /// At the given cycle (L2-latency data responses, the staggered
    /// invalidation walk).
    At(Cycle),
}

/// One outgoing message plus its departure schedule.
#[derive(Debug, Clone)]
pub struct Emit {
    /// The message and destination.
    pub env: Envelope,
    /// When it leaves.
    pub at: EmitAt,
}

/// Bookkeeping events the pure directory reports; the timed wrapper maps
/// them onto [`HomeStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeNote {
    /// A request (GetS/GetX/RelayedGetX) was accepted for processing.
    Request,
    /// The request was a GetX (plain or relayed).
    GetXSeen,
    /// The home sent its own invalidation.
    InvSent,
    /// An invalidation was skipped because a big router performed it
    /// early.
    InvSavedEarly,
    /// An already-arrived early acknowledgement was consumed.
    EarlyAckConsumed,
    /// A relayed acknowledgement was forwarded to the winner.
    RelayForwarded,
    /// A relayed acknowledgement matched nothing and was parked.
    AckParked,
    /// A failable lock request was demoted to shared-copy service.
    Demotion,
    /// A request left the queue after waiting this many cycles.
    QueueWait(u64),
    /// The block's queue reached this length.
    QueueLen(u64),
    /// An early-invalidation round trip (router Inv generation to router
    /// ack arrival) completed.
    RelayRoundTrip {
        /// The invalidated core.
        from: CoreId,
        /// Round-trip delay in cycles.
        delay: u64,
    },
    /// A retransmitted request was recognised as a duplicate (sequence
    /// number at or below the dedup watermark) and dropped.
    DupRequestDropped,
    /// The in-flight winner retransmitted with a newer sequence number:
    /// its exclusive grant was re-sent and the sharers re-invalidated.
    RecoveryRegrant,
}

/// Everything one pure directory step produced.
#[derive(Debug, Default)]
pub struct HomeOutcome {
    /// Messages to emit, each with its departure schedule.
    pub emits: Vec<Emit>,
    /// Statistics events.
    pub notes: Vec<HomeNote>,
}

impl HomeOutcome {
    fn now(&mut self, env: Envelope) {
        self.emits.push(Emit { env, at: EmitAt::Now });
    }

    fn at(&mut self, when: Cycle, env: Envelope) {
        self.emits.push(Emit { env, at: EmitAt::At(when) });
    }
}

/// The pure, timing-free directory state machine of one home bank.
///
/// `l2_latency` is configuration, not state: the pure step functions
/// stamp it onto data emissions so the timed wrapper (and the model
/// checker, which sets it to 0) need no latency knowledge of their own.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HomeCore {
    core: CoreId,
    l2_latency: u64,
    /// Directory entries by block address (deterministic iteration:
    /// replay and fault-seeded runs must not depend on hash order).
    pub entries: BTreeMap<Addr, DirEntry>,
    /// L2-resident block values.
    pub data: BTreeMap<Addr, u64>,
}

impl HomeCore {
    /// Creates the pure directory for the bank on `core`.
    pub fn new(core: CoreId, l2_latency: u64) -> Self {
        HomeCore { core, l2_latency, entries: BTreeMap::new(), data: BTreeMap::new() }
    }

    /// The tile this bank lives on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Initializes the L2-resident value of a block (warm start).
    pub fn init_block(&mut self, addr: Addr, value: u64) {
        self.data.insert(addr.block(), value);
    }

    /// The L2-resident value of a block (stale while an L1 owns it).
    pub fn l2_value(&self, addr: Addr) -> u64 {
        self.data.get(&addr.block()).copied().unwrap_or(0)
    }

    /// Whether no block is busy or holding queued requests.
    pub fn is_quiet(&self) -> bool {
        self.entries.values().all(|e| e.busy.is_none() && e.queue.is_empty())
    }

    /// Processes one message. `arrived` is when it reached the bank
    /// (queue-wait accounting); `now` is the processing cycle. The model
    /// checker passes [`Cycle::ZERO`] for both — cycles inside the pure
    /// state are correlation tags, never compared against wall-clock.
    ///
    /// # Errors
    ///
    /// [`CoherenceError`] when the message is impossible at a home node
    /// in the current directory state.
    pub fn process(
        &mut self,
        msg: CoherenceMsg,
        arrived: Cycle,
        now: Cycle,
    ) -> Result<HomeOutcome, CoherenceError> {
        coverage::record(coverage::HOME_PROCESS.id(msg.variant_index()));
        let mut o = HomeOutcome::default();
        match msg {
            CoherenceMsg::GetS { addr, requester } => {
                o.notes.push(HomeNote::Request);
                self.admit(
                    addr,
                    QueuedReq {
                        requester,
                        exclusive: false,
                        failable: false,
                        relayed: false,
                        queued_at: arrived,
                        seq: 0,
                    },
                    now,
                    &mut o,
                );
            }
            CoherenceMsg::GetX { addr, requester, failable, seq, .. } => {
                o.notes.push(HomeNote::Request);
                o.notes.push(HomeNote::GetXSeen);
                self.admit_exclusive(
                    addr,
                    QueuedReq {
                        requester,
                        exclusive: true,
                        failable,
                        relayed: false,
                        queued_at: arrived,
                        seq,
                    },
                    now,
                    &mut o,
                );
            }
            CoherenceMsg::RelayedGetX { addr, requester, stopped_at, failable, seq, .. } => {
                o.notes.push(HomeNote::Request);
                o.notes.push(HomeNote::GetXSeen);
                self.note_early_inv(addr, requester, stopped_at);
                self.admit_exclusive(
                    addr,
                    QueuedReq {
                        requester,
                        exclusive: true,
                        failable,
                        relayed: true,
                        queued_at: arrived,
                        seq,
                    },
                    now,
                    &mut o,
                );
            }
            CoherenceMsg::RelayedInvAck { addr, from, inv_sent_at, relayed_at } => {
                // Figure 10 metric for iNPG: router Inv -> router ack.
                o.notes.push(HomeNote::RelayRoundTrip {
                    from,
                    delay: relayed_at.saturating_since(inv_sent_at),
                });
                self.on_relayed_ack(addr, from, inv_sent_at, &mut o);
            }
            CoherenceMsg::UnblockS { addr, from } | CoherenceMsg::UnblockX { addr, from } => {
                self.on_unblock(addr, from, now, &mut o)?;
            }
            other @ (CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetX { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::Data { .. }
            | CoherenceMsg::AckCount { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::OsWakeup { .. }) => {
                return Err(CoherenceError::UnexpectedAtHome { msg: other });
            }
        }
        Ok(o)
    }

    /// Admits an exclusive request through the retransmission dedup
    /// filter. Recovery reissues carry a strictly higher per-core
    /// sequence number than the attempt they replace, so anything at or
    /// below the requester's watermark is the same attempt arriving
    /// twice and must be dropped for retransmits to stay idempotent.
    fn admit_exclusive(&mut self, addr: Addr, req: QueuedReq, now: Cycle, o: &mut HomeOutcome) {
        let entry = self.entries.entry(addr).or_default();
        if entry.last_seq.get(&req.requester).is_some_and(|w| req.seq <= *w) {
            o.notes.push(HomeNote::DupRequestDropped);
            return;
        }
        // The in-flight winner reissuing under a newer sequence number:
        // its grant or an acknowledgement was lost, so the transaction
        // is re-served rather than queued behind itself.
        if matches!(
            &entry.busy,
            Some(BusyTxn::Exclusive { winner, .. }) if *winner == req.requester
        ) {
            self.regrant(addr, req, now, o);
            return;
        }
        // Already queued: the reissue replaces the queued attempt in its
        // FIFO slot instead of queueing the same core twice.
        if let Some(queued) =
            entry.queue.iter_mut().find(|q| q.requester == req.requester && q.exclusive)
        {
            queued.seq = req.seq;
            queued.failable = req.failable;
            entry.last_seq.insert(req.requester, req.seq);
            o.notes.push(HomeNote::DupRequestDropped);
            return;
        }
        entry.last_seq.insert(req.requester, req.seq);
        self.admit(addr, req, now, o);
    }

    /// Re-serves the in-flight winner's exclusive transaction after a
    /// recovery reissue: every sharer the transaction still tracks is
    /// re-invalidated under the new sequence number and the grant is
    /// re-sent, so a lost grant or lost invalidation acknowledgements
    /// are regenerated from directory state alone.
    fn regrant(&mut self, addr: Addr, req: QueuedReq, now: Cycle, o: &mut HomeOutcome) {
        let value = self.l2_value(addr);
        let l2_latency = self.l2_latency;
        let home = self.core;
        let entry = self.entries.entry(addr).or_default();
        let Some(BusyTxn::Exclusive {
            winner,
            winner_seq,
            pending_relay,
            direct_inv,
            granted_from_l2,
        }) = &mut entry.busy
        else {
            unreachable!("regrant without an exclusive transaction");
        };
        debug_assert_eq!(*winner, req.requester, "regrant for a non-winner");
        o.notes.push(HomeNote::RecoveryRegrant);
        // Relayed early acks from the aborted epoch would reach the
        // winner stamped with a dead sequence number: fold those sharers
        // into the direct set and re-invalidate everyone. An L1
        // acknowledges an Inv even for a line it no longer holds, so
        // re-invalidating an already-invalid sharer is harmless.
        while let Some((relayed, _)) = pending_relay.pop_first() {
            direct_inv.insert(relayed);
        }
        *winner_seq = req.seq;
        for (nth, target) in direct_inv.iter().enumerate() {
            o.notes.push(HomeNote::InvSent);
            let sent_at = now + nth as u64;
            o.at(
                sent_at,
                Envelope::to_core(
                    *target,
                    CoherenceMsg::Inv {
                        addr,
                        ack_to: AckTarget::Core(req.requester),
                        home,
                        sent_at,
                        for_seq: req.seq,
                    },
                ),
            );
        }
        let acks_expected = direct_inv.len() as u16;
        let granted_from_l2 = *granted_from_l2;
        entry.last_seq.insert(req.requester, req.seq);
        if granted_from_l2 {
            // The original grant came from L2, and nobody else can have
            // dirtied the block while it is busy, so the L2 payload is
            // still the authoritative value.
            o.at(
                now + l2_latency,
                Envelope::to_core(
                    req.requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected,
                        exclusive: true,
                        needs_unblock: true,
                        for_seq: Some(req.seq),
                    },
                ),
            );
        } else {
            // The payload lives with the old owner (a forward that is
            // slow but never dropped — no fault kind targets data
            // responses) or with the winner itself (upgrade in place).
            // Serving stale L2 data here would let the winner complete
            // with a value the old owner's dirty copy supersedes, so the
            // regrant carries only the refreshed ack bookkeeping and the
            // winner completes once the true payload is in hand.
            o.now(Envelope::to_core(
                req.requester,
                CoherenceMsg::AckCount { addr, acks_expected, for_seq: req.seq },
            ));
        }
    }

    /// Queues or immediately processes a request.
    fn admit(&mut self, addr: Addr, req: QueuedReq, now: Cycle, o: &mut HomeOutcome) {
        let entry = self.entries.entry(addr).or_default();
        if entry.busy.is_some() {
            entry.queue.push_back(req);
            o.notes.push(HomeNote::QueueLen(entry.queue.len() as u64));
        } else {
            debug_assert!(entry.queue.is_empty(), "idle block must have an empty queue");
            // A request admitted to an idle block never lost a race: it
            // gets the full service (it may be the next winner).
            self.start_request(addr, req, false, now, o);
        }
    }

    /// Starts one request. `lost_race` is true when the request was
    /// queued behind a concurrent exclusive transaction — i.e. it
    /// competed for the lock and lost.
    fn start_request(
        &mut self,
        addr: Addr,
        req: QueuedReq,
        lost_race: bool,
        now: Cycle,
        o: &mut HomeOutcome,
    ) {
        o.notes.push(HomeNote::QueueWait(now.saturating_since(req.queued_at)));
        if req.exclusive {
            // A failable (conditional lock RMW) request that *lost the
            // race* to a concurrent winner is demoted: the winner sends
            // it a valid shared copy (now showing the lock occupied) and
            // the RMW fails without writing — the paper's Figure 4
            // step 4. Requests that did not race anyone get the full
            // service, since they may be the next legitimate winner.
            if req.failable && (lost_race || req.relayed) {
                let entry = self.entries.entry(addr).or_default();
                let owner = match entry.state() {
                    DirState::Exclusive { owner } => Some(*owner),
                    DirState::Owned { owner, .. } => Some(*owner),
                    DirState::Unowned | DirState::Shared(_) => None,
                };
                if let Some(owner) = owner {
                    if owner != req.requester {
                        // This request's early-invalidation record (if it
                        // was stopped by a big router) is consumed here:
                        // the requester is about to receive a fresh copy,
                        // so a leftover record must never suppress a
                        // future invalidation of that fresh copy.
                        entry.early.remove(&req.requester);
                        o.notes.push(HomeNote::Demotion);
                        self.forward_read(addr, owner, req.requester, o);
                        return;
                    }
                }
            }
            self.start_exclusive(addr, req.requester, req.seq, now, o);
        } else {
            self.start_read(addr, req.requester, now, o);
        }
    }

    /// Non-blocking shared-copy service from the current owner: the
    /// requester joins the sharer set and the owner forwards the data;
    /// the home does not enter a busy state.
    fn forward_read(&mut self, addr: Addr, owner: CoreId, requester: CoreId, o: &mut HomeOutcome) {
        let entry = self.entries.entry(addr).or_default();
        // Take the sharer set out of the state instead of cloning it:
        // spin-read storms hit this path once per reader, and a BTreeSet
        // clone here is a per-request allocation the state machine does
        // not need — the state is rebuilt (with the set moved back in)
        // on the next line.
        let mut sharers = match entry.state.take() {
            Some(DirState::Owned { sharers, .. }) => sharers,
            Some(DirState::Unowned | DirState::Shared(_) | DirState::Exclusive { .. }) | None => {
                BTreeSet::new()
            }
        };
        sharers.insert(requester);
        entry.state = Some(DirState::Owned { owner, sharers });
        o.now(Envelope::to_core(owner, CoherenceMsg::FwdGetS { addr, requester }));
    }

    fn start_read(&mut self, addr: Addr, requester: CoreId, now: Cycle, o: &mut HomeOutcome) {
        let value = *self.data.entry(addr).or_insert(0);
        let l2_latency = self.l2_latency;
        let entry = self.entries.entry(addr).or_default();
        match entry.state().clone() {
            DirState::Unowned => {
                // Grant E to the sole reader; busy until UnblockS because
                // an owner now exists.
                entry.state = Some(DirState::Exclusive { owner: requester });
                entry.busy = Some(BusyTxn::Read { requester });
                o.at(
                    now + l2_latency,
                    Envelope::to_core(
                        requester,
                        CoherenceMsg::Data {
                            addr,
                            value,
                            acks_expected: 0,
                            exclusive: true,
                            needs_unblock: true,
                            for_seq: None,
                        },
                    ),
                );
            }
            DirState::Shared(mut sharers) => {
                // Clean data straight from the L2; no transaction needed.
                sharers.insert(requester);
                entry.state = Some(DirState::Shared(sharers));
                o.at(
                    now + l2_latency,
                    Envelope::to_core(
                        requester,
                        CoherenceMsg::Data {
                            addr,
                            value,
                            acks_expected: 0,
                            exclusive: false,
                            needs_unblock: false,
                            for_seq: None,
                        },
                    ),
                );
            }
            DirState::Exclusive { owner } | DirState::Owned { owner, .. } => {
                debug_assert_ne!(owner, requester, "owner cannot read-miss");
                // Owner-forwarded reads do not block the home: spin-read
                // storms are served by the owner in parallel with other
                // directory work.
                self.forward_read(addr, owner, requester, o);
            }
        }
    }

    fn start_exclusive(
        &mut self,
        addr: Addr,
        winner: CoreId,
        winner_seq: u64,
        now: Cycle,
        o: &mut HomeOutcome,
    ) {
        let value = *self.data.entry(addr).or_insert(0);
        let l2_latency = self.l2_latency;
        let home = self.core;
        let entry = self.entries.entry(addr).or_default();

        // The winner's own early records belong to its previous stopped
        // request (this one); they are consumed here.
        entry.early.remove(&winner);

        let (owner, sharers) = match entry.state().clone() {
            DirState::Unowned => (None, BTreeSet::new()),
            DirState::Shared(sharers) => (None, sharers),
            DirState::Exclusive { owner } => (Some(owner), BTreeSet::new()),
            DirState::Owned { owner, sharers } => (Some(owner), sharers),
        };

        let inv_targets: BTreeSet<CoreId> =
            sharers.iter().copied().filter(|s| *s != winner && Some(*s) != owner).collect();
        let acks_expected = inv_targets.len() as u16;

        let mut pending_relay = BTreeMap::new();
        let mut direct_inv = BTreeSet::new();
        let mut prearrived: u16 = 0;
        let mut prearrived_rep = winner;
        for s in inv_targets {
            match entry.early.remove(&s) {
                Some(EarlyRec::AckArrived { .. }) => {
                    // The early ack already reached us: it is batched
                    // into a single aggregated acknowledgement below.
                    o.notes.push(HomeNote::InvSavedEarly);
                    o.notes.push(HomeNote::EarlyAckConsumed);
                    prearrived += 1;
                    prearrived_rep = s;
                }
                Some(EarlyRec::Notified { stopped_at }) => {
                    // Ack in flight to us; forward when it arrives.
                    o.notes.push(HomeNote::InvSavedEarly);
                    pending_relay.insert(s, stopped_at);
                }
                None => {
                    // The directory walks its sharer vector serially:
                    // one invalidation per cycle leaves the home node
                    // (the serialization the paper identifies as a major
                    // LCO source; early invalidation removes sharers
                    // from this walk entirely).
                    o.notes.push(HomeNote::InvSent);
                    let nth = direct_inv.len() as u64;
                    direct_inv.insert(s);
                    let sent_at = now + nth;
                    o.at(
                        sent_at,
                        Envelope::to_core(
                            s,
                            CoherenceMsg::Inv {
                                addr,
                                ack_to: AckTarget::Core(winner),
                                home,
                                sent_at,
                                for_seq: winner_seq,
                            },
                        ),
                    );
                }
            }
        }
        if prearrived > 0 {
            // One aggregated acknowledgement covers every sharer whose
            // early ack had already arrived: the winner is freed from
            // collecting them one by one.
            o.now(Envelope::to_core(
                winner,
                CoherenceMsg::InvAck {
                    addr,
                    from: prearrived_rep,
                    inv_sent_at: now,
                    via_home: true,
                    count: prearrived,
                    for_seq: winner_seq,
                },
            ));
        }

        let granted_from_l2 = match owner {
            Some(owner) if owner != winner => {
                o.now(Envelope::to_core(
                    owner,
                    CoherenceMsg::FwdGetX {
                        addr,
                        requester: winner,
                        acks_expected,
                        for_seq: winner_seq,
                    },
                ));
                false
            }
            Some(_) => {
                // The winner is the O-state owner upgrading in place: no
                // data moves, only the ack count.
                o.now(Envelope::to_core(
                    winner,
                    CoherenceMsg::AckCount { addr, acks_expected, for_seq: winner_seq },
                ));
                false
            }
            None => {
                o.at(
                    now + l2_latency,
                    Envelope::to_core(
                        winner,
                        CoherenceMsg::Data {
                            addr,
                            value,
                            acks_expected,
                            exclusive: true,
                            needs_unblock: true,
                            for_seq: Some(winner_seq),
                        },
                    ),
                );
                true
            }
        };

        entry.state = Some(DirState::Exclusive { owner: winner });
        entry.busy = Some(BusyTxn::Exclusive {
            winner,
            winner_seq,
            pending_relay,
            direct_inv,
            granted_from_l2,
        });
    }

    /// Records the early-invalidation notification carried by a
    /// `RelayedGetX`, merging any parked acknowledgement of the same
    /// interception.
    fn note_early_inv(&mut self, addr: Addr, core: CoreId, stopped_at: Cycle) {
        let entry = self.entries.entry(addr).or_default();
        // If the current transaction is already waiting on this core via
        // pending_relay or direct_inv, the notification is informational.
        if let Some(BusyTxn::Exclusive { pending_relay, direct_inv, .. }) = &entry.busy {
            if pending_relay.contains_key(&core) || direct_inv.contains(&core) {
                return;
            }
        }
        if let Some(pos) =
            // lint: allow(scan) — parked_acks is a flat buffer bounded at 64 entries
            entry.parked_acks.iter().position(|(c, ts)| *c == core && *ts == stopped_at)
        {
            entry.parked_acks.remove(pos);
            entry.early.insert(core, EarlyRec::AckArrived { stopped_at });
        } else {
            entry.early.insert(core, EarlyRec::Notified { stopped_at });
        }
    }

    fn on_relayed_ack(&mut self, addr: Addr, from: CoreId, inv_sent_at: Cycle, o: &mut HomeOutcome) {
        let entry = self.entries.entry(addr).or_default();
        // Current transaction waiting on this relay?
        if let Some(BusyTxn::Exclusive { winner, winner_seq, pending_relay, direct_inv, .. }) =
            &mut entry.busy
        {
            if pending_relay.get(&from) == Some(&inv_sent_at) {
                pending_relay.remove(&from);
                o.notes.push(HomeNote::RelayForwarded);
                o.now(Envelope::to_core(
                    *winner,
                    CoherenceMsg::InvAck {
                        addr,
                        from,
                        inv_sent_at,
                        via_home: true,
                        count: 1,
                        for_seq: *winner_seq,
                    },
                ));
                return;
            }
            if direct_inv.contains(&from) {
                // Duplicate: we invalidated this core ourselves; its
                // direct ack goes to the winner. Drop the relay.
                return;
            }
        }
        match entry.early.get(&from) {
            Some(EarlyRec::Notified { stopped_at }) if *stopped_at == inv_sent_at => {
                entry.early.insert(from, EarlyRec::AckArrived { stopped_at: inv_sent_at });
            }
            Some(EarlyRec::Notified { .. }) | Some(EarlyRec::AckArrived { .. }) | None => {
                // Park until the matching notification arrives; parked
                // acks never satisfy invalidations on their own. An ack
                // identical in both origin and interception cycle is a
                // duplicate of one already parked and is absorbed — the
                // home is the protocol's ack deduplicator.
                o.notes.push(HomeNote::AckParked);
                let dup =
                    // lint: allow(scan) — parked_acks is a flat buffer bounded at 64 entries
                    entry.parked_acks.iter().any(|(c, ts)| *c == from && *ts == inv_sent_at);
                if !dup {
                    entry.parked_acks.push((from, inv_sent_at));
                }
                if entry.parked_acks.len() > 64 {
                    entry.parked_acks.remove(0);
                }
            }
        }
    }

    fn on_unblock(
        &mut self,
        addr: Addr,
        from: CoreId,
        now: Cycle,
        o: &mut HomeOutcome,
    ) -> Result<(), CoherenceError> {
        let entry = self.entries.entry(addr).or_default();
        let was_exclusive = match entry.busy.take() {
            Some(BusyTxn::Read { requester }) => {
                if requester != from {
                    return Err(CoherenceError::UnblockWrongCore { addr, from, holder: requester });
                }
                false
            }
            Some(BusyTxn::Exclusive { winner, pending_relay, .. }) => {
                if winner != from {
                    return Err(CoherenceError::UnblockWrongCore { addr, from, holder: winner });
                }
                debug_assert!(
                    pending_relay.is_empty(),
                    "winner unblocked with relays outstanding"
                );
                true
            }
            None => return Err(CoherenceError::UnblockIdleBlock { addr, from }),
        };
        // Drain queued requests until one blocks the line again: demoted
        // losers are all served in this burst (the winner multicasts
        // valid copies, Figure 4 step 4). Whether they lost a race
        // depends on the transaction they queued behind.
        let lost_race = was_exclusive;
        loop {
            let entry = self.entries.entry(addr).or_default();
            if entry.busy.is_some() {
                break;
            }
            let Some(next) = entry.queue.pop_front() else { break };
            self.start_request(addr, next, lost_race, now, o);
            // Anything still queued after a new exclusive txn starts
            // will drain on its unblock with lost_race = true.
        }
        Ok(())
    }
}

/// One home node: L2 bank, directory, and request serialization queue —
/// the timed wrapper around [`HomeCore`].
#[derive(Debug)]
pub struct HomeBank {
    inner: HomeCore,
    inbox: VecDeque<(CoherenceMsg, Cycle)>,
    /// Acknowledgements and completion notices: cheap directory
    /// bookkeeping processed out of band (they do not occupy the
    /// request-serialization slot).
    fast_inbox: VecDeque<(CoherenceMsg, Cycle)>,
    delayed: EventWheel<Envelope>,
    stats: HomeStats,
    roundtrips: InvAckRoundTrips,
}

impl HomeBank {
    /// Creates the bank for `core`. `l2_latency` is Table 1's 6-cycle L2
    /// access latency (applied to data responses); `cores` sizes the
    /// round-trip accounting.
    pub fn new(core: CoreId, cores: usize, l2_latency: u64) -> Self {
        HomeBank {
            inner: HomeCore::new(core, l2_latency),
            inbox: VecDeque::new(),
            fast_inbox: VecDeque::new(),
            delayed: EventWheel::new(),
            stats: HomeStats::default(),
            roundtrips: InvAckRoundTrips::new(cores, 256),
        }
    }

    /// The tile this bank lives on.
    pub fn core(&self) -> CoreId {
        self.inner.core()
    }

    /// The pure directory state (for invariant checks and diagnostics).
    pub fn directory(&self) -> &HomeCore {
        &self.inner
    }

    /// Initializes the L2-resident value of a block (warm start).
    pub fn init_block(&mut self, addr: Addr, value: u64) {
        self.inner.init_block(addr, value);
    }

    /// The L2-resident value of a block (stale while an L1 owns it).
    pub fn l2_value(&self, addr: Addr) -> u64 {
        self.inner.l2_value(addr)
    }

    /// Counters.
    pub fn stats(&self) -> &HomeStats {
        &self.stats
    }

    /// Early invalidation round trips recorded at this home (relayed
    /// acknowledgements: router Inv generation to router ack arrival).
    pub fn roundtrips(&self) -> &InvAckRoundTrips {
        &self.roundtrips
    }

    /// Busy or queue-holding blocks, for stuck-run diagnostics.
    pub fn busy_report(&self) -> Vec<String> {
        self.inner
            .entries
            .iter()
            .filter(|(_, e)| e.busy.is_some() || !e.queue.is_empty())
            .map(|(addr, e)| {
                format!(
                    "{addr}: busy={:?} queue={} early={:?} parked={}",
                    e.busy,
                    e.queue.len(),
                    e.early,
                    e.parked_acks.len()
                )
            })
            .collect()
    }

    /// Directory view of one block, for diagnostics.
    pub fn dir_report(&self, addr: Addr) -> String {
        match self.inner.entries.get(&addr.block()) {
            Some(e) => format!(
                "state={:?} busy={:?} queue={} early={:?} l2_value={:?}",
                e.state,
                e.busy,
                e.queue.len(),
                e.early,
                self.inner.data.get(&addr.block())
            ),
            None => "no entry".to_string(),
        }
    }

    /// Whether the bank has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.inbox.is_empty()
            && self.fast_inbox.is_empty()
            && self.delayed.is_empty()
            && self.inner.is_quiet()
    }

    /// Whether the bank still holds undelivered messages (inbox entries
    /// or delayed responses). Unlike [`is_idle`](Self::is_idle) this
    /// ignores busy/queued directory entries: an entry can legitimately
    /// stay busy forever when the transaction it waits on is wedged,
    /// while a nonempty message queue always implies forward progress.
    pub fn messages_pending(&self) -> bool {
        !self.inbox.is_empty() || !self.fast_inbox.is_empty() || !self.delayed.is_empty()
    }

    /// Accepts one delivered message (any cycle).
    pub fn handle(&mut self, msg: CoherenceMsg, now: Cycle) {
        match msg {
            CoherenceMsg::RelayedInvAck { .. }
            | CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. } => self.fast_inbox.push_back((msg, now)),
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. }
            | CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetX { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::Data { .. }
            | CoherenceMsg::AckCount { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::OsWakeup { .. } => self.inbox.push_back((msg, now)),
        }
    }

    /// Advances one cycle: releases delayed responses and processes one
    /// inbox message (the directory's serialization bottleneck), turning
    /// protocol violations into typed errors.
    ///
    /// # Errors
    ///
    /// The [`CoherenceError`] raised by the pure directory when a
    /// delivered message is impossible in the current state.
    pub fn try_tick(&mut self, now: Cycle, out: &mut Vec<Envelope>) -> Result<(), CoherenceError> {
        while let Some(env) = self.delayed.pop_due(now) {
            out.push(env);
        }
        while let Some((msg, arrived)) = self.fast_inbox.pop_front() {
            self.process(msg, arrived, now, out)?;
        }
        if let Some((msg, arrived)) = self.inbox.pop_front() {
            self.process(msg, arrived, now, out)?;
        }
        // Emit responses that were scheduled with zero latency this cycle.
        while let Some(env) = self.delayed.pop_due(now) {
            out.push(env);
        }
        Ok(())
    }

    /// Advances one cycle.
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation; the simulator's checked run path
    /// uses [`try_tick`](Self::try_tick) instead.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<Envelope>) {
        if let Err(e) = self.try_tick(now, out) {
            panic!("{e}");
        }
    }

    fn process(
        &mut self,
        msg: CoherenceMsg,
        arrived: Cycle,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) -> Result<(), CoherenceError> {
        let outcome = self.inner.process(msg, arrived, now)?;
        for note in outcome.notes {
            match note {
                HomeNote::Request => self.stats.requests += 1,
                HomeNote::GetXSeen => self.stats.getx += 1,
                HomeNote::InvSent => self.stats.invs_sent += 1,
                HomeNote::InvSavedEarly => self.stats.invs_saved_by_early += 1,
                HomeNote::EarlyAckConsumed => self.stats.early_acks_consumed += 1,
                HomeNote::RelayForwarded => self.stats.relays_forwarded += 1,
                HomeNote::AckParked => self.stats.acks_parked += 1,
                HomeNote::Demotion => self.stats.demotions += 1,
                HomeNote::QueueWait(cycles) => self.stats.queue_wait_cycles += cycles,
                HomeNote::QueueLen(len) => {
                    self.stats.max_queue_len = self.stats.max_queue_len.max(len)
                }
                HomeNote::RelayRoundTrip { from, delay } => self.roundtrips.record(from, delay),
                HomeNote::DupRequestDropped => self.stats.dup_requests_dropped += 1,
                HomeNote::RecoveryRegrant => self.stats.recovery_regrants += 1,
            }
        }
        for emit in outcome.emits {
            match emit.at {
                EmitAt::Now => out.push(emit.env),
                EmitAt::At(when) => self.delayed.schedule(when, emit.env),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home() -> HomeBank {
        HomeBank::new(CoreId::new(0), 8, 0)
    }

    fn run_one(bank: &mut HomeBank, now: u64) -> Vec<Envelope> {
        let mut out = Vec::new();
        bank.tick(Cycle::new(now), &mut out);
        out
    }

    #[test]
    fn unowned_gets_grants_exclusive() {
        let mut bank = home();
        bank.init_block(Addr::new(0), 7);
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        let out = run_one(&mut bank, 0);
        assert_eq!(out.len(), 1);
        let CoherenceMsg::Data { value, exclusive, needs_unblock, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 7);
        assert!(exclusive && needs_unblock);
        assert!(!bank.is_idle());
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(5));
        run_one(&mut bank, 5);
        assert!(bank.is_idle());
    }

    #[test]
    fn second_reader_is_forwarded_to_owner() {
        let mut bank = home();
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        run_one(&mut bank, 0);
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(2));
        run_one(&mut bank, 2);
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(2) }, Cycle::new(4));
        let out = run_one(&mut bank, 4);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, CoreId::new(1), "forward goes to the E owner");
        assert!(matches!(out[0].msg, CoherenceMsg::FwdGetS { requester, .. } if requester == CoreId::new(2)));
    }

    #[test]
    fn shared_reads_do_not_block() {
        let mut bank = home();
        // Two readers while Unowned->E->Shared: set up Shared by two
        // sequential reads through the owner path is complex; instead
        // exercise Shared directly: first read E, unblock, then a write
        // brings it back... simpler: read E, unblock, owner invalidated
        // via GetX from another core, etc. Here we just check two queued
        // reads both get served.
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        let out = run_one(&mut bank, 0);
        assert!(matches!(out[0].msg, CoherenceMsg::Data { .. }));
        // Second read queues while busy.
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(2) }, Cycle::new(1));
        assert!(run_one(&mut bank, 1).is_empty(), "block busy: request queued");
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(3));
        let out = run_one(&mut bank, 3);
        assert_eq!(out.len(), 1, "queued read starts when unblocked");
        assert!(matches!(out[0].msg, CoherenceMsg::FwdGetS { .. }));
    }

    #[test]
    fn getx_with_sharers_sends_invs_and_data() {
        let mut bank = home();
        bank.init_block(Addr::new(0), 3);
        // Build Shared{1,2} by hand via the protocol: 1 reads (E), 1
        // unblocks; 2 reads -> forwarded to 1 (Owned); 2 unblocks.
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        run_one(&mut bank, 0);
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(1));
        run_one(&mut bank, 1);
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(2) }, Cycle::new(2));
        let out = run_one(&mut bank, 2);
        assert!(matches!(out[0].msg, CoherenceMsg::FwdGetS { .. }), "owner forward, non-blocking");

        // Core 3 wants exclusive: owner is 1, sharer is 2.
        bank.handle(
            CoherenceMsg::GetX {
                addr: Addr::new(0),
                requester: CoreId::new(3),
                home: CoreId::new(0),
                lock: true,
                failable: false,
                seq: 1,
            },
            Cycle::new(4),
        );
        let out = run_one(&mut bank, 4);
        let inv = out.iter().find(|e| matches!(e.msg, CoherenceMsg::Inv { .. })).unwrap();
        assert_eq!(inv.dst, CoreId::new(2));
        assert!(matches!(
            inv.msg,
            CoherenceMsg::Inv { ack_to: AckTarget::Core(w), .. } if w == CoreId::new(3)
        ));
        let fwd = out.iter().find(|e| matches!(e.msg, CoherenceMsg::FwdGetX { .. })).unwrap();
        assert_eq!(fwd.dst, CoreId::new(1));
        assert!(matches!(
            fwd.msg,
            CoherenceMsg::FwdGetX { acks_expected: 1, .. }
        ));
        assert_eq!(bank.stats().invs_sent, 1);
    }

    /// Parks the block busy on the cold E-grant read by core 1 (not yet
    /// unblocked), with a read by core 2, a GetX by core 3 and core 2's
    /// relayed (stopped) GetX queued behind it, in that order.
    fn busy_with_queued_requests() -> HomeBank {
        let mut bank = home();
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        let out = run_one(&mut bank, 0);
        assert!(matches!(out[0].msg, CoherenceMsg::Data { exclusive: true, .. }));
        // Queued while the E-grant is busy:
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(2) }, Cycle::new(1));
        assert!(run_one(&mut bank, 1).is_empty());
        bank.handle(
            CoherenceMsg::GetX {
                addr: Addr::new(0),
                requester: CoreId::new(3),
                home: CoreId::new(0),
                lock: true,
                failable: false,
                seq: 1,
            },
            Cycle::new(2),
        );
        assert!(run_one(&mut bank, 2).is_empty());
        bank.handle(
            CoherenceMsg::RelayedGetX {
                addr: Addr::new(0),
                requester: CoreId::new(2),
                home: CoreId::new(0),
                stopped_at: Cycle::new(10),
                failable: false,
                seq: 1,
            },
            Cycle::new(3),
        );
        assert!(run_one(&mut bank, 3).is_empty());
        bank
    }

    #[test]
    fn early_notified_then_ack_is_forwarded_during_txn() {
        let mut bank = busy_with_queued_requests();
        // Unblocking the E-grant drains the queue: core 2's read is a
        // non-blocking owner forward, then core 3's GetX starts. Core 2
        // is a sharer with a Notified record, so the home must not
        // invalidate it itself.
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(4));
        let out = run_one(&mut bank, 4);
        assert!(
            out.iter().any(|e| matches!(e.msg, CoherenceMsg::FwdGetS { .. }) && e.dst == CoreId::new(1)),
            "core 2's read forwarded to owner 1: {out:?}"
        );
        assert!(
            !out.iter().any(|e| matches!(e.msg, CoherenceMsg::Inv { .. }) && e.dst == CoreId::new(2)),
            "no home Inv to the early-invalidated sharer: {out:?}"
        );
        assert!(
            out.iter().any(|e| matches!(e.msg, CoherenceMsg::FwdGetX { .. }) && e.dst == CoreId::new(1)),
            "ownership transfer to core 3 forwarded to owner 1"
        );
        assert_eq!(bank.stats().invs_saved_by_early, 1);

        // The relayed ack arrives and is forwarded to the winner.
        bank.handle(
            CoherenceMsg::RelayedInvAck {
                addr: Addr::new(0),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(10),
                relayed_at: Cycle::new(14),
            },
            Cycle::new(5),
        );
        let out = run_one(&mut bank, 5);
        let fwd = out.iter().find(|e| matches!(e.msg, CoherenceMsg::InvAck { .. })).unwrap();
        assert_eq!(fwd.dst, CoreId::new(3));
        assert!(matches!(fwd.msg, CoherenceMsg::InvAck { via_home: true, from, .. } if from == CoreId::new(2)));
        assert_eq!(bank.stats().relays_forwarded, 1);
        // Round trip recorded: 14 - 10.
        assert_eq!(bank.roundtrips().total_count(), 1);
        assert_eq!(bank.roundtrips().mean(), 4.0);
    }

    #[test]
    fn early_ack_before_getx_is_consumed_at_processing() {
        let mut bank = busy_with_queued_requests();
        // The ack arrives (and matches the Notified record) while the
        // block is still busy with the E-grant read.
        bank.handle(
            CoherenceMsg::RelayedInvAck {
                addr: Addr::new(0),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(10),
                relayed_at: Cycle::new(12),
            },
            Cycle::new(4),
        );
        run_one(&mut bank, 4);

        // Unblock: the drain reaches core 3's GetX, which consumes the
        // stored ack on core 2's behalf.
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(5));
        let out = run_one(&mut bank, 5);
        let ack = out.iter().find(|e| matches!(e.msg, CoherenceMsg::InvAck { .. })).unwrap();
        assert_eq!(ack.dst, CoreId::new(3), "home answers on the loser's behalf");
        assert!(matches!(ack.msg, CoherenceMsg::InvAck { via_home: true, .. }));
        assert!(!out.iter().any(|e| matches!(e.msg, CoherenceMsg::Inv { .. }) && e.dst == CoreId::new(2)));
        assert_eq!(bank.stats().early_acks_consumed, 1);
    }

    #[test]
    fn failable_getx_racing_a_winner_is_demoted() {
        let mut bank = home();
        // Core 1 owns (E-grant + unblock).
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        run_one(&mut bank, 0);
        bank.handle(CoherenceMsg::UnblockS { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::new(1));
        run_one(&mut bank, 1);
        // Core 3 wins the lock (full exclusive service, busy).
        bank.handle(
            CoherenceMsg::GetX {
                addr: Addr::new(0),
                requester: CoreId::new(3),
                home: CoreId::new(0),
                lock: true,
                failable: true,
                seq: 1,
            },
            Cycle::new(2),
        );
        let out = run_one(&mut bank, 2);
        assert!(
            out.iter().any(|e| matches!(e.msg, CoherenceMsg::FwdGetX { .. })),
            "first competitor gets the full service: {out:?}"
        );
        // Core 2's CAS races the winner: queued, then demoted at drain.
        bank.handle(
            CoherenceMsg::GetX {
                addr: Addr::new(0),
                requester: CoreId::new(2),
                home: CoreId::new(0),
                lock: true,
                failable: true,
                seq: 1,
            },
            Cycle::new(3),
        );
        assert!(run_one(&mut bank, 3).is_empty(), "queued behind the winner");
        bank.handle(CoherenceMsg::UnblockX { addr: Addr::new(0), from: CoreId::new(3) }, Cycle::new(4));
        let out = run_one(&mut bank, 4);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, CoherenceMsg::FwdGetS { requester, .. } if requester == CoreId::new(2)));
        assert_eq!(out[0].dst, CoreId::new(3), "served by the new owner");
        assert_eq!(bank.stats().demotions, 1);
        assert!(bank.is_idle(), "demotion does not block the home");
    }

    #[test]
    fn ack_racing_ahead_of_notification_is_parked_then_merged() {
        let mut bank = home();
        // Ack arrives with no record: parked, never consumed directly.
        bank.handle(
            CoherenceMsg::RelayedInvAck {
                addr: Addr::new(0),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(10),
                relayed_at: Cycle::new(12),
            },
            Cycle::ZERO,
        );
        run_one(&mut bank, 0);
        assert_eq!(bank.stats().acks_parked, 1);
        // The matching notification arrives: merged into AckArrived.
        bank.handle(
            CoherenceMsg::RelayedGetX {
                addr: Addr::new(0),
                requester: CoreId::new(2),
                home: CoreId::new(0),
                stopped_at: Cycle::new(10),
                failable: false,
                seq: 1,
            },
            Cycle::new(1),
        );
        run_one(&mut bank, 1);
        // Processing core 2's own queued request clears its records; the
        // request itself proceeds (Unowned -> direct grant).
        // (The RelayedGetX above *was* the queued request.)
        // Nothing to assert beyond not panicking; the invariant tests
        // live in the integration suite.
    }

    #[test]
    #[should_panic(expected = "unblock for an idle block")]
    fn stray_unblock_panics() {
        let mut bank = home();
        bank.handle(CoherenceMsg::UnblockX { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::ZERO);
        run_one(&mut bank, 0);
    }

    #[test]
    fn stray_unblock_is_a_typed_error_on_the_checked_path() {
        let mut bank = home();
        bank.handle(CoherenceMsg::UnblockX { addr: Addr::new(0), from: CoreId::new(1) }, Cycle::ZERO);
        let mut out = Vec::new();
        let err = bank.try_tick(Cycle::ZERO, &mut out).expect_err("stray unblock");
        assert!(matches!(err, CoherenceError::UnblockIdleBlock { .. }), "{err}");
    }

    #[test]
    fn inbox_serializes_one_request_per_cycle() {
        let mut bank = home();
        for i in 1..=3 {
            bank.handle(
                CoherenceMsg::GetS { addr: Addr::new(i * 128), requester: CoreId::new(i as usize) },
                Cycle::ZERO,
            );
        }
        assert_eq!(run_one(&mut bank, 0).len(), 1);
        assert_eq!(run_one(&mut bank, 1).len(), 1);
        assert_eq!(run_one(&mut bank, 2).len(), 1);
        assert_eq!(run_one(&mut bank, 3).len(), 0);
    }

    #[test]
    fn l2_latency_delays_data() {
        let mut bank = HomeBank::new(CoreId::new(0), 8, 6);
        bank.handle(CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) }, Cycle::ZERO);
        assert!(run_one(&mut bank, 0).is_empty(), "data not ready yet");
        for now in 1..6 {
            assert!(run_one(&mut bank, now).is_empty());
        }
        let out = run_one(&mut bank, 6);
        assert!(matches!(out[0].msg, CoherenceMsg::Data { .. }));
    }
}
