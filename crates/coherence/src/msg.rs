//! Directory-MOESI protocol messages and their mapping onto NoC packets.

use inpg_noc::packet::{EarlyAck, LockRequest, PacketGenPayload, Sink, VirtualNetwork};
use inpg_sim::{coverage, Addr, CoreId, Cycle};

/// Where an invalidation's acknowledgement must be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AckTarget {
    /// To the core winning the exclusive access (normal directory flow:
    /// the winner collects acknowledgements, paper Figure 4 step 3).
    Core(CoreId),
    /// To the big router that generated an early invalidation (iNPG flow,
    /// paper Figure 5b); the id is the router's tile.
    Router(CoreId),
}

/// One directory-MOESI protocol message.
///
/// Control messages are single-flit; [`Data`](CoherenceMsg::Data) carries
/// a cache block (8 flits). The `lock` flag on `GetX` marks requests
/// produced by atomic read-modify-write instructions on lock variables —
/// the requests big routers may intercept.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoherenceMsg {
    // ---- requests: core -> home (vnet 0) -----------------------------
    /// Read request.
    GetS {
        /// Block address.
        addr: Addr,
        /// Requesting core.
        requester: CoreId,
    },
    /// Exclusive (read-for-modification) request.
    GetX {
        /// Block address.
        addr: Addr,
        /// Requesting core.
        requester: CoreId,
        /// Home node of the block (carried so big routers can route
        /// generated packets without knowing the home mapping).
        home: CoreId,
        /// True when issued by an atomic RMW on a lock variable.
        lock: bool,
        /// True when the request may be *demoted*: if the block is owned
        /// by another core, the home may answer with a shared copy and
        /// the requester's conditional RMW fails without writing (the
        /// paper's Figure 4 step 4: losers receive a valid copy and loop
        /// back to spinning).
        failable: bool,
        /// Per-requester issue sequence number (monotonic per core,
        /// bumped on every exclusive issue including recovery reissues).
        /// The home node deduplicates retransmitted requests with it.
        seq: u64,
    },
    /// A `GetX` that was stopped by a big router and relayed onward: the
    /// home node treats it as the loser's queued request *and* as notice
    /// that the requester's L1 has been early-invalidated.
    RelayedGetX {
        /// Block address.
        addr: Addr,
        /// The stopped requester.
        requester: CoreId,
        /// Home node of the block.
        home: CoreId,
        /// Cycle the big router stopped the request (equals the early
        /// invalidation's `sent_at`); the home node matches this against
        /// the relayed acknowledgement of the same interception.
        stopped_at: Cycle,
        /// Propagated from the stopped request.
        failable: bool,
        /// Propagated from the stopped request (see [`GetX`]'s `seq`).
        seq: u64,
    },

    // ---- forwards: home -> core (vnet 1) ------------------------------
    /// Directory asks the current owner to send a shared copy to
    /// `requester` (owner keeps the block in O).
    FwdGetS {
        /// Block address.
        addr: Addr,
        /// Core to receive the data.
        requester: CoreId,
    },
    /// Directory asks the current owner to transfer exclusive ownership
    /// to `requester`.
    FwdGetX {
        /// Block address.
        addr: Addr,
        /// Core to receive ownership.
        requester: CoreId,
        /// Invalidation acknowledgements `requester` must still collect.
        acks_expected: u16,
        /// The requester's exclusive-request epoch, echoed into the
        /// owner's `Data` response so a recovering requester can discard
        /// grants that answer an aborted attempt.
        for_seq: u64,
    },
    /// Invalidate the receiver's copy and acknowledge to `ack_to`.
    Inv {
        /// Block address.
        addr: Addr,
        /// Where to send the acknowledgement.
        ack_to: AckTarget,
        /// Home node of the block (needed by early acks for relaying).
        home: CoreId,
        /// When this invalidation was generated (Figure 10's metric).
        sent_at: Cycle,
        /// The winner request's sequence number this invalidation serves
        /// (0 for early invalidations, whose acknowledgements are
        /// deduplicated at the home node instead). Echoed into the
        /// resulting `InvAck` so a recovering winner can discard
        /// acknowledgements from an aborted epoch.
        for_seq: u64,
    },

    // ---- responses (vnet 2) -------------------------------------------
    /// Cache-block data. From the home node or a forwarding owner.
    Data {
        /// Block address.
        addr: Addr,
        /// Block value (the simulator models one word per block).
        value: u64,
        /// Invalidation acks the requester must collect before using the
        /// block exclusively (0 for read data).
        acks_expected: u16,
        /// True when the block is granted exclusively (E/M), false for S.
        exclusive: bool,
        /// Whether the home node is blocked on this transaction and the
        /// requester must send an `UnblockS` when done (read path only;
        /// exclusive transactions always send `UnblockX`).
        needs_unblock: bool,
        /// The exclusive-request epoch this grant answers, `None` for
        /// read-path data (reads are never retransmitted). A recovering
        /// requester discards grants whose epoch is not its current one:
        /// a slow grant racing its own retransmission must not complete
        /// the reissued attempt, or the retransmit becomes an orphan
        /// request the directory later serves into thin air.
        for_seq: Option<u64>,
    },
    /// Acknowledgement count sent by the home node to a winner who is
    /// already the data owner (O-state upgrade): no data travels, only
    /// the number of invalidations to collect (the paper's `AckCount`).
    AckCount {
        /// Block address.
        addr: Addr,
        /// Invalidation acks the requester must collect.
        acks_expected: u16,
        /// The exclusive-request epoch this grant answers (always an
        /// exclusive upgrade); stale epochs are discarded like `Data`.
        for_seq: u64,
    },
    /// Invalidation acknowledgement, collected by the winning core.
    InvAck {
        /// Block address.
        addr: Addr,
        /// The invalidated core (representative when `count > 1`).
        from: CoreId,
        /// When the corresponding `Inv` was generated.
        inv_sent_at: Cycle,
        /// True when the home node forwarded an early acknowledgement on
        /// the invalidated core's behalf (the round trip was already
        /// recorded at the relaying router, so the winner must not
        /// record it again).
        via_home: bool,
        /// Acknowledgements this message carries: the home node
        /// aggregates already-arrived early acknowledgements into one
        /// message, freeing the winner from collecting them one by one.
        count: u16,
        /// The winner request epoch this acknowledgement belongs to:
        /// echoed from the `Inv`'s `for_seq` (direct acks) or stamped by
        /// the home node with the current winner's sequence number
        /// (via-home forwards). A recovering winner drops acks whose
        /// epoch is not its current one.
        for_seq: u64,
    },
    /// Acknowledgement of an *early* invalidation, addressed to the
    /// generating big router ([`Sink::Router`]).
    EarlyInvAck {
        /// Block address.
        addr: Addr,
        /// The invalidated core.
        from: CoreId,
        /// Home node of the block.
        home: CoreId,
        /// When the early invalidation was generated.
        inv_sent_at: Cycle,
    },
    /// An early acknowledgement relayed by a big router to the home node
    /// (the AckFwd phase); the home forwards it to the winner.
    RelayedInvAck {
        /// Block address.
        addr: Addr,
        /// The invalidated core.
        from: CoreId,
        /// When the early invalidation was generated.
        inv_sent_at: Cycle,
        /// When the acknowledgement reached the relaying router.
        relayed_at: Cycle,
    },

    // ---- completion notices (vnet 3) -----------------------------------
    /// The requester of a read has installed its shared copy; the home
    /// node may close the transaction.
    UnblockS {
        /// Block address.
        addr: Addr,
        /// The completing core.
        from: CoreId,
    },
    /// The requester of an exclusive access holds data and all acks; the
    /// home node may close the transaction.
    UnblockX {
        /// Block address.
        addr: Addr,
        /// The completing core.
        from: CoreId,
    },
    /// An OS-level wakeup IPI: the queue spin-lock releaser wakes the
    /// next sleeping thread (used by the manycore layer, carried on the
    /// system virtual network).
    OsWakeup {
        /// The core whose sleeping thread must be woken.
        core: CoreId,
    },
}

impl CoherenceMsg {
    /// Variant names in declaration order. The static transition-matrix
    /// analyzer (`cargo xtask analyze`) parses the enum declaration above
    /// and cross-checks its variant list against this constant, so a new
    /// variant added to one but not the other fails the analyze pass.
    pub const VARIANT_NAMES: [&'static str; 14] = [
        "GetS",
        "GetX",
        "RelayedGetX",
        "FwdGetS",
        "FwdGetX",
        "Inv",
        "Data",
        "AckCount",
        "InvAck",
        "EarlyInvAck",
        "RelayedInvAck",
        "UnblockS",
        "UnblockX",
        "OsWakeup",
    ];

    /// This variant's position in the enum declaration (the per-site
    /// transition-coverage index; see [`inpg_sim::coverage`]).
    pub fn variant_index(&self) -> usize {
        match self {
            CoherenceMsg::GetS { .. } => 0,
            CoherenceMsg::GetX { .. } => 1,
            CoherenceMsg::RelayedGetX { .. } => 2,
            CoherenceMsg::FwdGetS { .. } => 3,
            CoherenceMsg::FwdGetX { .. } => 4,
            CoherenceMsg::Inv { .. } => 5,
            CoherenceMsg::Data { .. } => 6,
            CoherenceMsg::AckCount { .. } => 7,
            CoherenceMsg::InvAck { .. } => 8,
            CoherenceMsg::EarlyInvAck { .. } => 9,
            CoherenceMsg::RelayedInvAck { .. } => 10,
            CoherenceMsg::UnblockS { .. } => 11,
            CoherenceMsg::UnblockX { .. } => 12,
            CoherenceMsg::OsWakeup { .. } => 13,
        }
    }

    /// This variant's declared name.
    pub fn variant_name(&self) -> &'static str {
        Self::VARIANT_NAMES[self.variant_index()]
    }

    /// The virtual network this message class travels on.
    ///
    /// Every routed message passes through here, so this doubles as the
    /// "variant was constructed and sent" transition-coverage site.
    pub fn vnet(&self) -> VirtualNetwork {
        coverage::record(coverage::MSG_VNET.id(self.variant_index()));
        match self {
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. } => VirtualNetwork::REQUEST,
            CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetX { .. }
            | CoherenceMsg::Inv { .. } => VirtualNetwork::FORWARD,
            CoherenceMsg::Data { .. }
            | CoherenceMsg::AckCount { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::RelayedInvAck { .. } => VirtualNetwork::RESPONSE,
            CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. }
            | CoherenceMsg::OsWakeup { .. } => VirtualNetwork::SYSTEM,
        }
    }

    /// Packet length in flits: 8 for a cache block, 1 for control.
    pub fn flits(&self) -> u8 {
        match self {
            CoherenceMsg::Data { .. } => 8,
            CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. }
            | CoherenceMsg::FwdGetS { .. }
            | CoherenceMsg::FwdGetX { .. }
            | CoherenceMsg::Inv { .. }
            | CoherenceMsg::AckCount { .. }
            | CoherenceMsg::InvAck { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::RelayedInvAck { .. }
            | CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. }
            | CoherenceMsg::OsWakeup { .. } => 1,
        }
    }

    /// The block address this message concerns.
    pub fn addr(&self) -> Addr {
        match *self {
            CoherenceMsg::GetS { addr, .. }
            | CoherenceMsg::GetX { addr, .. }
            | CoherenceMsg::RelayedGetX { addr, .. }
            | CoherenceMsg::FwdGetS { addr, .. }
            | CoherenceMsg::FwdGetX { addr, .. }
            | CoherenceMsg::Inv { addr, .. }
            | CoherenceMsg::Data { addr, .. }
            | CoherenceMsg::AckCount { addr, .. }
            | CoherenceMsg::InvAck { addr, .. }
            | CoherenceMsg::EarlyInvAck { addr, .. }
            | CoherenceMsg::RelayedInvAck { addr, .. }
            | CoherenceMsg::UnblockS { addr, .. }
            | CoherenceMsg::UnblockX { addr, .. } => addr,
            CoherenceMsg::OsWakeup { .. } => Addr::new(0),
        }
    }
}

impl PacketGenPayload for CoherenceMsg {
    fn as_lock_request(&self) -> Option<LockRequest> {
        if let CoherenceMsg::GetX { addr, requester, home, lock: true, .. } = *self {
            Some(LockRequest { addr, requester, home })
        } else {
            None
        }
    }

    fn is_inv_ack(&self) -> bool {
        matches!(
            self,
            CoherenceMsg::InvAck { .. }
                | CoherenceMsg::EarlyInvAck { .. }
                | CoherenceMsg::RelayedInvAck { .. }
        )
    }

    fn as_early_ack(&self) -> Option<EarlyAck> {
        if let CoherenceMsg::EarlyInvAck { addr, from, home, inv_sent_at } = *self {
            Some(EarlyAck { addr, from, home, inv_sent_at })
        } else {
            None
        }
    }

    fn early_inv(request: LockRequest, ack_router: CoreId, now: Cycle) -> Self {
        CoherenceMsg::Inv {
            addr: request.addr,
            ack_to: AckTarget::Router(ack_router),
            home: request.home,
            sent_at: now,
            // Early invalidations are not tied to a winner epoch; their
            // acknowledgements travel via the home node, which stamps the
            // current winner's sequence number when forwarding.
            for_seq: 0,
        }
    }

    fn forwarded_getx(&self, now: Cycle) -> Self {
        match *self {
            CoherenceMsg::GetX { addr, requester, home, failable, seq, .. } => {
                CoherenceMsg::RelayedGetX { addr, requester, home, stopped_at: now, failable, seq }
            }
            ref other => {
                debug_assert!(false, "forwarded_getx on non-GetX message");
                other.clone()
            }
        }
    }

    fn relayed_ack(ack: EarlyAck, now: Cycle) -> Self {
        CoherenceMsg::RelayedInvAck {
            addr: ack.addr,
            from: ack.from,
            inv_sent_at: ack.inv_sent_at,
            relayed_at: now,
        }
    }
}

/// An outgoing message plus its destination, produced by L1 and home
/// controllers; the system layer wraps it into a NoC packet.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Destination core (tile).
    pub dst: CoreId,
    /// NI or router sink.
    pub sink: Sink,
    /// The protocol message.
    pub msg: CoherenceMsg,
    /// OCOR priority (0 unless the upper layer assigns one).
    pub priority: u8,
}

impl Envelope {
    /// Wraps `msg` for delivery to `dst`'s network interface.
    pub fn to_core(dst: CoreId, msg: CoherenceMsg) -> Self {
        Envelope { dst, sink: Sink::NetworkInterface, msg, priority: 0 }
    }

    /// Wraps `msg` for consumption by the router at `router` (early
    /// invalidation acknowledgements).
    pub fn to_router(router: CoreId, msg: CoherenceMsg) -> Self {
        Envelope { dst: router, sink: Sink::Router, msg, priority: 0 }
    }

    /// Sets the OCOR priority.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn getx(lock: bool) -> CoherenceMsg {
        CoherenceMsg::GetX {
            addr: Addr::new(0x1000),
            requester: CoreId::new(3),
            home: CoreId::new(9),
            lock,
            failable: true,
            seq: 4,
        }
    }

    #[test]
    fn only_lock_getx_is_interceptable() {
        assert!(getx(true).as_lock_request().is_some());
        assert!(getx(false).as_lock_request().is_none());
        let req = getx(true).as_lock_request().unwrap();
        assert_eq!(req.addr, Addr::new(0x1000));
        assert_eq!(req.requester, CoreId::new(3));
        assert_eq!(req.home, CoreId::new(9));
    }

    #[test]
    fn forwarded_getx_becomes_relayed() {
        let fwd = getx(true).forwarded_getx(Cycle::new(17));
        assert_eq!(
            fwd,
            CoherenceMsg::RelayedGetX {
                addr: Addr::new(0x1000),
                requester: CoreId::new(3),
                home: CoreId::new(9),
                stopped_at: Cycle::new(17),
                failable: true,
                seq: 4,
            }
        );
    }

    #[test]
    fn early_inv_round_trip_through_trait() {
        let req = getx(true).as_lock_request().unwrap();
        let router = CoreId::new(10);
        let inv = CoherenceMsg::early_inv(req, router, Cycle::new(42));
        let CoherenceMsg::Inv { ack_to, sent_at, home, for_seq, .. } = inv else {
            panic!("expected Inv")
        };
        assert_eq!(for_seq, 0, "early invalidations carry no winner epoch");
        assert_eq!(ack_to, AckTarget::Router(router));
        assert_eq!(sent_at, Cycle::new(42));
        assert_eq!(home, CoreId::new(9));

        let ack = CoherenceMsg::EarlyInvAck {
            addr: Addr::new(0x1000),
            from: CoreId::new(3),
            home: CoreId::new(9),
            inv_sent_at: Cycle::new(42),
        };
        let extracted = ack.as_early_ack().unwrap();
        assert_eq!(extracted.inv_sent_at, Cycle::new(42));
        let relayed = CoherenceMsg::relayed_ack(extracted, Cycle::new(50));
        let CoherenceMsg::RelayedInvAck { inv_sent_at, relayed_at, .. } = relayed else {
            panic!("expected RelayedInvAck")
        };
        assert_eq!(inv_sent_at, Cycle::new(42));
        assert_eq!(relayed_at, Cycle::new(50));
    }

    #[test]
    fn vnet_classes_are_separated() {
        assert_eq!(getx(true).vnet(), VirtualNetwork::REQUEST);
        assert_eq!(
            CoherenceMsg::Inv {
                addr: Addr::new(0),
                ack_to: AckTarget::Core(CoreId::new(0)),
                home: CoreId::new(0),
                sent_at: Cycle::ZERO,
                for_seq: 0,
            }
            .vnet(),
            VirtualNetwork::FORWARD
        );
        assert_eq!(
            CoherenceMsg::Data {
                addr: Addr::new(0),
                value: 0,
                acks_expected: 0,
                exclusive: false,
                needs_unblock: false,
                for_seq: None,
            }
            .vnet(),
            VirtualNetwork::RESPONSE
        );
        assert_eq!(
            CoherenceMsg::OsWakeup { core: CoreId::new(1) }.vnet(),
            VirtualNetwork::SYSTEM
        );
        assert_eq!(
            CoherenceMsg::UnblockX { addr: Addr::new(0), from: CoreId::new(0) }.vnet(),
            VirtualNetwork::SYSTEM
        );
    }

    #[test]
    fn data_is_a_block_packet() {
        let data = CoherenceMsg::Data {
            addr: Addr::new(0),
            value: 7,
            acks_expected: 0,
            exclusive: false,
            needs_unblock: false,
            for_seq: None,
        };
        assert_eq!(data.flits(), 8);
        assert_eq!(getx(true).flits(), 1);
        assert_eq!(
            CoherenceMsg::AckCount { addr: Addr::new(0), acks_expected: 3, for_seq: 0 }.flits(),
            1
        );
    }
}
