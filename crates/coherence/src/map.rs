//! Home-node mapping: which L2 bank (tile) owns each cache block.

use inpg_sim::{Addr, CoreId};

/// Block-interleaved mapping of addresses to home tiles.
///
/// The target architecture (paper Figure 3) distributes the shared L2
/// across all tiles; consecutive 128-byte blocks interleave across the
/// banks, so `home(block) = block_index mod cores`.
///
/// # Example
///
/// ```
/// use inpg_coherence::HomeMap;
/// use inpg_sim::Addr;
///
/// let map = HomeMap::new(64);
/// assert_eq!(map.home_of(Addr::new(0)).index(), 0);
/// assert_eq!(map.home_of(Addr::new(128)).index(), 1);
/// assert_eq!(map.home_of(Addr::new(64 * 128)).index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HomeMap {
    cores: usize,
}

impl HomeMap {
    /// Creates a mapping over `cores` L2 banks.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "at least one L2 bank is required");
        HomeMap { cores }
    }

    /// The home tile of the block containing `addr`.
    pub fn home_of(self, addr: Addr) -> CoreId {
        CoreId::new((addr.block_index() % self.cores as u64) as usize)
    }

    /// Number of banks.
    pub fn cores(self) -> usize {
        self.cores
    }

    /// A block-aligned address homed at `home`, distinct for each
    /// `slot`. Used to place lock variables at chosen home nodes (e.g.
    /// Figure 10 homes the contended lock at tile (5, 6)).
    pub fn addr_homed_at(self, home: CoreId, slot: u64) -> Addr {
        assert!(home.index() < self.cores, "home out of range");
        let block_index = slot * self.cores as u64 + home.index() as u64;
        Addr::new(block_index * inpg_sim::ids::BLOCK_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaves_blocks() {
        let map = HomeMap::new(4);
        assert_eq!(map.home_of(Addr::new(0)).index(), 0);
        assert_eq!(map.home_of(Addr::new(127)).index(), 0);
        assert_eq!(map.home_of(Addr::new(128)).index(), 1);
        assert_eq!(map.home_of(Addr::new(3 * 128)).index(), 3);
        assert_eq!(map.home_of(Addr::new(4 * 128)).index(), 0);
    }

    #[test]
    fn addr_homed_at_round_trips() {
        let map = HomeMap::new(64);
        for home in [0usize, 5, 63] {
            for slot in [0u64, 1, 17] {
                let addr = map.addr_homed_at(CoreId::new(home), slot);
                assert!(addr.is_block_aligned());
                assert_eq!(map.home_of(addr), CoreId::new(home));
            }
        }
    }

    #[test]
    fn distinct_slots_give_distinct_blocks() {
        let map = HomeMap::new(8);
        let a = map.addr_homed_at(CoreId::new(3), 0);
        let b = map.addr_homed_at(CoreId::new(3), 1);
        assert_ne!(a.block(), b.block());
    }

    #[test]
    #[should_panic(expected = "at least one L2 bank")]
    fn zero_cores_panics() {
        HomeMap::new(0);
    }
}
