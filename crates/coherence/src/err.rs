//! Typed protocol errors raised by the pure L1/home step functions.
//!
//! The timed controllers treat every variant as a fatal protocol bug
//! (they abort the simulation through `SimError`); the `inpg-analysis`
//! model checker treats them as property violations and reports the
//! message interleaving that produced them.

use crate::msg::CoherenceMsg;
use inpg_sim::{Addr, CoreId};
use std::fmt;

/// A protocol-level violation detected by a pure step function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoherenceError {
    /// An operation was issued while another is still outstanding.
    IssueWhileBusy {
        /// The offending core.
        core: CoreId,
    },
    /// A response arrived at an L1 with no matching transaction.
    ResponseWithoutTxn {
        /// The receiving core.
        core: CoreId,
        /// The orphaned message.
        msg: CoherenceMsg,
    },
    /// A response arrived for a different block than the outstanding
    /// transaction's.
    ResponseAddrMismatch {
        /// The receiving core.
        core: CoreId,
        /// The block the response names.
        got: Addr,
        /// The block the transaction is for.
        want: Addr,
    },
    /// More invalidation acknowledgements arrived than the home node
    /// announced.
    SurplusInvAck {
        /// The collecting core.
        core: CoreId,
        /// The contended block.
        addr: Addr,
        /// Acknowledgements announced by the home node.
        expected: u16,
        /// Acknowledgements actually received.
        received: u16,
    },
    /// An `AckCount` (data-less grant) arrived at a core that does not
    /// hold the authoritative value.
    AckCountWithoutOwnership {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// The home demoted a request that never declared itself failable.
    NonFailableDemoted {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// A demoted service reached a transaction that is not a
    /// compare-and-swap (only conditional RMWs may be demoted).
    DemotedNotConditional {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// An exclusive transaction was granted shared data outside the
    /// demotion path.
    SharedGrantForExclusive {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// An ownership-transfer forward reached a core that is neither an
    /// owner nor an upgrading owner — home serialization was violated.
    ForwardToNonOwner {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// An ownership-transfer forward arrived after the transaction was
    /// already granted.
    ForwardAfterGrant {
        /// The receiving core.
        core: CoreId,
        /// The block address.
        addr: Addr,
    },
    /// A message class the L1 never receives was delivered to an L1.
    UnexpectedAtL1 {
        /// The receiving core.
        core: CoreId,
        /// The misrouted message.
        msg: CoherenceMsg,
    },
    /// A message class the home node never receives was delivered to a
    /// home node.
    UnexpectedAtHome {
        /// The misrouted message.
        msg: CoherenceMsg,
    },
    /// An unblock notice arrived for a block with no open transaction.
    UnblockIdleBlock {
        /// The block address.
        addr: Addr,
        /// The core that sent the notice.
        from: CoreId,
    },
    /// An unblock notice arrived from a core that is not the transaction
    /// holder.
    UnblockWrongCore {
        /// The block address.
        addr: Addr,
        /// The core that sent the notice.
        from: CoreId,
        /// The core actually holding the transaction.
        holder: CoreId,
    },
    /// Recovery retransmission was requested with no outstanding
    /// exclusive transaction to retransmit.
    RetransmitWithoutTxn {
        /// The offending core.
        core: CoreId,
    },
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::IssueWhileBusy { core } => {
                write!(f, "{core}: demand operation issued while another is outstanding")
            }
            CoherenceError::ResponseWithoutTxn { core, msg } => {
                write!(f, "{core}: response {msg:?} with no outstanding transaction")
            }
            CoherenceError::ResponseAddrMismatch { core, got, want } => {
                write!(f, "{core}: response for {got} but transaction is for {want}")
            }
            CoherenceError::SurplusInvAck { core, addr, expected, received } => {
                write!(
                    f,
                    "{core}: surplus InvAck on {addr}: {received} received, {expected} expected"
                )
            }
            CoherenceError::AckCountWithoutOwnership { core, addr } => {
                write!(f, "{core}: AckCount for {addr} but the core owns no authoritative value")
            }
            CoherenceError::NonFailableDemoted { core, addr } => {
                write!(f, "{core}: non-failable exclusive request for {addr} was demoted")
            }
            CoherenceError::DemotedNotConditional { core, addr } => {
                write!(f, "{core}: demoted service for {addr} on a non-conditional RMW")
            }
            CoherenceError::SharedGrantForExclusive { core, addr } => {
                write!(f, "{core}: shared data granted to an exclusive transaction on {addr}")
            }
            CoherenceError::ForwardToNonOwner { core, addr } => {
                write!(f, "{core}: FwdGetX for {addr} reached a non-owner")
            }
            CoherenceError::ForwardAfterGrant { core, addr } => {
                write!(f, "{core}: FwdGetX for {addr} arrived after the grant")
            }
            CoherenceError::UnexpectedAtL1 { core, msg } => {
                write!(f, "{core}: L1 received unexpected message {msg:?}")
            }
            CoherenceError::UnexpectedAtHome { msg } => {
                write!(f, "home node received unexpected message {msg:?}")
            }
            CoherenceError::UnblockIdleBlock { addr, from } => {
                write!(f, "unblock for an idle block {addr} from {from}")
            }
            CoherenceError::UnblockWrongCore { addr, from, holder } => {
                write!(f, "unblock for {addr} from {from} but {holder} holds the transaction")
            }
            CoherenceError::RetransmitWithoutTxn { core } => {
                write!(f, "{core}: retransmission fired with no exclusive transaction pending")
            }
        }
    }
}

impl std::error::Error for CoherenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_culprits() {
        let e = CoherenceError::SurplusInvAck {
            core: CoreId::new(3),
            addr: Addr::new(0x80),
            expected: 2,
            received: 3,
        };
        let text = e.to_string();
        assert!(text.contains("core 3"), "{text}");
        assert!(text.contains("3 received, 2 expected"), "{text}");

        let e = CoherenceError::UnblockIdleBlock { addr: Addr::new(0), from: CoreId::new(1) };
        assert!(e.to_string().contains("idle block"));
    }
}
