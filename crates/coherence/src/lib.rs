//! Directory-based MOESI cache coherence for the iNPG reproduction.
//!
//! The crate provides the protocol substrate of the paper's target
//! many-core (Table 1): private L1 caches with a directory-based MOESI
//! protocol, a chip-wide shared L2 distributed over all tiles
//! (block-interleaved home nodes), and the protocol message set —
//! including the iNPG extensions (`RelayedGetX`, `EarlyInvAck`,
//! `RelayedInvAck`) that big routers generate.
//!
//! Components communicate through [`Envelope`]s; the `inpg-manycore`
//! crate wraps them into NoC packets. [`CoherenceMsg`] implements the
//! NoC's [`PacketGenPayload`](inpg_noc::PacketGenPayload), which is how
//! big routers learn to intercept lock `GetX` requests.
//!
//! See module docs of [`l1`] and [`home`] for the protocol state
//! machines, and `DESIGN.md` at the repository root for the documented
//! simplifications.

pub mod err;
pub mod home;
pub mod l1;
pub mod map;
pub mod msg;
pub mod stats;

pub use err::CoherenceError;
pub use home::{HomeBank, HomeCore};
pub use l1::{Completion, L1Cache, L1Core, MemOp, MemOpKind};
pub use map::HomeMap;
pub use msg::{AckTarget, CoherenceMsg, Envelope};
pub use stats::{HomeStats, InvAckRoundTrips, L1Stats};
