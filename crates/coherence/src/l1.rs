//! The private L1 cache controller: MOESI stable states plus the
//! transient transactions the lock workloads exercise.
//!
//! Each core owns one [`L1Cache`]. The core model issues at most one
//! demand operation at a time (cores block on memory in the
//! lock/critical-section code paths); the controller turns misses into
//! directory transactions and answers forwards/invalidations from the
//! network at any time.
//!
//! # Model simplifications (documented in `DESIGN.md`)
//!
//! * No capacity evictions: the lock study touches a handful of blocks,
//!   far below the 32 KB capacity, so replacement never triggers and is
//!   not modelled.
//! * One word of payload per 128-byte block — exactly what lock variables
//!   and per-thread queue nodes need.
//! * A read whose data response races an invalidation installs a shared
//!   copy that may be momentarily stale; the authoritative SWAP/CAS path
//!   always goes through an exclusive transaction, so lock correctness is
//!   unaffected (a stale spin read just retries).

use crate::map::HomeMap;
use crate::msg::{AckTarget, CoherenceMsg, Envelope};
use crate::stats::{InvAckRoundTrips, L1Stats};
use inpg_sim::{Addr, CoreId, Cycle, EventWheel};
use std::collections::HashMap;

/// One memory operation a core can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOpKind {
    /// Read a word.
    Load,
    /// Write a word.
    Store(u64),
    /// Atomically exchange the word, returning the old value (the
    /// paper's `SWAP`).
    Swap(u64),
    /// Atomically add to the word, returning the old value
    /// (`fetch_and_add`, used by the ticket lock and ABQL).
    FetchAdd(u64),
    /// Atomically compare-and-swap, returning the old value
    /// (`compare_and_swap`, used by the MCS lock).
    CompareSwap {
        /// Value the word must currently hold for the swap to happen.
        expected: u64,
        /// Value written on success.
        new: u64,
    },
}

impl MemOpKind {
    /// Whether this operation needs exclusive (write) access.
    pub fn is_write(self) -> bool {
        !matches!(self, MemOpKind::Load)
    }

    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            MemOpKind::Load => old,
            MemOpKind::Store(v) | MemOpKind::Swap(v) => v,
            MemOpKind::FetchAdd(d) => old.wrapping_add(d),
            MemOpKind::CompareSwap { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
        }
    }
}

/// A memory operation plus the address it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Target address (word granularity; coherence is per block).
    pub addr: Addr,
    /// What to do.
    pub kind: MemOpKind,
    /// True when the address is a lock variable: the resulting `GetX` is
    /// interceptable by big routers and counted as lock coherence
    /// overhead.
    pub lock: bool,
}

/// The result handed back to the core when an operation finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The finished operation.
    pub op: MemOp,
    /// The value the word held *before* the operation (load value, or
    /// the old value for RMWs).
    pub value: u64,
    /// When the operation was issued.
    pub issued_at: Cycle,
    /// When it completed.
    pub completed_at: Cycle,
}

/// MOESI stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Modified,
    Owned,
    Exclusive,
    Shared,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    state: State,
    value: u64,
}

/// An in-flight directory transaction.
#[derive(Debug, Clone, Copy)]
struct PendingTxn {
    op: MemOp,
    issued_at: Cycle,
    exclusive: bool,
    /// Data (or AckCount) received yet?
    granted: bool,
    /// Value delivered by Data (exclusive path) or kept from an O-state
    /// upgrade (AckCount path).
    value: u64,
    /// Whether `value` is authoritative even if Data arrives (O upgrade).
    own_value: bool,
    acks_expected: Option<u16>,
    acks_received: u16,
    /// Whether the request may be demoted to a failed shared-copy
    /// service (conditional lock RMWs).
    failable: bool,
    /// An invalidation raced this transaction: any shared copy received
    /// is potentially stale and must not be cached.
    poisoned: bool,
    /// OCOR priority (kept for reissues).
    priority: u8,
}

/// The private L1 cache + controller of one core.
#[derive(Debug)]
pub struct L1Cache {
    core: CoreId,
    home_map: HomeMap,
    lines: HashMap<Addr, Line>,
    pending: Option<PendingTxn>,
    done: EventWheel<Completion>,
    completed: Option<Completion>,
    hit_latency: u64,
    stats: L1Stats,
    roundtrips: InvAckRoundTrips,
}

impl L1Cache {
    /// Creates the L1 for `core`. `hit_latency` is Table 1's 2-cycle L1
    /// latency.
    pub fn new(core: CoreId, home_map: HomeMap, hit_latency: u64) -> Self {
        L1Cache {
            core,
            home_map,
            lines: HashMap::new(),
            pending: None,
            done: EventWheel::new(),
            completed: None,
            hit_latency,
            stats: L1Stats::default(),
            roundtrips: InvAckRoundTrips::new(home_map.cores(), 256),
        }
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether a demand operation is outstanding.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some() || !self.done.is_empty() || self.completed.is_some()
    }

    /// Counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Invalidation round trips observed by this core as a *winner*
    /// (direct acknowledgements it collected).
    pub fn roundtrips(&self) -> &InvAckRoundTrips {
        &self.roundtrips
    }

    /// Pending-transaction description for stuck-run diagnostics.
    pub fn pending_report(&self) -> Option<String> {
        Some(format!(
            "pending={:?} done_queue={} completed={:?} busy={}",
            self.pending,
            self.done.len(),
            self.completed,
            self.is_busy()
        ))
    }

    /// The cached line (state, value) of `addr`, for diagnostics.
    pub fn probe_line(&self, addr: Addr) -> Option<(&'static str, u64)> {
        self.lines.get(&addr.block()).map(|l| {
            let s = match l.state {
                State::Modified => "M",
                State::Owned => "O",
                State::Exclusive => "E",
                State::Shared => "S",
            };
            (s, l.value)
        })
    }

    /// All cached lines as `(block address, state letter)` pairs, for
    /// invariant checking (e.g. the single-writer rule across cores).
    pub fn lines_snapshot(&self) -> Vec<(Addr, &'static str)> {
        self.lines
            .iter()
            .map(|(addr, line)| {
                let s = match line.state {
                    State::Modified => "M",
                    State::Owned => "O",
                    State::Exclusive => "E",
                    State::Shared => "S",
                };
                (*addr, s)
            })
            .collect()
    }

    /// If this core is blocked collecting invalidation acknowledgements,
    /// returns `(addr, expected, received, issued_at)` for the stalled
    /// transaction. `None` when idle or not yet told an ack count.
    pub fn pending_ack_wait(&self) -> Option<(Addr, u16, u16, Cycle)> {
        let pending = self.pending.as_ref()?;
        let expected = pending.acks_expected?;
        if pending.acks_received < expected {
            Some((pending.op.addr, expected, pending.acks_received, pending.issued_at))
        } else {
            None
        }
    }

    /// The cached state of `addr` as a debug string (testing aid).
    pub fn probe_state(&self, addr: Addr) -> &'static str {
        match self.lines.get(&addr.block()).map(|l| l.state) {
            Some(State::Modified) => "M",
            Some(State::Owned) => "O",
            Some(State::Exclusive) => "E",
            Some(State::Shared) => "S",
            None => "I",
        }
    }

    /// Issues a demand operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding; the core model must
    /// wait for [`take_completion`](Self::take_completion) first.
    pub fn issue(&mut self, op: MemOp, now: Cycle, out: &mut Vec<Envelope>) {
        self.issue_with_priority(op, 0, now, out);
    }

    /// Issues a demand operation whose request packet carries an OCOR
    /// `priority`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding.
    pub fn issue_with_priority(
        &mut self,
        op: MemOp,
        priority: u8,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) {
        assert!(!self.is_busy(), "L1 supports one outstanding demand op");
        let block = op.addr.block();
        if op.kind.is_write() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        let line = self.lines.get_mut(&block);
        match line {
            // Load hits in any valid state.
            Some(line) if !op.kind.is_write() => {
                self.stats.hits += 1;
                let value = line.value;
                self.done.schedule(
                    now + self.hit_latency,
                    Completion { op, value, issued_at: now, completed_at: now + self.hit_latency },
                );
            }
            // Writes hit in M and E (E upgrades silently).
            Some(line)
                if matches!(line.state, State::Modified | State::Exclusive) =>
            {
                self.stats.hits += 1;
                let old = line.value;
                line.value = op.kind.apply(old);
                line.state = State::Modified;
                self.done.schedule(
                    now + self.hit_latency,
                    Completion {
                        op,
                        value: old,
                        issued_at: now,
                        completed_at: now + self.hit_latency,
                    },
                );
            }
            // Write in S/O, or any miss: directory transaction.
            other => {
                self.stats.misses += 1;
                let home = self.home_map.home_of(block);
                if op.kind.is_write() {
                    // S/O copies are dropped; an O owner keeps its value
                    // as the authoritative one (the home copy is stale).
                    let own = other.map(|l| (l.state, l.value));
                    let (own_value, value) = match own {
                        Some((State::Owned, v)) | Some((State::Modified, v)) => (true, v),
                        _ => (false, 0),
                    };
                    self.lines.remove(&block);
                    self.stats.getx_issued += 1;
                    // An O-state owner upgrading in place must never be
                    // intercepted by a big router: its copy is the only
                    // up-to-date one and the directory will forward other
                    // requesters to it. Clear the interceptable flag on
                    // the wire (LCO accounting still uses `op.lock`).
                    let interceptable = op.lock && !own_value;
                    // Conditional RMWs (compare-and-swap) may be demoted
                    // to a failed shared-copy service by the home node.
                    let failable = matches!(op.kind, MemOpKind::CompareSwap { .. }) && !own_value;
                    self.pending = Some(PendingTxn {
                        op,
                        issued_at: now,
                        exclusive: true,
                        granted: false,
                        value,
                        own_value,
                        acks_expected: None,
                        acks_received: 0,
                        failable,
                        poisoned: false,
                        priority,
                    });
                    out.push(
                        Envelope::to_core(
                            home,
                            CoherenceMsg::GetX {
                                addr: block,
                                requester: self.core,
                                home,
                                lock: interceptable,
                                failable,
                            },
                        )
                        .with_priority(priority),
                    );
                } else {
                    self.stats.gets_issued += 1;
                    self.pending = Some(PendingTxn {
                        op,
                        issued_at: now,
                        exclusive: false,
                        granted: false,
                        value: 0,
                        own_value: false,
                        acks_expected: Some(0),
                        acks_received: 0,
                        failable: false,
                        poisoned: false,
                        priority,
                    });
                    out.push(
                        Envelope::to_core(
                            home,
                            CoherenceMsg::GetS { addr: block, requester: self.core },
                        )
                        .with_priority(priority),
                    );
                }
            }
        }
    }

    /// Handles one protocol message delivered to this core.
    pub fn handle(&mut self, msg: CoherenceMsg, now: Cycle, out: &mut Vec<Envelope>) {
        match msg {
            CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock } => {
                self.on_data(addr, value, acks_expected, exclusive, needs_unblock, now, out);
            }
            CoherenceMsg::AckCount { addr, acks_expected } => {
                let pending = self.pending.as_mut().expect("AckCount without transaction");
                debug_assert_eq!(pending.op.addr.block(), addr);
                debug_assert!(pending.exclusive && pending.own_value);
                pending.granted = true;
                pending.acks_expected = Some(acks_expected);
                self.try_complete_exclusive(now, out);
            }
            CoherenceMsg::InvAck { addr, from, inv_sent_at, via_home, count } => {
                let pending = self.pending.as_mut().expect("InvAck without transaction");
                debug_assert_eq!(pending.op.addr.block(), addr);
                pending.acks_received += count;
                if !via_home {
                    self.roundtrips.record(from, now.saturating_since(inv_sent_at));
                }
                self.try_complete_exclusive(now, out);
            }
            CoherenceMsg::Inv { addr, ack_to, home, sent_at } => {
                self.stats.invs_received += 1;
                self.lines.remove(&addr);
                if let Some(pending) = self.pending.as_mut() {
                    if pending.op.addr.block() == addr {
                        // A racing invalidation: any *shared* data this
                        // transaction later receives may be stale and
                        // must not be cached.
                        pending.poisoned = true;
                    }
                }
                match ack_to {
                    AckTarget::Core(winner) => out.push(Envelope::to_core(
                        winner,
                        CoherenceMsg::InvAck {
                            addr,
                            from: self.core,
                            inv_sent_at: sent_at,
                            via_home: false,
                            count: 1,
                        },
                    )),
                    AckTarget::Router(router) => out.push(Envelope::to_router(
                        router,
                        CoherenceMsg::EarlyInvAck {
                            addr,
                            from: self.core,
                            home,
                            inv_sent_at: sent_at,
                        },
                    )),
                }
            }
            CoherenceMsg::FwdGetS { addr, requester } => {
                // An owner that issued an upgrade GetX has dropped its
                // line but is still the logical owner until the home
                // processes its (queued) request: serve the forward from
                // the transaction's saved value (the MOESI "OM" state).
                let value = if let Some(line) = self.lines.get_mut(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.state = State::Owned;
                    line.value
                } else if let Some(pending) = self
                    .pending
                    .as_ref()
                    .filter(|p| p.op.addr.block() == addr && p.own_value)
                {
                    pending.value
                } else {
                    // Ownership moved on before the forward arrived (the
                    // non-blocking read path allows this): bounce the
                    // request back to the home, which re-resolves the
                    // current owner.
                    self.stats.forwards_bounced += 1;
                    let home = self.home_map.home_of(addr);
                    out.push(Envelope::to_core(
                        home,
                        CoherenceMsg::GetS { addr, requester },
                    ));
                    return;
                };
                out.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected: 0,
                        exclusive: false,
                        needs_unblock: false,
                    },
                ));
            }
            CoherenceMsg::FwdGetX { addr, requester, acks_expected } => {
                let value = if let Some(line) = self.lines.remove(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.value
                } else {
                    // Ownership is taken away while our own upgrade GetX
                    // is still queued at the home: hand the dirty value
                    // over and demote our transaction to an ordinary
                    // miss (the home will route fresh data to us when
                    // our turn comes).
                    let pending = self
                        .pending
                        .as_mut()
                        .filter(|p| p.op.addr.block() == addr && p.own_value)
                        .expect("FwdGetX to a non-owner: home serialization violated");
                    debug_assert!(!pending.granted, "forward after grant");
                    pending.own_value = false;
                    let value = pending.value;
                    pending.value = 0;
                    value
                };
                out.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected,
                        exclusive: true,
                        needs_unblock: true,
                    },
                ));
            }
            other => panic!("L1 received unexpected message {other:?}"),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the Data message fields
    fn on_data(
        &mut self,
        addr: Addr,
        value: u64,
        acks_expected: u16,
        exclusive: bool,
        needs_unblock: bool,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) {
        let pending = self.pending.as_mut().expect("Data without transaction");
        debug_assert_eq!(pending.op.addr.block(), addr);
        if pending.exclusive && !exclusive {
            // Demoted: the home answered a failable lock RMW with a
            // shared copy because the block is owned elsewhere (paper
            // Figure 4 step 4). The conditional op fails without
            // writing — unless the observed value would have let it
            // succeed, in which case contend properly with a
            // non-demotable retry.
            assert!(pending.failable, "non-failable exclusive granted shared data");
            let MemOpKind::CompareSwap { expected, .. } = pending.op.kind else {
                panic!("failable transaction must be a compare-and-swap")
            };
            if value == expected {
                self.stats.demote_retries += 1;
                let pending = self.pending.as_mut().expect("checked above");
                pending.failable = false;
                pending.poisoned = false;
                let home = self.home_map.home_of(addr);
                out.push(
                    Envelope::to_core(
                        home,
                        CoherenceMsg::GetX {
                            addr,
                            requester: self.core,
                            home,
                            lock: pending.op.lock,
                            failable: false,
                        },
                    )
                    .with_priority(pending.priority),
                );
                return;
            }
            self.stats.demoted_fails += 1;
            let pending = self.pending.take().expect("checked above");
            if !pending.poisoned {
                self.lines.insert(addr, Line { state: State::Shared, value });
            }
            debug_assert!(!needs_unblock, "demoted service must not block the home");
            self.finish(pending, value, now);
            return;
        }
        if pending.exclusive {
            debug_assert!(exclusive, "exclusive transaction granted shared data");
            pending.granted = true;
            pending.acks_expected = Some(acks_expected);
            if !pending.own_value {
                pending.value = value;
            }
            self.try_complete_exclusive(now, out);
        } else {
            // Read transaction completes on data.
            let pending = self.pending.take().expect("checked above");
            if exclusive || !pending.poisoned {
                let state = if exclusive { State::Exclusive } else { State::Shared };
                self.lines.insert(addr, Line { state, value });
            }
            if needs_unblock {
                let home = self.home_map.home_of(addr);
                out.push(Envelope::to_core(
                    home,
                    CoherenceMsg::UnblockS { addr, from: self.core },
                ));
            }
            self.finish(pending, value, now);
        }
    }

    fn try_complete_exclusive(&mut self, now: Cycle, out: &mut Vec<Envelope>) {
        let Some(pending) = self.pending.as_ref() else { return };
        let Some(expected) = pending.acks_expected else { return };
        if !pending.granted || pending.acks_received < expected {
            return;
        }
        debug_assert!(pending.acks_received == expected, "surplus InvAcks");
        let pending = self.pending.take().expect("checked above");
        let block = pending.op.addr.block();
        let old = pending.value;
        let new = pending.op.kind.apply(old);
        self.lines.insert(block, Line { state: State::Modified, value: new });
        let home = self.home_map.home_of(block);
        out.push(Envelope::to_core(home, CoherenceMsg::UnblockX { addr: block, from: self.core }));
        self.finish(pending, old, now);
    }

    fn finish(&mut self, pending: PendingTxn, value: u64, now: Cycle) {
        let busy = now.saturating_since(pending.issued_at);
        self.stats.mem_txn_cycles += busy;
        if pending.exclusive {
            self.stats.write_miss_lat += busy;
            self.stats.write_misses += 1;
        } else {
            self.stats.read_miss_lat += busy;
            self.stats.read_misses += 1;
        }
        if pending.op.lock {
            self.stats.lock_txn_cycles += busy;
            self.stats.lock_txns += 1;
        }
        self.done.schedule(
            now + 1,
            Completion { op: pending.op, value, issued_at: pending.issued_at, completed_at: now + 1 },
        );
    }

    /// Advances internal timers (hit-latency and completion events).
    pub fn tick(&mut self, now: Cycle) {
        if self.completed.is_none() {
            self.completed = self.done.pop_due(now);
        }
        if let Some(due) = self.done.next_due() {
            if now.saturating_since(due) > 100_000 {
                panic!(
                    "L1 {} completion stuck: due {due:?} now {now:?} completed {:?} pending {:?}",
                    self.core.index(), self.completed, self.pending
                );
            }
        }
    }

    /// Removes and returns the completion of the outstanding operation,
    /// if it has finished.
    pub fn take_completion(&mut self) -> Option<Completion> {
        self.completed.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(CoreId::new(0), HomeMap::new(4), 2)
    }

    fn drive_until_complete(l1: &mut L1Cache, mut now: Cycle) -> (Completion, Cycle) {
        for _ in 0..64 {
            l1.tick(now);
            if let Some(c) = l1.take_completion() {
                return (c, now);
            }
            now = now.next();
        }
        panic!("operation did not complete");
    }

    fn data(addr: Addr, value: u64, acks: u16, exclusive: bool) -> CoherenceMsg {
        CoherenceMsg::Data {
            addr,
            value,
            acks_expected: acks,
            exclusive,
            needs_unblock: false,
        }
    }

    #[test]
    fn cold_load_issues_gets_and_installs_shared() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, CoherenceMsg::GetS { .. }));
        assert_eq!(out[0].dst, CoreId::new(2), "0x100 is block 2 of 4 banks");
        out.clear();
        l1.handle(data(addr.block(), 42, 0, false), Cycle::new(10), &mut out);
        assert!(out.is_empty(), "no unblock needed for direct shared grant");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(10));
        assert_eq!(c.value, 42);
        assert_eq!(l1.probe_state(addr), "S");
    }

    #[test]
    fn exclusive_read_grant_installs_e_and_write_hits_silently() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::Data {
                addr: addr.block(),
                value: 5,
                acks_expected: 0,
                exclusive: true,
                needs_unblock: true,
            },
            Cycle::new(8),
            &mut out,
        );
        assert!(
            matches!(out[0].msg, CoherenceMsg::UnblockS { .. }),
            "E grant blocks the home until unblocked"
        );
        drive_until_complete(&mut l1, Cycle::new(8));
        assert_eq!(l1.probe_state(addr), "E");

        // A store now upgrades silently: no traffic.
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(9), lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(c.value, 5, "store returns the old value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    fn swap_miss_runs_full_getx_transaction() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        let CoherenceMsg::GetX { lock, .. } = out[0].msg else { panic!("expected GetX") };
        assert!(lock, "lock flag propagates to the GetX");
        out.clear();

        // Data with two acks expected; completion only after both.
        l1.handle(data(addr.block(), 0, 2, true), Cycle::new(6), &mut out);
        assert!(out.is_empty());
        l1.tick(Cycle::new(7));
        assert!(l1.take_completion().is_none());
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(1),
                inv_sent_at: Cycle::new(2),
                via_home: false,
                count: 1,
            },
            Cycle::new(8),
            &mut out,
        );
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(2),
                via_home: true,
                count: 1,
            },
            Cycle::new(9),
            &mut out,
        );
        let unblock = out.iter().find(|e| matches!(e.msg, CoherenceMsg::UnblockX { .. }));
        assert!(unblock.is_some(), "winner unblocks the home");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(9));
        assert_eq!(c.value, 0, "swap returns the pre-swap value");
        assert_eq!(l1.probe_state(addr), "M");
        // Only the direct (non-via-home) ack was recorded as a round trip.
        assert_eq!(l1.roundtrips().total_count(), 1);
        assert_eq!(l1.stats().lock_txns, 1);
        assert!(l1.stats().lock_txn_cycles > 0);
    }

    #[test]
    fn acks_may_arrive_before_data() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(3),
                inv_sent_at: Cycle::ZERO,
                via_home: false,
                count: 1,
            },
            Cycle::new(4),
            &mut out,
        );
        l1.tick(Cycle::new(5));
        assert!(l1.take_completion().is_none(), "no data yet");
        l1.handle(data(addr.block(), 7, 1, true), Cycle::new(6), &mut out);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(6));
        assert_eq!(c.value, 7);
    }

    #[test]
    fn inv_invalidates_and_acks_winner() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "S");

        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Core(CoreId::new(3)),
                home: CoreId::new(2),
                sent_at: Cycle::new(9),
            },
            Cycle::new(12),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let ack = out.last().unwrap();
        assert_eq!(ack.dst, CoreId::new(3));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::InvAck { from, via_home: false, .. } if from == CoreId::new(0)
        ));
    }

    #[test]
    fn early_inv_acks_to_router_even_when_line_absent() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x300).block();
        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Router(CoreId::new(9)),
                home: CoreId::new(2),
                sent_at: Cycle::new(4),
            },
            Cycle::new(8),
            &mut out,
        );
        let ack = out.last().unwrap();
        assert_eq!(ack.dst, CoreId::new(9));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::EarlyInvAck { inv_sent_at, .. } if inv_sent_at == Cycle::new(4)
        ));
        assert_eq!(ack.sink, inpg_noc::Sink::Router);
    }

    #[test]
    fn fwd_gets_shares_and_keeps_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M owner.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(11), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "M");

        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(20), &mut out);
        assert_eq!(l1.probe_state(addr), "O");
        let CoherenceMsg::Data { value, exclusive, needs_unblock, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 11);
        assert!(!exclusive);
        assert!(!needs_unblock, "owner forwards are non-blocking");
        assert_eq!(out[0].dst, CoreId::new(2));
    }

    #[test]
    fn fwd_getx_transfers_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(13), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        out.clear();
        l1.handle(
            CoherenceMsg::FwdGetX { addr, requester: CoreId::new(3), acks_expected: 2 },
            Cycle::new(20),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let CoherenceMsg::Data { value, acks_expected, exclusive, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 13);
        assert_eq!(acks_expected, 2);
        assert!(exclusive);
    }

    #[test]
    fn o_state_upgrade_uses_own_value_with_ackcount() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M, then demote to O via FwdGetS.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(21), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(10), &mut out);
        assert_eq!(l1.probe_state(addr), "O");

        // Upgrade: O -> GetX; home answers with AckCount (no data).
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::new(20), &mut out);
        assert!(matches!(out[0].msg, CoherenceMsg::GetX { .. }));
        out.clear();
        l1.handle(CoherenceMsg::AckCount { addr, acks_expected: 1 }, Cycle::new(26), &mut out);
        l1.handle(
            CoherenceMsg::InvAck {
                addr,
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(24),
                via_home: false,
                count: 1,
            },
            Cycle::new(30),
            &mut out,
        );
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(30));
        assert_eq!(c.value, 21, "swap sees the owner's own (dirty) value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    #[should_panic(expected = "one outstanding")]
    fn double_issue_panics() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let op = MemOp { addr: Addr::new(0x100), kind: MemOpKind::Load, lock: false };
        l1.issue(op, Cycle::ZERO, &mut out);
        l1.issue(op, Cycle::ZERO, &mut out);
    }

    #[test]
    fn hit_latency_is_respected() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        // Now a hit: completes exactly hit_latency cycles later.
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, when) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(when, Cycle::new(22));
        assert_eq!(c.completed_at, Cycle::new(22));
    }
}
