//! The private L1 cache controller: MOESI stable states plus the
//! transient transactions the lock workloads exercise.
//!
//! The controller is split in two layers:
//!
//! * [`L1Core`] — the **pure, timing-free protocol state machine**: cache
//!   lines, the in-flight transaction, and step functions
//!   ([`L1Core::issue`], [`L1Core::handle`]) that map one input to state
//!   updates plus an [`L1Outcome`] (messages to send, a completed
//!   operation, bookkeeping notes). Protocol violations surface as typed
//!   [`CoherenceError`]s. The `inpg-analysis` model checker enumerates
//!   exactly these step functions over all bounded interleavings.
//! * [`L1Cache`] — the timed wrapper the simulator drives: it owns the
//!   hit/completion latencies, the statistics counters and the
//!   invalidation round-trip accounting, and delegates every protocol
//!   decision to the pure core.
//!
//! Each core owns one [`L1Cache`]. The core model issues at most one
//! demand operation at a time (cores block on memory in the
//! lock/critical-section code paths); the controller turns misses into
//! directory transactions and answers forwards/invalidations from the
//! network at any time.
//!
//! # Model simplifications (documented in `DESIGN.md`)
//!
//! * No capacity evictions: the lock study touches a handful of blocks,
//!   far below the 32 KB capacity, so replacement never triggers and is
//!   not modelled.
//! * One word of payload per 128-byte block — exactly what lock variables
//!   and per-thread queue nodes need.
//! * A read whose data response races an invalidation installs a shared
//!   copy that may be momentarily stale; the authoritative SWAP/CAS path
//!   always goes through an exclusive transaction, so lock correctness is
//!   unaffected (a stale spin read just retries).

use crate::err::CoherenceError;
use crate::map::HomeMap;
use crate::msg::{AckTarget, CoherenceMsg, Envelope};
use crate::stats::{InvAckRoundTrips, L1Stats};
use inpg_sim::{coverage, Addr, CoreId, Cycle, EventWheel};
use std::collections::BTreeMap;

/// One memory operation a core can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOpKind {
    /// Read a word.
    Load,
    /// Write a word.
    Store(u64),
    /// Atomically exchange the word, returning the old value (the
    /// paper's `SWAP`).
    Swap(u64),
    /// Atomically add to the word, returning the old value
    /// (`fetch_and_add`, used by the ticket lock and ABQL).
    FetchAdd(u64),
    /// Atomically compare-and-swap, returning the old value
    /// (`compare_and_swap`, used by the MCS lock).
    CompareSwap {
        /// Value the word must currently hold for the swap to happen.
        expected: u64,
        /// Value written on success.
        new: u64,
    },
}

impl MemOpKind {
    /// Whether this operation needs exclusive (write) access.
    pub fn is_write(self) -> bool {
        !matches!(self, MemOpKind::Load)
    }

    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            MemOpKind::Load => old,
            MemOpKind::Store(v) | MemOpKind::Swap(v) => v,
            MemOpKind::FetchAdd(d) => old.wrapping_add(d),
            MemOpKind::CompareSwap { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
        }
    }
}

/// A memory operation plus the address it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemOp {
    /// Target address (word granularity; coherence is per block).
    pub addr: Addr,
    /// What to do.
    pub kind: MemOpKind,
    /// True when the address is a lock variable: the resulting `GetX` is
    /// interceptable by big routers and counted as lock coherence
    /// overhead.
    pub lock: bool,
}

/// The result handed back to the core when an operation finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The finished operation.
    pub op: MemOp,
    /// The value the word held *before* the operation (load value, or
    /// the old value for RMWs).
    pub value: u64,
    /// When the operation was issued.
    pub issued_at: Cycle,
    /// When it completed.
    pub completed_at: Cycle,
}

/// MOESI stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum State {
    /// Dirty exclusive copy.
    Modified,
    /// Dirty copy with sharers; this core answers forwards.
    Owned,
    /// Clean exclusive copy (silent upgrade to M allowed).
    Exclusive,
    /// Clean copy, other copies may exist.
    Shared,
}

impl State {
    /// One-letter display form (`M`/`O`/`E`/`S`).
    pub fn letter(self) -> &'static str {
        match self {
            State::Modified => "M",
            State::Owned => "O",
            State::Exclusive => "E",
            State::Shared => "S",
        }
    }

    /// Whether the state permits writing without a directory transaction.
    pub fn is_writable(self) -> bool {
        matches!(self, State::Modified | State::Exclusive)
    }
}

/// One cached line: stable state plus the single data word the model
/// carries per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Line {
    /// MOESI stable state.
    pub state: State,
    /// Cached word value.
    pub value: u64,
}

/// An in-flight directory transaction (timing-free view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PendingTxn {
    /// The operation that started the transaction.
    pub op: MemOp,
    /// Whether the transaction requests exclusive access.
    pub exclusive: bool,
    /// Data (or AckCount) received yet?
    pub granted: bool,
    /// Value delivered by Data (exclusive path) or kept from an O-state
    /// upgrade (AckCount path).
    pub value: u64,
    /// Whether `value` is authoritative even if Data arrives (O upgrade).
    pub own_value: bool,
    /// Invalidation acknowledgements announced by the home node (`None`
    /// until the grant arrives).
    pub acks_expected: Option<u16>,
    /// Invalidation acknowledgements collected so far.
    pub acks_received: u16,
    /// Whether the request may be demoted to a failed shared-copy
    /// service (conditional lock RMWs).
    pub failable: bool,
    /// An invalidation raced this transaction: any shared copy received
    /// is potentially stale and must not be cached.
    pub poisoned: bool,
    /// OCOR priority (kept for reissues).
    pub priority: u8,
}

/// A finished operation as reported by the pure core; the timed wrapper
/// turns it into a [`Completion`] with issue/finish cycles attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Completion {
    /// The finished operation.
    pub op: MemOp,
    /// The value observed (load value / RMW old value).
    pub value: u64,
    /// True when the operation hit in the cache (no transaction ran).
    pub hit: bool,
}

/// Bookkeeping events the pure core reports alongside its state changes;
/// the timed wrapper maps them onto statistics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Note {
    /// A read miss issued a `GetS`.
    MissGetS,
    /// A write miss (or S/O upgrade) issued a `GetX`.
    MissGetX,
    /// The operation hit in the cache.
    Hit,
    /// A `FwdGetS` found neither a line nor an upgrading transaction and
    /// was bounced back to the home node.
    ForwardBounced,
    /// A demoted conditional RMW observed the expected value and reissued
    /// itself as a non-failable `GetX`.
    DemoteRetry,
    /// A demoted conditional RMW failed without writing.
    DemotedFail,
}

/// Everything one pure step produced: messages to send, an optional
/// finished operation, and bookkeeping notes.
#[derive(Debug, Default)]
pub struct L1Outcome {
    /// Protocol messages to hand to the network.
    pub msgs: Vec<Envelope>,
    /// The operation finished by this step, if any.
    pub completion: Option<L1Completion>,
    /// Statistics events.
    pub notes: Vec<L1Note>,
}

impl L1Outcome {
    fn note(mut self, n: L1Note) -> Self {
        self.notes.push(n);
        self
    }
}

/// The pure, timing-free L1 protocol state machine.
///
/// All timing (hit latency, completion scheduling, cycle-stamped
/// statistics) lives in [`L1Cache`]; `L1Core` is a deterministic function
/// of its inputs, which is what lets the model checker enumerate its
/// reachable states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct L1Core {
    core: CoreId,
    home_map: HomeMap,
    /// Cached lines by block address.
    pub lines: BTreeMap<Addr, Line>,
    /// The in-flight directory transaction, if any.
    pub pending: Option<PendingTxn>,
}

impl L1Core {
    /// Creates the pure core state for `core`.
    pub fn new(core: CoreId, home_map: HomeMap) -> Self {
        L1Core { core, home_map, lines: BTreeMap::new(), pending: None }
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether a demand operation is outstanding at the protocol level.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// The cached state of `addr` as a one-letter string (`I` when the
    /// line is absent).
    pub fn state_letter(&self, addr: Addr) -> &'static str {
        match self.lines.get(&addr.block()) {
            Some(line) => line.state.letter(),
            None => "I",
        }
    }

    /// Issues a demand operation, returning the messages to send and, on
    /// a hit, the finished operation.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::IssueWhileBusy`] if a transaction is already
    /// outstanding.
    pub fn issue(&mut self, op: MemOp, priority: u8) -> Result<L1Outcome, CoherenceError> {
        if self.pending.is_some() {
            return Err(CoherenceError::IssueWhileBusy { core: self.core });
        }
        let block = op.addr.block();
        let mut outcome = L1Outcome::default();

        match self.lines.get_mut(&block) {
            // Load hits in any valid state.
            Some(line) if !op.kind.is_write() => {
                outcome.completion = Some(L1Completion { op, value: line.value, hit: true });
                return Ok(outcome.note(L1Note::Hit));
            }
            // Writes hit in M and E (E upgrades silently).
            Some(line) if line.state.is_writable() => {
                let old = line.value;
                line.value = op.kind.apply(old);
                line.state = State::Modified;
                outcome.completion = Some(L1Completion { op, value: old, hit: true });
                return Ok(outcome.note(L1Note::Hit));
            }
            _ => {}
        }

        // Write in S/O, or any miss: directory transaction.
        let home = self.home_map.home_of(block);
        if op.kind.is_write() {
            // S/O copies are dropped; an O owner keeps its value as the
            // authoritative one (the home copy is stale).
            let own = self.lines.get(&block).map(|l| (l.state, l.value));
            let (own_value, value) = match own {
                Some((State::Owned | State::Modified, v)) => (true, v),
                Some((State::Exclusive | State::Shared, _)) | None => (false, 0),
            };
            self.lines.remove(&block);
            // An O-state owner upgrading in place must never be
            // intercepted by a big router: its copy is the only
            // up-to-date one and the directory will forward other
            // requesters to it. Clear the interceptable flag on the wire
            // (LCO accounting still uses `op.lock`).
            let interceptable = op.lock && !own_value;
            // Conditional RMWs (compare-and-swap) may be demoted to a
            // failed shared-copy service by the home node.
            let failable = matches!(op.kind, MemOpKind::CompareSwap { .. }) && !own_value;
            self.pending = Some(PendingTxn {
                op,
                exclusive: true,
                granted: false,
                value,
                own_value,
                acks_expected: None,
                acks_received: 0,
                failable,
                poisoned: false,
                priority,
            });
            outcome.msgs.push(
                Envelope::to_core(
                    home,
                    CoherenceMsg::GetX {
                        addr: block,
                        requester: self.core,
                        home,
                        lock: interceptable,
                        failable,
                    },
                )
                .with_priority(priority),
            );
            Ok(outcome.note(L1Note::MissGetX))
        } else {
            self.pending = Some(PendingTxn {
                op,
                exclusive: false,
                granted: false,
                value: 0,
                own_value: false,
                acks_expected: Some(0),
                acks_received: 0,
                failable: false,
                poisoned: false,
                priority,
            });
            outcome.msgs.push(
                Envelope::to_core(
                    home,
                    CoherenceMsg::GetS { addr: block, requester: self.core },
                )
                .with_priority(priority),
            );
            Ok(outcome.note(L1Note::MissGetS))
        }
    }

    /// Handles one protocol message delivered to this core.
    ///
    /// # Errors
    ///
    /// Any [`CoherenceError`] variant describing the protocol violation
    /// when the message is impossible in the current state.
    pub fn handle(&mut self, msg: CoherenceMsg) -> Result<L1Outcome, CoherenceError> {
        coverage::record(coverage::L1_HANDLE.id(msg.variant_index()));
        match msg {
            CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock } => {
                self.on_data(addr, value, acks_expected, exclusive, needs_unblock)
            }
            CoherenceMsg::AckCount { addr, acks_expected } => {
                let core = self.core;
                let pending = self.pending.as_mut().ok_or(
                    CoherenceError::ResponseWithoutTxn { core, msg: msg.clone() },
                )?;
                check_addr(core, addr, pending.op.addr.block())?;
                if !(pending.exclusive && pending.own_value) {
                    return Err(CoherenceError::AckCountWithoutOwnership { core, addr });
                }
                pending.granted = true;
                pending.acks_expected = Some(acks_expected);
                self.try_complete_exclusive()
            }
            CoherenceMsg::InvAck { addr, count, .. } => {
                let core = self.core;
                let pending = self.pending.as_mut().ok_or(
                    CoherenceError::ResponseWithoutTxn { core, msg: msg.clone() },
                )?;
                check_addr(core, addr, pending.op.addr.block())?;
                pending.acks_received += count;
                if let Some(expected) = pending.acks_expected {
                    if pending.acks_received > expected {
                        return Err(CoherenceError::SurplusInvAck {
                            core,
                            addr,
                            expected,
                            received: pending.acks_received,
                        });
                    }
                }
                self.try_complete_exclusive()
            }
            CoherenceMsg::Inv { addr, ack_to, home, sent_at } => {
                let mut outcome = L1Outcome::default();
                self.lines.remove(&addr);
                if let Some(pending) = self.pending.as_mut() {
                    if pending.op.addr.block() == addr {
                        // A racing invalidation: any *shared* data this
                        // transaction later receives may be stale and
                        // must not be cached.
                        pending.poisoned = true;
                    }
                }
                match ack_to {
                    AckTarget::Core(winner) => outcome.msgs.push(Envelope::to_core(
                        winner,
                        CoherenceMsg::InvAck {
                            addr,
                            from: self.core,
                            inv_sent_at: sent_at,
                            via_home: false,
                            count: 1,
                        },
                    )),
                    AckTarget::Router(router) => outcome.msgs.push(Envelope::to_router(
                        router,
                        CoherenceMsg::EarlyInvAck {
                            addr,
                            from: self.core,
                            home,
                            inv_sent_at: sent_at,
                        },
                    )),
                }
                Ok(outcome)
            }
            CoherenceMsg::FwdGetS { addr, requester } => {
                let mut outcome = L1Outcome::default();
                // An owner that issued an upgrade GetX has dropped its
                // line but is still the logical owner until the home
                // processes its (queued) request: serve the forward from
                // the transaction's saved value (the MOESI "OM" state).
                let value = if let Some(line) = self.lines.get_mut(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.state = State::Owned;
                    line.value
                } else if let Some(pending) = self
                    .pending
                    .as_ref()
                    .filter(|p| p.op.addr.block() == addr && p.own_value)
                {
                    pending.value
                } else {
                    // Ownership moved on before the forward arrived (the
                    // non-blocking read path allows this): bounce the
                    // request back to the home, which re-resolves the
                    // current owner.
                    let home = self.home_map.home_of(addr);
                    outcome.msgs.push(Envelope::to_core(
                        home,
                        CoherenceMsg::GetS { addr, requester },
                    ));
                    return Ok(outcome.note(L1Note::ForwardBounced));
                };
                outcome.msgs.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected: 0,
                        exclusive: false,
                        needs_unblock: false,
                    },
                ));
                Ok(outcome)
            }
            CoherenceMsg::FwdGetX { addr, requester, acks_expected } => {
                let core = self.core;
                let mut outcome = L1Outcome::default();
                let value = if let Some(line) = self.lines.remove(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.value
                } else {
                    // Ownership is taken away while our own upgrade GetX
                    // is still queued at the home: hand the dirty value
                    // over and demote our transaction to an ordinary
                    // miss (the home will route fresh data to us when
                    // our turn comes).
                    let pending = self
                        .pending
                        .as_mut()
                        .filter(|p| p.op.addr.block() == addr && p.own_value)
                        .ok_or(CoherenceError::ForwardToNonOwner { core, addr })?;
                    if pending.granted {
                        return Err(CoherenceError::ForwardAfterGrant { core, addr });
                    }
                    pending.own_value = false;
                    let value = pending.value;
                    pending.value = 0;
                    value
                };
                outcome.msgs.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected,
                        exclusive: true,
                        needs_unblock: true,
                    },
                ));
                Ok(outcome)
            }
            other @ (CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::RelayedInvAck { .. }
            | CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. }
            | CoherenceMsg::OsWakeup { .. }) => {
                Err(CoherenceError::UnexpectedAtL1 { core: self.core, msg: other })
            }
        }
    }

    fn on_data(
        &mut self,
        addr: Addr,
        value: u64,
        acks_expected: u16,
        exclusive: bool,
        needs_unblock: bool,
    ) -> Result<L1Outcome, CoherenceError> {
        let core = self.core;
        let mut outcome = L1Outcome::default();
        let pending =
            self.pending.as_mut().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock },
            })?;
        check_addr(core, addr, pending.op.addr.block())?;
        if pending.exclusive && !exclusive {
            // Demoted: the home answered a failable lock RMW with a
            // shared copy because the block is owned elsewhere (paper
            // Figure 4 step 4). The conditional op fails without
            // writing — unless the observed value would have let it
            // succeed, in which case contend properly with a
            // non-demotable retry.
            if !pending.failable {
                return Err(CoherenceError::NonFailableDemoted { core, addr });
            }
            let MemOpKind::CompareSwap { expected, .. } = pending.op.kind else {
                return Err(CoherenceError::DemotedNotConditional { core, addr });
            };
            if value == expected {
                pending.failable = false;
                pending.poisoned = false;
                let priority = pending.priority;
                let lock = pending.op.lock;
                let home = self.home_map.home_of(addr);
                outcome.msgs.push(
                    Envelope::to_core(
                        home,
                        CoherenceMsg::GetX {
                            addr,
                            requester: self.core,
                            home,
                            lock,
                            failable: false,
                        },
                    )
                    .with_priority(priority),
                );
                return Ok(outcome.note(L1Note::DemoteRetry));
            }
            let pending = self.pending.take().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock },
            })?;
            if !pending.poisoned {
                self.lines.insert(addr, Line { state: State::Shared, value });
            }
            debug_assert!(!needs_unblock, "demoted service must not block the home");
            outcome.completion = Some(L1Completion { op: pending.op, value, hit: false });
            return Ok(outcome.note(L1Note::DemotedFail));
        }
        if pending.exclusive {
            if !exclusive {
                return Err(CoherenceError::SharedGrantForExclusive { core, addr });
            }
            pending.granted = true;
            pending.acks_expected = Some(acks_expected);
            if !pending.own_value {
                pending.value = value;
            }
            self.try_complete_exclusive()
        } else {
            // Read transaction completes on data.
            let pending = self.pending.take().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock },
            })?;
            if exclusive || !pending.poisoned {
                let state = if exclusive { State::Exclusive } else { State::Shared };
                self.lines.insert(addr, Line { state, value });
            }
            if needs_unblock {
                let home = self.home_map.home_of(addr);
                outcome.msgs.push(Envelope::to_core(
                    home,
                    CoherenceMsg::UnblockS { addr, from: self.core },
                ));
            }
            outcome.completion = Some(L1Completion { op: pending.op, value, hit: false });
            Ok(outcome)
        }
    }

    fn try_complete_exclusive(&mut self) -> Result<L1Outcome, CoherenceError> {
        let mut outcome = L1Outcome::default();
        let Some(pending) = self.pending.as_ref() else { return Ok(outcome) };
        let Some(expected) = pending.acks_expected else { return Ok(outcome) };
        if !pending.granted || pending.acks_received < expected {
            return Ok(outcome);
        }
        let pending = match self.pending.take() {
            Some(p) => p,
            // Unreachable: checked as_ref above; keep total anyway.
            None => return Ok(outcome),
        };
        let block = pending.op.addr.block();
        let old = pending.value;
        let new = pending.op.kind.apply(old);
        self.lines.insert(block, Line { state: State::Modified, value: new });
        let home = self.home_map.home_of(block);
        outcome
            .msgs
            .push(Envelope::to_core(home, CoherenceMsg::UnblockX { addr: block, from: self.core }));
        outcome.completion = Some(L1Completion { op: pending.op, value: old, hit: false });
        Ok(outcome)
    }
}

fn check_addr(core: CoreId, got: Addr, want: Addr) -> Result<(), CoherenceError> {
    if got == want {
        Ok(())
    } else {
        Err(CoherenceError::ResponseAddrMismatch { core, got, want })
    }
}

/// The private L1 cache + controller of one core: the timed wrapper
/// around [`L1Core`].
#[derive(Debug)]
pub struct L1Cache {
    inner: L1Core,
    /// When the outstanding transaction was issued (timing bookkeeping
    /// the pure core does not carry).
    issued_at: Option<Cycle>,
    done: EventWheel<Completion>,
    completed: Option<Completion>,
    hit_latency: u64,
    stats: L1Stats,
    roundtrips: InvAckRoundTrips,
}

impl L1Cache {
    /// Creates the L1 for `core`. `hit_latency` is Table 1's 2-cycle L1
    /// latency.
    pub fn new(core: CoreId, home_map: HomeMap, hit_latency: u64) -> Self {
        let cores = home_map.cores();
        L1Cache {
            inner: L1Core::new(core, home_map),
            issued_at: None,
            done: EventWheel::new(),
            completed: None,
            hit_latency,
            stats: L1Stats::default(),
            roundtrips: InvAckRoundTrips::new(cores, 256),
        }
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.inner.core()
    }

    /// The pure protocol state (for invariant checks and diagnostics).
    pub fn protocol_state(&self) -> &L1Core {
        &self.inner
    }

    /// Whether a demand operation is outstanding.
    pub fn is_busy(&self) -> bool {
        self.inner.is_busy() || !self.done.is_empty() || self.completed.is_some()
    }

    /// Counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Invalidation round trips observed by this core as a *winner*
    /// (direct acknowledgements it collected).
    pub fn roundtrips(&self) -> &InvAckRoundTrips {
        &self.roundtrips
    }

    /// Pending-transaction description for stuck-run diagnostics.
    pub fn pending_report(&self) -> Option<String> {
        Some(format!(
            "pending={:?} done_queue={} completed={:?} busy={}",
            self.inner.pending,
            self.done.len(),
            self.completed,
            self.is_busy()
        ))
    }

    /// The cached line (state, value) of `addr`, for diagnostics.
    pub fn probe_line(&self, addr: Addr) -> Option<(&'static str, u64)> {
        self.inner.lines.get(&addr.block()).map(|l| (l.state.letter(), l.value))
    }

    /// All cached lines as `(block address, state letter)` pairs, for
    /// invariant checking (e.g. the single-writer rule across cores).
    pub fn lines_snapshot(&self) -> Vec<(Addr, &'static str)> {
        self.inner.lines.iter().map(|(addr, line)| (*addr, line.state.letter())).collect()
    }

    /// If this core is blocked collecting invalidation acknowledgements,
    /// returns `(addr, expected, received, issued_at)` for the stalled
    /// transaction. `None` when idle or not yet told an ack count.
    pub fn pending_ack_wait(&self) -> Option<(Addr, u16, u16, Cycle)> {
        let pending = self.inner.pending.as_ref()?;
        let expected = pending.acks_expected?;
        if pending.acks_received < expected {
            let issued_at = self.issued_at.unwrap_or(Cycle::ZERO);
            Some((pending.op.addr, expected, pending.acks_received, issued_at))
        } else {
            None
        }
    }

    /// The cached state of `addr` as a debug string (testing aid).
    pub fn probe_state(&self, addr: Addr) -> &'static str {
        self.inner.state_letter(addr)
    }

    /// Issues a demand operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding; the core model must
    /// wait for [`take_completion`](Self::take_completion) first.
    pub fn issue(&mut self, op: MemOp, now: Cycle, out: &mut Vec<Envelope>) {
        self.issue_with_priority(op, 0, now, out);
    }

    /// Issues a demand operation whose request packet carries an OCOR
    /// `priority`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding.
    pub fn issue_with_priority(
        &mut self,
        op: MemOp,
        priority: u8,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) {
        assert!(!self.is_busy(), "L1 supports one outstanding demand op");
        if op.kind.is_write() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let outcome = match self.inner.issue(op, priority) {
            Ok(outcome) => outcome,
            Err(e) => panic!("L1 issue rejected: {e}"),
        };
        self.issued_at = Some(now);
        self.apply(outcome, now, out);
    }

    /// Handles one protocol message delivered to this core, surfacing
    /// protocol violations as typed errors.
    ///
    /// # Errors
    ///
    /// The [`CoherenceError`] describing the violation when the message
    /// is impossible in the current protocol state (a lost, duplicated or
    /// misrouted message upstream).
    pub fn try_handle(
        &mut self,
        msg: CoherenceMsg,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) -> Result<(), CoherenceError> {
        // lint: allow(wildcard) — a stats-only pre-pass; the exhaustive
        // dispatch over every message variant is `inner.handle` below.
        match &msg {
            CoherenceMsg::Inv { .. } => self.stats.invs_received += 1,
            CoherenceMsg::InvAck { from, inv_sent_at, via_home: false, .. } => {
                self.roundtrips.record(*from, now.saturating_since(*inv_sent_at));
            }
            _ => {}
        }
        let outcome = self.inner.handle(msg)?;
        self.apply(outcome, now, out);
        Ok(())
    }

    /// Handles one protocol message delivered to this core.
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation; the simulator's checked run path
    /// uses [`try_handle`](Self::try_handle) instead.
    pub fn handle(&mut self, msg: CoherenceMsg, now: Cycle, out: &mut Vec<Envelope>) {
        if let Err(e) = self.try_handle(msg, now, out) {
            panic!("{e}");
        }
    }

    /// Maps a pure-core outcome onto the timed world: messages out,
    /// completion scheduling, statistics.
    fn apply(&mut self, outcome: L1Outcome, now: Cycle, out: &mut Vec<Envelope>) {
        for note in &outcome.notes {
            match note {
                L1Note::Hit => self.stats.hits += 1,
                L1Note::MissGetS => {
                    self.stats.misses += 1;
                    self.stats.gets_issued += 1;
                }
                L1Note::MissGetX => {
                    self.stats.misses += 1;
                    self.stats.getx_issued += 1;
                }
                L1Note::ForwardBounced => self.stats.forwards_bounced += 1,
                L1Note::DemoteRetry => self.stats.demote_retries += 1,
                L1Note::DemotedFail => self.stats.demoted_fails += 1,
            }
        }
        out.extend(outcome.msgs);
        if let Some(c) = outcome.completion {
            let issued_at = self.issued_at.take().unwrap_or(now);
            let latency = if c.hit { self.hit_latency } else { 1 };
            if !c.hit {
                let busy = now.saturating_since(issued_at);
                self.stats.mem_txn_cycles += busy;
                if c.op.kind.is_write() {
                    self.stats.write_miss_lat += busy;
                    self.stats.write_misses += 1;
                } else {
                    self.stats.read_miss_lat += busy;
                    self.stats.read_misses += 1;
                }
                if c.op.lock {
                    self.stats.lock_txn_cycles += busy;
                    self.stats.lock_txns += 1;
                }
            }
            self.done.schedule(
                now + latency,
                Completion { op: c.op, value: c.value, issued_at, completed_at: now + latency },
            );
        }
    }

    /// Advances internal timers (hit-latency and completion events).
    pub fn tick(&mut self, now: Cycle) {
        if self.completed.is_none() {
            self.completed = self.done.pop_due(now);
        }
        if let Some(due) = self.done.next_due() {
            if now.saturating_since(due) > 100_000 {
                panic!(
                    "L1 {} completion stuck: due {due:?} now {now:?} completed {:?} pending {:?}",
                    self.inner.core().index(),
                    self.completed,
                    self.inner.pending
                );
            }
        }
    }

    /// Removes and returns the completion of the outstanding operation,
    /// if it has finished.
    pub fn take_completion(&mut self) -> Option<Completion> {
        self.completed.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(CoreId::new(0), HomeMap::new(4), 2)
    }

    fn drive_until_complete(l1: &mut L1Cache, mut now: Cycle) -> (Completion, Cycle) {
        for _ in 0..64 {
            l1.tick(now);
            if let Some(c) = l1.take_completion() {
                return (c, now);
            }
            now = now.next();
        }
        panic!("operation did not complete");
    }

    fn data(addr: Addr, value: u64, acks: u16, exclusive: bool) -> CoherenceMsg {
        CoherenceMsg::Data {
            addr,
            value,
            acks_expected: acks,
            exclusive,
            needs_unblock: false,
        }
    }

    #[test]
    fn cold_load_issues_gets_and_installs_shared() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, CoherenceMsg::GetS { .. }));
        assert_eq!(out[0].dst, CoreId::new(2), "0x100 is block 2 of 4 banks");
        out.clear();
        l1.handle(data(addr.block(), 42, 0, false), Cycle::new(10), &mut out);
        assert!(out.is_empty(), "no unblock needed for direct shared grant");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(10));
        assert_eq!(c.value, 42);
        assert_eq!(l1.probe_state(addr), "S");
    }

    #[test]
    fn exclusive_read_grant_installs_e_and_write_hits_silently() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::Data {
                addr: addr.block(),
                value: 5,
                acks_expected: 0,
                exclusive: true,
                needs_unblock: true,
            },
            Cycle::new(8),
            &mut out,
        );
        assert!(
            matches!(out[0].msg, CoherenceMsg::UnblockS { .. }),
            "E grant blocks the home until unblocked"
        );
        drive_until_complete(&mut l1, Cycle::new(8));
        assert_eq!(l1.probe_state(addr), "E");

        // A store now upgrades silently: no traffic.
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(9), lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(c.value, 5, "store returns the old value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    fn swap_miss_runs_full_getx_transaction() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        let CoherenceMsg::GetX { lock, .. } = out[0].msg else { panic!("expected GetX") };
        assert!(lock, "lock flag propagates to the GetX");
        out.clear();

        // Data with two acks expected; completion only after both.
        l1.handle(data(addr.block(), 0, 2, true), Cycle::new(6), &mut out);
        assert!(out.is_empty());
        l1.tick(Cycle::new(7));
        assert!(l1.take_completion().is_none());
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(1),
                inv_sent_at: Cycle::new(2),
                via_home: false,
                count: 1,
            },
            Cycle::new(8),
            &mut out,
        );
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(2),
                via_home: true,
                count: 1,
            },
            Cycle::new(9),
            &mut out,
        );
        let unblock = out.iter().find(|e| matches!(e.msg, CoherenceMsg::UnblockX { .. }));
        assert!(unblock.is_some(), "winner unblocks the home");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(9));
        assert_eq!(c.value, 0, "swap returns the pre-swap value");
        assert_eq!(l1.probe_state(addr), "M");
        // Only the direct (non-via-home) ack was recorded as a round trip.
        assert_eq!(l1.roundtrips().total_count(), 1);
        assert_eq!(l1.stats().lock_txns, 1);
        assert!(l1.stats().lock_txn_cycles > 0);
    }

    #[test]
    fn acks_may_arrive_before_data() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(3),
                inv_sent_at: Cycle::ZERO,
                via_home: false,
                count: 1,
            },
            Cycle::new(4),
            &mut out,
        );
        l1.tick(Cycle::new(5));
        assert!(l1.take_completion().is_none(), "no data yet");
        l1.handle(data(addr.block(), 7, 1, true), Cycle::new(6), &mut out);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(6));
        assert_eq!(c.value, 7);
    }

    #[test]
    fn inv_invalidates_and_acks_winner() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "S");

        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Core(CoreId::new(3)),
                home: CoreId::new(2),
                sent_at: Cycle::new(9),
            },
            Cycle::new(12),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let ack = out.last().expect("ack sent");
        assert_eq!(ack.dst, CoreId::new(3));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::InvAck { from, via_home: false, .. } if from == CoreId::new(0)
        ));
    }

    #[test]
    fn early_inv_acks_to_router_even_when_line_absent() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x300).block();
        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Router(CoreId::new(9)),
                home: CoreId::new(2),
                sent_at: Cycle::new(4),
            },
            Cycle::new(8),
            &mut out,
        );
        let ack = out.last().expect("ack sent");
        assert_eq!(ack.dst, CoreId::new(9));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::EarlyInvAck { inv_sent_at, .. } if inv_sent_at == Cycle::new(4)
        ));
        assert_eq!(ack.sink, inpg_noc::Sink::Router);
    }

    #[test]
    fn fwd_gets_shares_and_keeps_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M owner.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(11), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "M");

        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(20), &mut out);
        assert_eq!(l1.probe_state(addr), "O");
        let CoherenceMsg::Data { value, exclusive, needs_unblock, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 11);
        assert!(!exclusive);
        assert!(!needs_unblock, "owner forwards are non-blocking");
        assert_eq!(out[0].dst, CoreId::new(2));
    }

    #[test]
    fn fwd_getx_transfers_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(13), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        out.clear();
        l1.handle(
            CoherenceMsg::FwdGetX { addr, requester: CoreId::new(3), acks_expected: 2 },
            Cycle::new(20),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let CoherenceMsg::Data { value, acks_expected, exclusive, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 13);
        assert_eq!(acks_expected, 2);
        assert!(exclusive);
    }

    #[test]
    fn o_state_upgrade_uses_own_value_with_ackcount() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M, then demote to O via FwdGetS.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(21), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(10), &mut out);
        assert_eq!(l1.probe_state(addr), "O");

        // Upgrade: O -> GetX; home answers with AckCount (no data).
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::new(20), &mut out);
        assert!(matches!(out[0].msg, CoherenceMsg::GetX { .. }));
        out.clear();
        l1.handle(CoherenceMsg::AckCount { addr, acks_expected: 1 }, Cycle::new(26), &mut out);
        l1.handle(
            CoherenceMsg::InvAck {
                addr,
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(24),
                via_home: false,
                count: 1,
            },
            Cycle::new(30),
            &mut out,
        );
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(30));
        assert_eq!(c.value, 21, "swap sees the owner's own (dirty) value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    #[should_panic(expected = "one outstanding")]
    fn double_issue_panics() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let op = MemOp { addr: Addr::new(0x100), kind: MemOpKind::Load, lock: false };
        l1.issue(op, Cycle::ZERO, &mut out);
        l1.issue(op, Cycle::ZERO, &mut out);
    }

    #[test]
    fn hit_latency_is_respected() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        // Now a hit: completes exactly hit_latency cycles later.
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, when) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(when, Cycle::new(22));
        assert_eq!(c.completed_at, Cycle::new(22));
    }

    #[test]
    fn surplus_inv_ack_is_a_typed_error() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        l1.handle(data(addr, 0, 1, true), Cycle::new(5), &mut out);
        // The single expected ack completes the transaction; a duplicate
        // ack then finds no transaction at all.
        let ack = CoherenceMsg::InvAck {
            addr,
            from: CoreId::new(1),
            inv_sent_at: Cycle::ZERO,
            via_home: false,
            count: 1,
        };
        l1.handle(ack.clone(), Cycle::new(6), &mut out);
        let err = l1.try_handle(ack, Cycle::new(7), &mut out).expect_err("duplicate ack");
        assert!(matches!(err, CoherenceError::ResponseWithoutTxn { .. }), "{err}");
    }

    #[test]
    fn misrouted_request_is_a_typed_error() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let msg = CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) };
        let err = l1.try_handle(msg, Cycle::ZERO, &mut out).expect_err("misrouted");
        assert!(matches!(err, CoherenceError::UnexpectedAtL1 { .. }), "{err}");
    }
}
