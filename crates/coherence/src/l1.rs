//! The private L1 cache controller: MOESI stable states plus the
//! transient transactions the lock workloads exercise.
//!
//! The controller is split in two layers:
//!
//! * [`L1Core`] — the **pure, timing-free protocol state machine**: cache
//!   lines, the in-flight transaction, and step functions
//!   ([`L1Core::issue`], [`L1Core::handle`]) that map one input to state
//!   updates plus an [`L1Outcome`] (messages to send, a completed
//!   operation, bookkeeping notes). Protocol violations surface as typed
//!   [`CoherenceError`]s. The `inpg-analysis` model checker enumerates
//!   exactly these step functions over all bounded interleavings.
//! * [`L1Cache`] — the timed wrapper the simulator drives: it owns the
//!   hit/completion latencies, the statistics counters and the
//!   invalidation round-trip accounting, and delegates every protocol
//!   decision to the pure core.
//!
//! Each core owns one [`L1Cache`]. The core model issues at most one
//! demand operation at a time (cores block on memory in the
//! lock/critical-section code paths); the controller turns misses into
//! directory transactions and answers forwards/invalidations from the
//! network at any time.
//!
//! # Model simplifications (documented in `DESIGN.md`)
//!
//! * No capacity evictions: the lock study touches a handful of blocks,
//!   far below the 32 KB capacity, so replacement never triggers and is
//!   not modelled.
//! * One word of payload per 128-byte block — exactly what lock variables
//!   and per-thread queue nodes need.
//! * A read whose data response races an invalidation installs a shared
//!   copy that may be momentarily stale; the authoritative SWAP/CAS path
//!   always goes through an exclusive transaction, so lock correctness is
//!   unaffected (a stale spin read just retries).

use crate::err::CoherenceError;
use crate::map::HomeMap;
use crate::msg::{AckTarget, CoherenceMsg, Envelope};
use crate::stats::{InvAckRoundTrips, L1Stats};
use inpg_sim::{coverage, Addr, CoreId, Cycle, EventWheel};
use std::collections::BTreeMap;

/// One memory operation a core can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOpKind {
    /// Read a word.
    Load,
    /// Write a word.
    Store(u64),
    /// Atomically exchange the word, returning the old value (the
    /// paper's `SWAP`).
    Swap(u64),
    /// Atomically add to the word, returning the old value
    /// (`fetch_and_add`, used by the ticket lock and ABQL).
    FetchAdd(u64),
    /// Atomically compare-and-swap, returning the old value
    /// (`compare_and_swap`, used by the MCS lock).
    CompareSwap {
        /// Value the word must currently hold for the swap to happen.
        expected: u64,
        /// Value written on success.
        new: u64,
    },
}

impl MemOpKind {
    /// Whether this operation needs exclusive (write) access.
    pub fn is_write(self) -> bool {
        !matches!(self, MemOpKind::Load)
    }

    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            MemOpKind::Load => old,
            MemOpKind::Store(v) | MemOpKind::Swap(v) => v,
            MemOpKind::FetchAdd(d) => old.wrapping_add(d),
            MemOpKind::CompareSwap { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
        }
    }
}

/// A memory operation plus the address it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemOp {
    /// Target address (word granularity; coherence is per block).
    pub addr: Addr,
    /// What to do.
    pub kind: MemOpKind,
    /// True when the address is a lock variable: the resulting `GetX` is
    /// interceptable by big routers and counted as lock coherence
    /// overhead.
    pub lock: bool,
}

/// The result handed back to the core when an operation finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The finished operation.
    pub op: MemOp,
    /// The value the word held *before* the operation (load value, or
    /// the old value for RMWs).
    pub value: u64,
    /// When the operation was issued.
    pub issued_at: Cycle,
    /// When it completed.
    pub completed_at: Cycle,
}

/// MOESI stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum State {
    /// Dirty exclusive copy.
    Modified,
    /// Dirty copy with sharers; this core answers forwards.
    Owned,
    /// Clean exclusive copy (silent upgrade to M allowed).
    Exclusive,
    /// Clean copy, other copies may exist.
    Shared,
}

impl State {
    /// One-letter display form (`M`/`O`/`E`/`S`).
    pub fn letter(self) -> &'static str {
        match self {
            State::Modified => "M",
            State::Owned => "O",
            State::Exclusive => "E",
            State::Shared => "S",
        }
    }

    /// Whether the state permits writing without a directory transaction.
    pub fn is_writable(self) -> bool {
        matches!(self, State::Modified | State::Exclusive)
    }
}

/// One cached line: stable state plus the single data word the model
/// carries per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Line {
    /// MOESI stable state.
    pub state: State,
    /// Cached word value.
    pub value: u64,
}

/// An in-flight directory transaction (timing-free view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PendingTxn {
    /// The operation that started the transaction.
    pub op: MemOp,
    /// Whether the transaction requests exclusive access.
    pub exclusive: bool,
    /// Data (or AckCount) received yet?
    pub granted: bool,
    /// Value delivered by Data (exclusive path) or kept from an O-state
    /// upgrade (AckCount path).
    pub value: u64,
    /// Whether `value` is authoritative even if Data arrives (O upgrade).
    pub own_value: bool,
    /// Whether `value` holds a usable payload at all. A recovering
    /// transaction can be granted by an `AckCount` regrant whose data is
    /// still in flight from the old owner; completion must wait for it.
    pub has_value: bool,
    /// Invalidation acknowledgements announced by the home node (`None`
    /// until the grant arrives).
    pub acks_expected: Option<u16>,
    /// Invalidation acknowledgements collected so far.
    pub acks_received: u16,
    /// Whether the request may be demoted to a failed shared-copy
    /// service (conditional lock RMWs).
    pub failable: bool,
    /// An invalidation raced this transaction: any shared copy received
    /// is potentially stale and must not be cached.
    pub poisoned: bool,
    /// OCOR priority (kept for reissues).
    pub priority: u8,
    /// The transaction has been aborted-and-reissued at least once by the
    /// recovery layer; duplicate grants are expected and dropped.
    pub recovering: bool,
}

/// A finished operation as reported by the pure core; the timed wrapper
/// turns it into a [`Completion`] with issue/finish cycles attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Completion {
    /// The finished operation.
    pub op: MemOp,
    /// The value observed (load value / RMW old value).
    pub value: u64,
    /// True when the operation hit in the cache (no transaction ran).
    pub hit: bool,
}

/// Bookkeeping events the pure core reports alongside its state changes;
/// the timed wrapper maps them onto statistics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Note {
    /// A read miss issued a `GetS`.
    MissGetS,
    /// A write miss (or S/O upgrade) issued a `GetX`.
    MissGetX,
    /// The operation hit in the cache.
    Hit,
    /// A `FwdGetS` found neither a line nor an upgrading transaction and
    /// was bounced back to the home node.
    ForwardBounced,
    /// A demoted conditional RMW observed the expected value and reissued
    /// itself as a non-failable `GetX`.
    DemoteRetry,
    /// A demoted conditional RMW failed without writing.
    DemotedFail,
    /// The recovery layer aborted the outstanding exclusive transaction
    /// and reissued it under a fresh sequence number.
    Retransmit,
    /// An invalidation acknowledgement from an aborted request epoch was
    /// dropped by the recovery filter.
    StaleAckDropped,
    /// A duplicate exclusive grant arrived while recovering and was
    /// dropped (the first grant of the current epoch is authoritative).
    DuplicateGrantDropped,
    /// A stale response for an already-completed recovery transaction was
    /// absorbed by the post-completion guard.
    StaleResponseAbsorbed,
    /// An exclusive grant answering an aborted epoch was dropped (its
    /// slow service raced the recovery retransmission and lost).
    StaleGrantDropped,
}

/// Everything one pure step produced: messages to send, an optional
/// finished operation, and bookkeeping notes.
#[derive(Debug, Default)]
pub struct L1Outcome {
    /// Protocol messages to hand to the network.
    pub msgs: Vec<Envelope>,
    /// The operation finished by this step, if any.
    pub completion: Option<L1Completion>,
    /// Statistics events.
    pub notes: Vec<L1Note>,
}

impl L1Outcome {
    fn note(mut self, n: L1Note) -> Self {
        self.notes.push(n);
        self
    }
}

/// The pure, timing-free L1 protocol state machine.
///
/// All timing (hit latency, completion scheduling, cycle-stamped
/// statistics) lives in [`L1Cache`]; `L1Core` is a deterministic function
/// of its inputs, which is what lets the model checker enumerate its
/// reachable states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct L1Core {
    core: CoreId,
    home_map: HomeMap,
    /// Cached lines by block address.
    pub lines: BTreeMap<Addr, Line>,
    /// The in-flight directory transaction, if any.
    pub pending: Option<PendingTxn>,
    /// Monotonic per-core issue sequence number, bumped on every
    /// exclusive request (normal issue, demote retry, recovery reissue).
    /// The outstanding exclusive transaction's epoch is always the
    /// current value; the home node deduplicates on it.
    seq: u64,
    /// Post-completion stale guard: after a *recovering* transaction
    /// completes, responses for this block may still be in flight from
    /// aborted epochs; they are absorbed silently instead of raising
    /// `ResponseWithoutTxn`. Cleared on the next issue to the block.
    absorb: Option<Addr>,
}

impl L1Core {
    /// Creates the pure core state for `core`.
    pub fn new(core: CoreId, home_map: HomeMap) -> Self {
        L1Core { core, home_map, lines: BTreeMap::new(), pending: None, seq: 0, absorb: None }
    }

    /// The current exclusive-request epoch (the `seq` stamped on the most
    /// recent `GetX`).
    pub fn current_seq(&self) -> u64 {
        self.seq
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Whether a demand operation is outstanding at the protocol level.
    pub fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    /// The cached state of `addr` as a one-letter string (`I` when the
    /// line is absent).
    pub fn state_letter(&self, addr: Addr) -> &'static str {
        match self.lines.get(&addr.block()) {
            Some(line) => line.state.letter(),
            None => "I",
        }
    }

    /// Issues a demand operation, returning the messages to send and, on
    /// a hit, the finished operation.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::IssueWhileBusy`] if a transaction is already
    /// outstanding.
    pub fn issue(&mut self, op: MemOp, priority: u8) -> Result<L1Outcome, CoherenceError> {
        if self.pending.is_some() {
            return Err(CoherenceError::IssueWhileBusy { core: self.core });
        }
        let block = op.addr.block();
        if self.absorb == Some(block) {
            // A fresh transaction for the block supersedes the stale
            // guard left by a completed recovery transaction.
            self.absorb = None;
        }
        let mut outcome = L1Outcome::default();

        match self.lines.get_mut(&block) {
            // Load hits in any valid state.
            Some(line) if !op.kind.is_write() => {
                outcome.completion = Some(L1Completion { op, value: line.value, hit: true });
                return Ok(outcome.note(L1Note::Hit));
            }
            // Writes hit in M and E (E upgrades silently).
            Some(line) if line.state.is_writable() => {
                let old = line.value;
                line.value = op.kind.apply(old);
                line.state = State::Modified;
                outcome.completion = Some(L1Completion { op, value: old, hit: true });
                return Ok(outcome.note(L1Note::Hit));
            }
            _ => {}
        }

        // Write in S/O, or any miss: directory transaction.
        let home = self.home_map.home_of(block);
        if op.kind.is_write() {
            // S/O copies are dropped; an O owner keeps its value as the
            // authoritative one (the home copy is stale).
            let own = self.lines.get(&block).map(|l| (l.state, l.value));
            let (own_value, value) = match own {
                Some((State::Owned | State::Modified, v)) => (true, v),
                Some((State::Exclusive | State::Shared, _)) | None => (false, 0),
            };
            self.lines.remove(&block);
            // An O-state owner upgrading in place must never be
            // intercepted by a big router: its copy is the only
            // up-to-date one and the directory will forward other
            // requesters to it. Clear the interceptable flag on the wire
            // (LCO accounting still uses `op.lock`).
            let interceptable = op.lock && !own_value;
            // Conditional RMWs (compare-and-swap) may be demoted to a
            // failed shared-copy service by the home node.
            let failable = matches!(op.kind, MemOpKind::CompareSwap { .. }) && !own_value;
            self.seq += 1;
            self.pending = Some(PendingTxn {
                op,
                exclusive: true,
                granted: false,
                value,
                own_value,
                has_value: own_value,
                acks_expected: None,
                acks_received: 0,
                failable,
                poisoned: false,
                priority,
                recovering: false,
            });
            outcome.msgs.push(
                Envelope::to_core(
                    home,
                    CoherenceMsg::GetX {
                        addr: block,
                        requester: self.core,
                        home,
                        lock: interceptable,
                        failable,
                        seq: self.seq,
                    },
                )
                .with_priority(priority),
            );
            Ok(outcome.note(L1Note::MissGetX))
        } else {
            self.pending = Some(PendingTxn {
                op,
                exclusive: false,
                granted: false,
                value: 0,
                own_value: false,
                has_value: false,
                acks_expected: Some(0),
                acks_received: 0,
                failable: false,
                poisoned: false,
                priority,
                recovering: false,
            });
            outcome.msgs.push(
                Envelope::to_core(
                    home,
                    CoherenceMsg::GetS { addr: block, requester: self.core },
                )
                .with_priority(priority),
            );
            Ok(outcome.note(L1Note::MissGetS))
        }
    }

    /// Handles one protocol message delivered to this core.
    ///
    /// # Errors
    ///
    /// Any [`CoherenceError`] variant describing the protocol violation
    /// when the message is impossible in the current state.
    pub fn handle(&mut self, msg: CoherenceMsg) -> Result<L1Outcome, CoherenceError> {
        coverage::record(coverage::L1_HANDLE.id(msg.variant_index()));
        match msg {
            CoherenceMsg::Data { addr, value, acks_expected, exclusive, needs_unblock, for_seq } => {
                self.on_data(addr, value, acks_expected, exclusive, needs_unblock, for_seq)
            }
            CoherenceMsg::AckCount { addr, acks_expected, for_seq } => {
                let core = self.core;
                if self.absorb == Some(addr) {
                    return Ok(L1Outcome::default().note(L1Note::StaleResponseAbsorbed));
                }
                if for_seq != self.seq {
                    // A grant answering an attempt the recovery layer
                    // aborted; the reissue gets its own grant.
                    return Ok(L1Outcome::default().note(L1Note::StaleGrantDropped));
                }
                let pending = self.pending.as_mut().ok_or(
                    CoherenceError::ResponseWithoutTxn { core, msg: msg.clone() },
                )?;
                check_addr(core, addr, pending.op.addr.block())?;
                // An AckCount without ownership is legal only for a
                // recovering transaction: the regrant of a forwarded
                // serve carries ack bookkeeping while the payload is
                // still in flight from the old owner.
                if !(pending.exclusive && (pending.own_value || pending.recovering)) {
                    return Err(CoherenceError::AckCountWithoutOwnership { core, addr });
                }
                if pending.recovering && pending.granted {
                    return Ok(L1Outcome::default().note(L1Note::DuplicateGrantDropped));
                }
                pending.granted = true;
                pending.acks_expected = Some(acks_expected);
                self.try_complete_exclusive()
            }
            CoherenceMsg::InvAck { addr, count, for_seq, .. } => {
                let core = self.core;
                if self.absorb == Some(addr) {
                    return Ok(L1Outcome::default().note(L1Note::StaleResponseAbsorbed));
                }
                let cur_seq = self.seq;
                let pending = self.pending.as_mut().ok_or(
                    CoherenceError::ResponseWithoutTxn { core, msg: msg.clone() },
                )?;
                check_addr(core, addr, pending.op.addr.block())?;
                if pending.exclusive && for_seq != cur_seq {
                    // Acknowledgement from an epoch the recovery layer
                    // aborted: the home re-invalidated on the reissue, so
                    // counting this one would double-count its sender.
                    return Ok(L1Outcome::default().note(L1Note::StaleAckDropped));
                }
                pending.acks_received += count;
                if let Some(expected) = pending.acks_expected {
                    if pending.acks_received > expected {
                        return Err(CoherenceError::SurplusInvAck {
                            core,
                            addr,
                            expected,
                            received: pending.acks_received,
                        });
                    }
                }
                self.try_complete_exclusive()
            }
            CoherenceMsg::Inv { addr, ack_to, home, sent_at, for_seq } => {
                let mut outcome = L1Outcome::default();
                self.lines.remove(&addr);
                if let Some(pending) = self.pending.as_mut() {
                    if pending.op.addr.block() == addr {
                        // A racing invalidation: any *shared* data this
                        // transaction later receives may be stale and
                        // must not be cached.
                        pending.poisoned = true;
                    }
                }
                match ack_to {
                    AckTarget::Core(winner) => outcome.msgs.push(Envelope::to_core(
                        winner,
                        CoherenceMsg::InvAck {
                            addr,
                            from: self.core,
                            inv_sent_at: sent_at,
                            via_home: false,
                            count: 1,
                            for_seq,
                        },
                    )),
                    AckTarget::Router(router) => outcome.msgs.push(Envelope::to_router(
                        router,
                        CoherenceMsg::EarlyInvAck {
                            addr,
                            from: self.core,
                            home,
                            inv_sent_at: sent_at,
                        },
                    )),
                }
                Ok(outcome)
            }
            CoherenceMsg::FwdGetS { addr, requester } => {
                let mut outcome = L1Outcome::default();
                // An owner that issued an upgrade GetX has dropped its
                // line but is still the logical owner until the home
                // processes its (queued) request: serve the forward from
                // the transaction's saved value (the MOESI "OM" state).
                let value = if let Some(line) = self.lines.get_mut(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.state = State::Owned;
                    line.value
                } else if let Some(pending) = self
                    .pending
                    .as_ref()
                    .filter(|p| p.op.addr.block() == addr && p.own_value)
                {
                    pending.value
                } else {
                    // Ownership moved on before the forward arrived (the
                    // non-blocking read path allows this): bounce the
                    // request back to the home, which re-resolves the
                    // current owner.
                    let home = self.home_map.home_of(addr);
                    outcome.msgs.push(Envelope::to_core(
                        home,
                        CoherenceMsg::GetS { addr, requester },
                    ));
                    return Ok(outcome.note(L1Note::ForwardBounced));
                };
                outcome.msgs.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected: 0,
                        exclusive: false,
                        needs_unblock: false,
                        for_seq: None,
                    },
                ));
                Ok(outcome)
            }
            CoherenceMsg::FwdGetX { addr, requester, acks_expected, for_seq } => {
                let core = self.core;
                let mut outcome = L1Outcome::default();
                let value = if let Some(line) = self.lines.remove(&addr) {
                    debug_assert!(matches!(
                        line.state,
                        State::Modified | State::Exclusive | State::Owned
                    ));
                    line.value
                } else {
                    // Ownership is taken away while our own upgrade GetX
                    // is still queued at the home: hand the dirty value
                    // over and demote our transaction to an ordinary
                    // miss (the home will route fresh data to us when
                    // our turn comes).
                    let pending = self
                        .pending
                        .as_mut()
                        .filter(|p| p.op.addr.block() == addr && p.own_value)
                        .ok_or(CoherenceError::ForwardToNonOwner { core, addr })?;
                    if pending.granted {
                        return Err(CoherenceError::ForwardAfterGrant { core, addr });
                    }
                    pending.own_value = false;
                    pending.has_value = false;
                    let value = pending.value;
                    pending.value = 0;
                    value
                };
                outcome.msgs.push(Envelope::to_core(
                    requester,
                    CoherenceMsg::Data {
                        addr,
                        value,
                        acks_expected,
                        exclusive: true,
                        needs_unblock: true,
                        for_seq: Some(for_seq),
                    },
                ));
                Ok(outcome)
            }
            other @ (CoherenceMsg::GetS { .. }
            | CoherenceMsg::GetX { .. }
            | CoherenceMsg::RelayedGetX { .. }
            | CoherenceMsg::EarlyInvAck { .. }
            | CoherenceMsg::RelayedInvAck { .. }
            | CoherenceMsg::UnblockS { .. }
            | CoherenceMsg::UnblockX { .. }
            | CoherenceMsg::OsWakeup { .. }) => {
                Err(CoherenceError::UnexpectedAtL1 { core: self.core, msg: other })
            }
        }
    }

    fn on_data(
        &mut self,
        addr: Addr,
        value: u64,
        acks_expected: u16,
        exclusive: bool,
        needs_unblock: bool,
        for_seq: Option<u64>,
    ) -> Result<L1Outcome, CoherenceError> {
        let core = self.core;
        let mut outcome = L1Outcome::default();
        if self.absorb == Some(addr) {
            return Ok(outcome.note(L1Note::StaleResponseAbsorbed));
        }
        if for_seq.is_some_and(|s| s != self.seq) {
            // A grant answering an attempt the recovery layer aborted: a
            // slow grant racing its own retransmission must not complete
            // the reissued attempt (the retransmit would then become an
            // orphan request the directory serves into thin air). The
            // current epoch's grant — a regrant or the retransmit's own
            // service — completes the transaction instead. The payload is
            // salvaged, though: if this is the old owner's forward, its
            // dirty value is the only copy in the system (the regrant for
            // a forwarded serve carries no data), and for home-sourced
            // grants the capture is a harmless duplicate of the L2 value.
            let captured = match self.pending.as_mut() {
                Some(p) if p.exclusive && p.op.addr.block() == addr && !p.own_value => {
                    p.value = value;
                    p.own_value = true;
                    p.has_value = true;
                    true
                }
                _ => false,
            };
            if captured {
                // The ack bookkeeping may already be complete and only
                // the payload missing.
                let done = self.try_complete_exclusive()?;
                return Ok(done.note(L1Note::StaleGrantDropped));
            }
            return Ok(outcome.note(L1Note::StaleGrantDropped));
        }
        let pending =
            self.pending.as_mut().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data {
                    addr,
                    value,
                    acks_expected,
                    exclusive,
                    needs_unblock,
                    for_seq,
                },
            })?;
        check_addr(core, addr, pending.op.addr.block())?;
        if pending.exclusive && !exclusive {
            // Demoted: the home answered a failable lock RMW with a
            // shared copy because the block is owned elsewhere (paper
            // Figure 4 step 4). The conditional op fails without
            // writing — unless the observed value would have let it
            // succeed, in which case contend properly with a
            // non-demotable retry.
            if !pending.failable {
                return Err(CoherenceError::NonFailableDemoted { core, addr });
            }
            let MemOpKind::CompareSwap { expected, .. } = pending.op.kind else {
                return Err(CoherenceError::DemotedNotConditional { core, addr });
            };
            if value == expected {
                pending.failable = false;
                pending.poisoned = false;
                let priority = pending.priority;
                let lock = pending.op.lock;
                // A fresh epoch: the home has already serviced (demoted)
                // the original sequence number, so the retry must carry a
                // newer one to pass the retransmission dedup filter.
                self.seq += 1;
                let seq = self.seq;
                let home = self.home_map.home_of(addr);
                outcome.msgs.push(
                    Envelope::to_core(
                        home,
                        CoherenceMsg::GetX {
                            addr,
                            requester: self.core,
                            home,
                            lock,
                            failable: false,
                            seq,
                        },
                    )
                    .with_priority(priority),
                );
                return Ok(outcome.note(L1Note::DemoteRetry));
            }
            let pending = self.pending.take().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data {
                    addr,
                    value,
                    acks_expected,
                    exclusive,
                    needs_unblock,
                    for_seq,
                },
            })?;
            if !pending.poisoned {
                self.lines.insert(addr, Line { state: State::Shared, value });
            }
            debug_assert!(!needs_unblock, "demoted service must not block the home");
            outcome.completion = Some(L1Completion { op: pending.op, value, hit: false });
            return Ok(outcome.note(L1Note::DemotedFail));
        }
        if pending.exclusive {
            if !exclusive {
                return Err(CoherenceError::SharedGrantForExclusive { core, addr });
            }
            if pending.recovering && pending.granted {
                // A recovery regrant and the original grant can both be
                // in flight; the first accepted grant of the current
                // epoch is authoritative.
                return Ok(outcome.note(L1Note::DuplicateGrantDropped));
            }
            pending.granted = true;
            pending.acks_expected = Some(acks_expected);
            if !pending.own_value {
                pending.value = value;
            }
            pending.has_value = true;
            self.try_complete_exclusive()
        } else {
            // Read transaction completes on data.
            let pending = self.pending.take().ok_or(CoherenceError::ResponseWithoutTxn {
                core,
                msg: CoherenceMsg::Data {
                    addr,
                    value,
                    acks_expected,
                    exclusive,
                    needs_unblock,
                    for_seq,
                },
            })?;
            if exclusive || !pending.poisoned {
                let state = if exclusive { State::Exclusive } else { State::Shared };
                self.lines.insert(addr, Line { state, value });
            }
            if needs_unblock {
                let home = self.home_map.home_of(addr);
                outcome.msgs.push(Envelope::to_core(
                    home,
                    CoherenceMsg::UnblockS { addr, from: self.core },
                ));
            }
            outcome.completion = Some(L1Completion { op: pending.op, value, hit: false });
            Ok(outcome)
        }
    }

    fn try_complete_exclusive(&mut self) -> Result<L1Outcome, CoherenceError> {
        let mut outcome = L1Outcome::default();
        let Some(pending) = self.pending.as_ref() else { return Ok(outcome) };
        let Some(expected) = pending.acks_expected else { return Ok(outcome) };
        if !pending.granted || !pending.has_value || pending.acks_received < expected {
            return Ok(outcome);
        }
        let pending = match self.pending.take() {
            Some(p) => p,
            // Unreachable: checked as_ref above; keep total anyway.
            None => return Ok(outcome),
        };
        let block = pending.op.addr.block();
        if pending.recovering {
            // Responses from aborted epochs may still be in flight:
            // absorb them instead of treating them as protocol bugs.
            self.absorb = Some(block);
        }
        let old = pending.value;
        let new = pending.op.kind.apply(old);
        self.lines.insert(block, Line { state: State::Modified, value: new });
        let home = self.home_map.home_of(block);
        outcome
            .msgs
            .push(Envelope::to_core(home, CoherenceMsg::UnblockX { addr: block, from: self.core }));
        outcome.completion = Some(L1Completion { op: pending.op, value: old, hit: false });
        Ok(outcome)
    }

    /// Recovery retransmission: aborts the outstanding exclusive
    /// transaction's current attempt and reissues it under a fresh
    /// sequence number.
    ///
    /// If a grant had already been accepted, its value becomes the
    /// transaction's authoritative value (`own_value`): the home node's
    /// L2 copy may be stale once ownership was granted, so the regrant's
    /// data is ignored. The reissue is neither interceptable (`lock:
    /// false`) nor demotable (`failable: false`) — recovery never
    /// re-enters the big-router or demotion paths.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::RetransmitWithoutTxn`] when no exclusive
    /// transaction is outstanding.
    pub fn abort_and_reissue(&mut self) -> Result<L1Outcome, CoherenceError> {
        let core = self.core;
        let pending = self
            .pending
            .as_mut()
            .filter(|p| p.exclusive)
            .ok_or(CoherenceError::RetransmitWithoutTxn { core })?;
        // A payload in hand survives the abort as the authoritative
        // value. `granted` alone is not enough: an AckCount regrant
        // grants ack bookkeeping while the payload is still in flight
        // from the old owner, and claiming ownership of that empty slot
        // would both serve garbage to forwards and block the capture of
        // the real payload when it lands.
        if pending.has_value {
            pending.own_value = true;
        }
        pending.granted = false;
        pending.acks_expected = None;
        pending.acks_received = 0;
        pending.failable = false;
        pending.recovering = true;
        let priority = pending.priority;
        let block = pending.op.addr.block();
        self.seq += 1;
        let seq = self.seq;
        let home = self.home_map.home_of(block);
        let mut outcome = L1Outcome::default();
        outcome.msgs.push(
            Envelope::to_core(
                home,
                CoherenceMsg::GetX {
                    addr: block,
                    requester: core,
                    home,
                    lock: false,
                    failable: false,
                    seq,
                },
            )
            .with_priority(priority),
        );
        Ok(outcome.note(L1Note::Retransmit))
    }
}

fn check_addr(core: CoreId, got: Addr, want: Addr) -> Result<(), CoherenceError> {
    if got == want {
        Ok(())
    } else {
        Err(CoherenceError::ResponseAddrMismatch { core, got, want })
    }
}

/// Timeout-based retransmission state of one L1 (present only when the
/// recovery layer is enabled).
#[derive(Debug, Clone, Copy)]
struct RecoveryTimer {
    /// Timeout armed on a fresh exclusive request. Must be much larger
    /// than the worst-case fault-free service latency: a spurious
    /// retransmission is *safe* (sequence-number dedup) but wasteful.
    base: u64,
    /// The exponential backoff stops doubling here.
    ceiling: u64,
    /// Retransmissions allowed per transaction.
    budget: u32,
    /// Current timeout (doubles on every firing, up to `ceiling`).
    current: u64,
    /// Retransmissions fired for the outstanding transaction.
    retries: u32,
    /// When the next retransmission fires (`None` = disarmed).
    deadline: Option<Cycle>,
}

/// The private L1 cache + controller of one core: the timed wrapper
/// around [`L1Core`].
#[derive(Debug)]
pub struct L1Cache {
    inner: L1Core,
    /// When the outstanding transaction was issued (timing bookkeeping
    /// the pure core does not carry).
    issued_at: Option<Cycle>,
    done: EventWheel<Completion>,
    completed: Option<Completion>,
    hit_latency: u64,
    stats: L1Stats,
    roundtrips: InvAckRoundTrips,
    /// Retransmission timer; `None` when recovery is off.
    recovery: Option<RecoveryTimer>,
}

impl L1Cache {
    /// Creates the L1 for `core`. `hit_latency` is Table 1's 2-cycle L1
    /// latency.
    pub fn new(core: CoreId, home_map: HomeMap, hit_latency: u64) -> Self {
        let cores = home_map.cores();
        L1Cache {
            inner: L1Core::new(core, home_map),
            issued_at: None,
            done: EventWheel::new(),
            completed: None,
            hit_latency,
            stats: L1Stats::default(),
            roundtrips: InvAckRoundTrips::new(cores, 256),
            recovery: None,
        }
    }

    /// Enables timeout-based retransmission: an exclusive transaction
    /// stalled for `timeout` cycles is aborted-and-reissued, with
    /// exponential backoff (ceiling `timeout * 64`) and at most `budget`
    /// retransmissions per transaction.
    pub fn enable_recovery(&mut self, timeout: u64, budget: u32) {
        let base = timeout.max(1);
        self.recovery = Some(RecoveryTimer {
            base,
            ceiling: base.saturating_mul(64),
            budget,
            current: base,
            retries: 0,
            deadline: None,
        });
    }

    /// Whether the retransmission timer has expired. Allocation-free:
    /// the simulator polls this every cycle on the hot path; the firing
    /// itself goes through [`fire_recovery`](Self::fire_recovery).
    pub fn recovery_due(&self, now: Cycle) -> bool {
        match &self.recovery {
            Some(t) => match t.deadline {
                Some(d) => now >= d,
                None => false,
            },
            None => false,
        }
    }

    /// True when the retransmission timer is armed and retries remain —
    /// the stalled transaction can still make progress on its own, so
    /// watchdog-style invariants must hold fire.
    pub fn recovery_pending(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|t| t.deadline.is_some() && t.retries < t.budget)
    }

    /// Retransmissions fired for the outstanding transaction (0 when
    /// idle or recovery is off).
    pub fn recovery_retries(&self) -> u32 {
        self.recovery.as_ref().map_or(0, |t| t.retries)
    }

    /// Fires one retransmission if the timer is due: aborts the
    /// outstanding exclusive transaction's attempt, reissues it under a
    /// fresh sequence number, and re-arms the timer with the doubled
    /// backoff. Out of budget, the timer disarms and the transaction is
    /// left to the watchdog.
    pub fn fire_recovery(&mut self, now: Cycle, out: &mut Vec<Envelope>) {
        if !self.recovery_due(now) {
            return;
        }
        let Some(timer) = self.recovery.as_mut() else { return };
        if timer.retries >= timer.budget {
            timer.deadline = None;
            self.stats.recovery_exhausted += 1;
            return;
        }
        timer.retries += 1;
        let doubled = timer.current.saturating_mul(2);
        if doubled > timer.ceiling {
            timer.current = timer.ceiling;
            self.stats.backoff_ceiling_hits += 1;
        } else {
            timer.current = doubled;
        }
        // Re-armed by `apply` when it sees the Retransmit note.
        timer.deadline = None;
        let outcome = match self.inner.abort_and_reissue() {
            Ok(outcome) => outcome,
            Err(e) => panic!("recovery retransmission rejected: {e}"),
        };
        self.apply(outcome, now, out);
    }

    /// The owning core.
    pub fn core(&self) -> CoreId {
        self.inner.core()
    }

    /// The pure protocol state (for invariant checks and diagnostics).
    pub fn protocol_state(&self) -> &L1Core {
        &self.inner
    }

    /// Whether a demand operation is outstanding.
    pub fn is_busy(&self) -> bool {
        self.inner.is_busy() || !self.done.is_empty() || self.completed.is_some()
    }

    /// Counters.
    pub fn stats(&self) -> &L1Stats {
        &self.stats
    }

    /// Invalidation round trips observed by this core as a *winner*
    /// (direct acknowledgements it collected).
    pub fn roundtrips(&self) -> &InvAckRoundTrips {
        &self.roundtrips
    }

    /// Pending-transaction description for stuck-run diagnostics.
    pub fn pending_report(&self) -> Option<String> {
        Some(format!(
            "pending={:?} done_queue={} completed={:?} busy={}",
            self.inner.pending,
            self.done.len(),
            self.completed,
            self.is_busy()
        ))
    }

    /// The cached line (state, value) of `addr`, for diagnostics.
    pub fn probe_line(&self, addr: Addr) -> Option<(&'static str, u64)> {
        self.inner.lines.get(&addr.block()).map(|l| (l.state.letter(), l.value))
    }

    /// All cached lines as `(block address, state letter)` pairs, for
    /// invariant checking (e.g. the single-writer rule across cores).
    pub fn lines_snapshot(&self) -> Vec<(Addr, &'static str)> {
        self.inner.lines.iter().map(|(addr, line)| (*addr, line.state.letter())).collect()
    }

    /// If this core is blocked collecting invalidation acknowledgements,
    /// returns `(addr, expected, received, issued_at)` for the stalled
    /// transaction. `None` when idle or not yet told an ack count.
    pub fn pending_ack_wait(&self) -> Option<(Addr, u16, u16, Cycle)> {
        let pending = self.inner.pending.as_ref()?;
        let expected = pending.acks_expected?;
        if pending.acks_received < expected {
            let issued_at = self.issued_at.unwrap_or(Cycle::ZERO);
            Some((pending.op.addr, expected, pending.acks_received, issued_at))
        } else {
            None
        }
    }

    /// The cached state of `addr` as a debug string (testing aid).
    pub fn probe_state(&self, addr: Addr) -> &'static str {
        self.inner.state_letter(addr)
    }

    /// Issues a demand operation.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding; the core model must
    /// wait for [`take_completion`](Self::take_completion) first.
    pub fn issue(&mut self, op: MemOp, now: Cycle, out: &mut Vec<Envelope>) {
        self.issue_with_priority(op, 0, now, out);
    }

    /// Issues a demand operation whose request packet carries an OCOR
    /// `priority`.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already outstanding.
    pub fn issue_with_priority(
        &mut self,
        op: MemOp,
        priority: u8,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) {
        assert!(!self.is_busy(), "L1 supports one outstanding demand op");
        if op.kind.is_write() {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let outcome = match self.inner.issue(op, priority) {
            Ok(outcome) => outcome,
            Err(e) => panic!("L1 issue rejected: {e}"),
        };
        self.issued_at = Some(now);
        self.apply(outcome, now, out);
    }

    /// Handles one protocol message delivered to this core, surfacing
    /// protocol violations as typed errors.
    ///
    /// # Errors
    ///
    /// The [`CoherenceError`] describing the violation when the message
    /// is impossible in the current protocol state (a lost, duplicated or
    /// misrouted message upstream).
    pub fn try_handle(
        &mut self,
        msg: CoherenceMsg,
        now: Cycle,
        out: &mut Vec<Envelope>,
    ) -> Result<(), CoherenceError> {
        // lint: allow(wildcard) — a stats-only pre-pass; the exhaustive
        // dispatch over every message variant is `inner.handle` below.
        match &msg {
            CoherenceMsg::Inv { .. } => self.stats.invs_received += 1,
            CoherenceMsg::InvAck { from, inv_sent_at, via_home: false, .. } => {
                self.roundtrips.record(*from, now.saturating_since(*inv_sent_at));
            }
            _ => {}
        }
        let outcome = self.inner.handle(msg)?;
        self.apply(outcome, now, out);
        Ok(())
    }

    /// Handles one protocol message delivered to this core.
    ///
    /// # Panics
    ///
    /// Panics on a protocol violation; the simulator's checked run path
    /// uses [`try_handle`](Self::try_handle) instead.
    pub fn handle(&mut self, msg: CoherenceMsg, now: Cycle, out: &mut Vec<Envelope>) {
        if let Err(e) = self.try_handle(msg, now, out) {
            panic!("{e}");
        }
    }

    /// Maps a pure-core outcome onto the timed world: messages out,
    /// completion scheduling, statistics.
    fn apply(&mut self, outcome: L1Outcome, now: Cycle, out: &mut Vec<Envelope>) {
        for note in &outcome.notes {
            match note {
                L1Note::Hit => self.stats.hits += 1,
                L1Note::MissGetS => {
                    self.stats.misses += 1;
                    self.stats.gets_issued += 1;
                }
                L1Note::MissGetX => {
                    self.stats.misses += 1;
                    self.stats.getx_issued += 1;
                }
                L1Note::ForwardBounced => self.stats.forwards_bounced += 1,
                L1Note::DemoteRetry => self.stats.demote_retries += 1,
                L1Note::DemotedFail => self.stats.demoted_fails += 1,
                L1Note::Retransmit => self.stats.retransmits += 1,
                L1Note::StaleAckDropped => self.stats.stale_acks_dropped += 1,
                L1Note::DuplicateGrantDropped => self.stats.dup_grants_dropped += 1,
                L1Note::StaleResponseAbsorbed => self.stats.stale_absorbed += 1,
                L1Note::StaleGrantDropped => self.stats.stale_grants_dropped += 1,
            }
        }
        // Retransmission timer: armed on every exclusive request leaving
        // the core, disarmed (and backoff reset) on completion.
        if let Some(timer) = self.recovery.as_mut() {
            if outcome.completion.is_some() {
                timer.deadline = None;
                timer.retries = 0;
                timer.current = timer.base;
            } else if outcome.notes.iter().any(|n| {
                matches!(n, L1Note::MissGetX | L1Note::DemoteRetry | L1Note::Retransmit)
            }) {
                timer.deadline = Some(now + timer.current);
            }
        }
        out.extend(outcome.msgs);
        if let Some(c) = outcome.completion {
            let issued_at = self.issued_at.take().unwrap_or(now);
            let latency = if c.hit { self.hit_latency } else { 1 };
            if !c.hit {
                let busy = now.saturating_since(issued_at);
                self.stats.mem_txn_cycles += busy;
                if c.op.kind.is_write() {
                    self.stats.write_miss_lat += busy;
                    self.stats.write_misses += 1;
                } else {
                    self.stats.read_miss_lat += busy;
                    self.stats.read_misses += 1;
                }
                if c.op.lock {
                    self.stats.lock_txn_cycles += busy;
                    self.stats.lock_txns += 1;
                }
            }
            self.done.schedule(
                now + latency,
                Completion { op: c.op, value: c.value, issued_at, completed_at: now + latency },
            );
        }
    }

    /// Advances internal timers (hit-latency and completion events).
    pub fn tick(&mut self, now: Cycle) {
        if self.completed.is_none() {
            self.completed = self.done.pop_due(now);
        }
        if let Some(due) = self.done.next_due() {
            if now.saturating_since(due) > 100_000 {
                panic!(
                    "L1 {} completion stuck: due {due:?} now {now:?} completed {:?} pending {:?}",
                    self.inner.core().index(),
                    self.completed,
                    self.inner.pending
                );
            }
        }
    }

    /// Removes and returns the completion of the outstanding operation,
    /// if it has finished.
    pub fn take_completion(&mut self) -> Option<Completion> {
        self.completed.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(CoreId::new(0), HomeMap::new(4), 2)
    }

    fn drive_until_complete(l1: &mut L1Cache, mut now: Cycle) -> (Completion, Cycle) {
        for _ in 0..64 {
            l1.tick(now);
            if let Some(c) = l1.take_completion() {
                return (c, now);
            }
            now = now.next();
        }
        panic!("operation did not complete");
    }

    // Exclusive grants echo request epoch 1: `issue()` bumps the core's
    // sequence number before sending, so a single exclusive issue leaves
    // the L1 at epoch 1.
    fn data(addr: Addr, value: u64, acks: u16, exclusive: bool) -> CoherenceMsg {
        CoherenceMsg::Data {
            addr,
            value,
            acks_expected: acks,
            exclusive,
            needs_unblock: false,
            for_seq: exclusive.then_some(1),
        }
    }

    /// Exclusive grant echoing an explicit request epoch, for tests that
    /// reissue (each retransmission bumps the epoch).
    fn data_epoch(addr: Addr, value: u64, acks: u16, seq: u64) -> CoherenceMsg {
        CoherenceMsg::Data {
            addr,
            value,
            acks_expected: acks,
            exclusive: true,
            needs_unblock: false,
            for_seq: Some(seq),
        }
    }

    #[test]
    fn cold_load_issues_gets_and_installs_shared() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, CoherenceMsg::GetS { .. }));
        assert_eq!(out[0].dst, CoreId::new(2), "0x100 is block 2 of 4 banks");
        out.clear();
        l1.handle(data(addr.block(), 42, 0, false), Cycle::new(10), &mut out);
        assert!(out.is_empty(), "no unblock needed for direct shared grant");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(10));
        assert_eq!(c.value, 42);
        assert_eq!(l1.probe_state(addr), "S");
    }

    #[test]
    fn exclusive_read_grant_installs_e_and_write_hits_silently() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100);
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::Data {
                addr: addr.block(),
                value: 5,
                acks_expected: 0,
                exclusive: true,
                needs_unblock: true,
                for_seq: None,
            },
            Cycle::new(8),
            &mut out,
        );
        assert!(
            matches!(out[0].msg, CoherenceMsg::UnblockS { .. }),
            "E grant blocks the home until unblocked"
        );
        drive_until_complete(&mut l1, Cycle::new(8));
        assert_eq!(l1.probe_state(addr), "E");

        // A store now upgrades silently: no traffic.
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(9), lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(c.value, 5, "store returns the old value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    fn swap_miss_runs_full_getx_transaction() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        let CoherenceMsg::GetX { lock, .. } = out[0].msg else { panic!("expected GetX") };
        assert!(lock, "lock flag propagates to the GetX");
        out.clear();

        // Data with two acks expected; completion only after both.
        l1.handle(data(addr.block(), 0, 2, true), Cycle::new(6), &mut out);
        assert!(out.is_empty());
        l1.tick(Cycle::new(7));
        assert!(l1.take_completion().is_none());
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(1),
                inv_sent_at: Cycle::new(2),
                via_home: false,
                count: 1,
                for_seq: 1,
            },
            Cycle::new(8),
            &mut out,
        );
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(2),
                via_home: true,
                count: 1,
                for_seq: 1,
            },
            Cycle::new(9),
            &mut out,
        );
        let unblock = out.iter().find(|e| matches!(e.msg, CoherenceMsg::UnblockX { .. }));
        assert!(unblock.is_some(), "winner unblocks the home");
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(9));
        assert_eq!(c.value, 0, "swap returns the pre-swap value");
        assert_eq!(l1.probe_state(addr), "M");
        // Only the direct (non-via-home) ack was recorded as a round trip.
        assert_eq!(l1.roundtrips().total_count(), 1);
        assert_eq!(l1.stats().lock_txns, 1);
        assert!(l1.stats().lock_txn_cycles > 0);
    }

    #[test]
    fn acks_may_arrive_before_data() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200);
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(
            CoherenceMsg::InvAck {
                addr: addr.block(),
                from: CoreId::new(3),
                inv_sent_at: Cycle::ZERO,
                via_home: false,
                count: 1,
                for_seq: 1,
            },
            Cycle::new(4),
            &mut out,
        );
        l1.tick(Cycle::new(5));
        assert!(l1.take_completion().is_none(), "no data yet");
        l1.handle(data(addr.block(), 7, 1, true), Cycle::new(6), &mut out);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(6));
        assert_eq!(c.value, 7);
    }

    #[test]
    fn inv_invalidates_and_acks_winner() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "S");

        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Core(CoreId::new(3)),
                home: CoreId::new(2),
                sent_at: Cycle::new(9),
                for_seq: 7,
            },
            Cycle::new(12),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let ack = out.last().expect("ack sent");
        assert_eq!(ack.dst, CoreId::new(3));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::InvAck { from, via_home: false, for_seq: 7, .. }
                if from == CoreId::new(0)
        ));
    }

    #[test]
    fn early_inv_acks_to_router_even_when_line_absent() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x300).block();
        l1.handle(
            CoherenceMsg::Inv {
                addr,
                ack_to: AckTarget::Router(CoreId::new(9)),
                home: CoreId::new(2),
                sent_at: Cycle::new(4),
                for_seq: 0,
            },
            Cycle::new(8),
            &mut out,
        );
        let ack = out.last().expect("ack sent");
        assert_eq!(ack.dst, CoreId::new(9));
        assert!(matches!(
            ack.msg,
            CoherenceMsg::EarlyInvAck { inv_sent_at, .. } if inv_sent_at == Cycle::new(4)
        ));
        assert_eq!(ack.sink, inpg_noc::Sink::Router);
    }

    #[test]
    fn fwd_gets_shares_and_keeps_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M owner.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(11), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        assert_eq!(l1.probe_state(addr), "M");

        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(20), &mut out);
        assert_eq!(l1.probe_state(addr), "O");
        let CoherenceMsg::Data { value, exclusive, needs_unblock, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 11);
        assert!(!exclusive);
        assert!(!needs_unblock, "owner forwards are non-blocking");
        assert_eq!(out[0].dst, CoreId::new(2));
    }

    #[test]
    fn fwd_getx_transfers_ownership() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Store(13), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        out.clear();
        l1.handle(
            CoherenceMsg::FwdGetX { addr, requester: CoreId::new(3), acks_expected: 2, for_seq: 0 },
            Cycle::new(20),
            &mut out,
        );
        assert_eq!(l1.probe_state(addr), "I");
        let CoherenceMsg::Data { value, acks_expected, exclusive, .. } = out[0].msg else {
            panic!("expected Data")
        };
        assert_eq!(value, 13);
        assert_eq!(acks_expected, 2);
        assert!(exclusive);
    }

    #[test]
    fn o_state_upgrade_uses_own_value_with_ackcount() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        // Become M, then demote to O via FwdGetS.
        l1.issue(MemOp { addr, kind: MemOpKind::Store(21), lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 0, 0, true), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));
        out.clear();
        l1.handle(CoherenceMsg::FwdGetS { addr, requester: CoreId::new(2) }, Cycle::new(10), &mut out);
        assert_eq!(l1.probe_state(addr), "O");

        // Upgrade: O -> GetX; home answers with AckCount (no data).
        out.clear();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::new(20), &mut out);
        assert!(matches!(out[0].msg, CoherenceMsg::GetX { .. }));
        out.clear();
        l1.handle(CoherenceMsg::AckCount { addr, acks_expected: 1, for_seq: 2 }, Cycle::new(26), &mut out);
        l1.handle(
            CoherenceMsg::InvAck {
                addr,
                from: CoreId::new(2),
                inv_sent_at: Cycle::new(24),
                via_home: false,
                count: 1,
                for_seq: 2,
            },
            Cycle::new(30),
            &mut out,
        );
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(30));
        assert_eq!(c.value, 21, "swap sees the owner's own (dirty) value");
        assert_eq!(l1.probe_state(addr), "M");
    }

    #[test]
    #[should_panic(expected = "one outstanding")]
    fn double_issue_panics() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let op = MemOp { addr: Addr::new(0x100), kind: MemOpKind::Load, lock: false };
        l1.issue(op, Cycle::ZERO, &mut out);
        l1.issue(op, Cycle::ZERO, &mut out);
    }

    #[test]
    fn hit_latency_is_respected() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::ZERO, &mut out);
        out.clear();
        l1.handle(data(addr, 1, 0, false), Cycle::new(5), &mut out);
        drive_until_complete(&mut l1, Cycle::new(5));

        // Now a hit: completes exactly hit_latency cycles later.
        l1.issue(MemOp { addr, kind: MemOpKind::Load, lock: false }, Cycle::new(20), &mut out);
        assert!(out.is_empty());
        let (c, when) = drive_until_complete(&mut l1, Cycle::new(20));
        assert_eq!(when, Cycle::new(22));
        assert_eq!(c.completed_at, Cycle::new(22));
    }

    #[test]
    fn surplus_inv_ack_is_a_typed_error() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x200).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        l1.handle(data(addr, 0, 1, true), Cycle::new(5), &mut out);
        // The single expected ack completes the transaction; a duplicate
        // ack then finds no transaction at all.
        let ack = CoherenceMsg::InvAck {
            addr,
            from: CoreId::new(1),
            inv_sent_at: Cycle::ZERO,
            via_home: false,
            count: 1,
            for_seq: 1,
        };
        l1.handle(ack.clone(), Cycle::new(6), &mut out);
        let err = l1.try_handle(ack, Cycle::new(7), &mut out).expect_err("duplicate ack");
        assert!(matches!(err, CoherenceError::ResponseWithoutTxn { .. }), "{err}");
    }

    #[test]
    fn misrouted_request_is_a_typed_error() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let msg = CoherenceMsg::GetS { addr: Addr::new(0), requester: CoreId::new(1) };
        let err = l1.try_handle(msg, Cycle::ZERO, &mut out).expect_err("misrouted");
        assert!(matches!(err, CoherenceError::UnexpectedAtL1 { .. }), "{err}");
    }

    fn inv_ack(addr: Addr, from: usize, for_seq: u64) -> CoherenceMsg {
        CoherenceMsg::InvAck {
            addr,
            from: CoreId::new(from),
            inv_sent_at: Cycle::ZERO,
            via_home: false,
            count: 1,
            for_seq,
        }
    }

    #[test]
    fn retransmission_recovers_a_lost_ack() {
        let mut l1 = l1();
        l1.enable_recovery(100, 4);
        let mut out = Vec::new();
        let addr = Addr::new(0x200).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        out.clear();
        // Grant with two acks expected; only one arrives (the other is
        // lost in the network).
        l1.handle(data(addr, 5, 2, true), Cycle::new(6), &mut out);
        l1.handle(inv_ack(addr, 1, 1), Cycle::new(8), &mut out);
        assert!(!l1.recovery_due(Cycle::new(99)));
        assert!(l1.recovery_due(Cycle::new(100)));

        out.clear();
        l1.fire_recovery(Cycle::new(100), &mut out);
        assert_eq!(l1.stats().retransmits, 1);
        let CoherenceMsg::GetX { lock, failable, seq, .. } = out[0].msg else {
            panic!("expected reissued GetX, got {:?}", out[0].msg)
        };
        assert!(!lock, "reissues are never interceptable");
        assert!(!failable, "reissues are never demotable");
        assert_eq!(seq, 2, "fresh epoch");

        // A straggler ack from the aborted epoch must not double-count.
        out.clear();
        l1.handle(inv_ack(addr, 2, 1), Cycle::new(110), &mut out);
        assert_eq!(l1.stats().stale_acks_dropped, 1);

        // The home regrants (its L2 value 99 is stale — the original
        // grant's value 5 is authoritative) and re-invalidates both
        // sharers; a duplicate grant is dropped.
        l1.handle(data_epoch(addr, 99, 2, 2), Cycle::new(120), &mut out);
        l1.handle(data_epoch(addr, 77, 1, 2), Cycle::new(121), &mut out);
        assert_eq!(l1.stats().dup_grants_dropped, 1);
        l1.handle(inv_ack(addr, 1, 2), Cycle::new(125), &mut out);
        l1.handle(inv_ack(addr, 2, 2), Cycle::new(126), &mut out);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(126));
        assert_eq!(c.value, 5, "swap returns the granted (authoritative) value");
        assert_eq!(l1.probe_line(addr), Some(("M", 1)));
        assert!(!l1.recovery_due(Cycle::new(10_000)), "timer disarmed on completion");

        // Stragglers for the completed recovery transaction are absorbed.
        out.clear();
        l1.try_handle(data(addr, 0, 0, true), Cycle::new(130), &mut out)
            .expect("stale response absorbed");
        l1.try_handle(inv_ack(addr, 2, 1), Cycle::new(131), &mut out)
            .expect("stale ack absorbed");
        assert_eq!(l1.stats().stale_absorbed, 2);
        assert!(out.is_empty());
    }

    #[test]
    fn forwarded_regrant_waits_for_the_owners_payload() {
        // The serve was an owner forward, so the regrant after a (false)
        // timeout is an AckCount with no payload: completion must wait
        // for the old owner's dirty data, which arrives stamped with the
        // aborted epoch and is salvaged rather than discarded — it is
        // the only copy in the system.
        let mut l1 = l1();
        l1.enable_recovery(100, 4);
        let mut out = Vec::new();
        let addr = Addr::new(0x200).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(9), lock: true }, Cycle::ZERO, &mut out);
        out.clear();
        l1.fire_recovery(Cycle::new(100), &mut out);

        // Regrant bookkeeping for the fresh epoch, then its ack: still
        // no completion, the payload is missing.
        l1.handle(CoherenceMsg::AckCount { addr, acks_expected: 1, for_seq: 2 }, Cycle::new(110), &mut out);
        l1.handle(inv_ack(addr, 1, 2), Cycle::new(112), &mut out);
        l1.tick(Cycle::new(113));
        assert!(l1.take_completion().is_none(), "no payload yet");

        // The old owner's forward lands, stamped with the dead epoch.
        l1.handle(data_epoch(addr, 41, 1, 1), Cycle::new(120), &mut out);
        assert_eq!(l1.stats().stale_grants_dropped, 1);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(120));
        assert_eq!(c.value, 41, "swap returns the owner's dirty value, not stale L2 data");
        assert_eq!(l1.probe_line(addr), Some(("M", 9)));
    }

    #[test]
    fn salvaged_payload_survives_a_second_abort() {
        // Payload captured from a dead-epoch forward, then another
        // timeout: the reissue keeps the captured value authoritative
        // and the next regrant's bookkeeping completes with it.
        let mut l1 = l1();
        l1.enable_recovery(100, 4);
        let mut out = Vec::new();
        let addr = Addr::new(0x200).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(9), lock: true }, Cycle::ZERO, &mut out);
        l1.fire_recovery(Cycle::new(100), &mut out);
        l1.handle(data_epoch(addr, 41, 1, 1), Cycle::new(110), &mut out);
        out.clear();
        l1.fire_recovery(Cycle::new(300), &mut out);
        l1.handle(CoherenceMsg::AckCount { addr, acks_expected: 0, for_seq: 3 }, Cycle::new(310), &mut out);
        let (c, _) = drive_until_complete(&mut l1, Cycle::new(310));
        assert_eq!(c.value, 41);
        assert_eq!(l1.probe_line(addr), Some(("M", 9)));
    }

    #[test]
    fn recovery_budget_exhausts_and_disarms() {
        let mut l1 = l1();
        l1.enable_recovery(10, 2);
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        assert!(l1.recovery_pending());
        l1.fire_recovery(Cycle::new(10), &mut out);
        l1.fire_recovery(Cycle::new(30), &mut out);
        assert_eq!(l1.stats().retransmits, 2);
        assert!(!l1.recovery_pending(), "out of retries");
        l1.fire_recovery(Cycle::new(70), &mut out);
        assert_eq!(l1.stats().recovery_exhausted, 1);
        assert!(!l1.recovery_due(Cycle::new(100_000)), "timer disarmed");
    }

    #[test]
    fn backoff_doubles_to_a_ceiling() {
        let mut l1 = l1();
        l1.enable_recovery(1, 8);
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        let mut now = Cycle::ZERO;
        for _ in 0..8 {
            now += 1000;
            l1.fire_recovery(now, &mut out);
        }
        assert_eq!(l1.stats().retransmits, 8);
        // base 1 doubles 2,4,...,64 (the 64× ceiling) then pins there.
        assert_eq!(l1.stats().backoff_ceiling_hits, 2);
    }

    #[test]
    fn recovery_off_timer_never_fires() {
        let mut l1 = l1();
        let mut out = Vec::new();
        let addr = Addr::new(0x100).block();
        l1.issue(MemOp { addr, kind: MemOpKind::Swap(1), lock: true }, Cycle::ZERO, &mut out);
        assert!(!l1.recovery_due(Cycle::new(1_000_000)));
        assert!(!l1.recovery_pending());
        assert_eq!(l1.recovery_retries(), 0);
    }
}
