//! Protocol-level integration tests: several L1 controllers and home
//! banks exchanging messages over a randomized-delay transport (no NoC),
//! checking end-to-end atomicity of the coherence protocol under heavy
//! racing — the property every lock primitive ultimately stands on.

use inpg_coherence::{CoherenceMsg, Envelope, HomeBank, HomeMap, L1Cache, MemOp, MemOpKind};
use inpg_noc::Sink;
use inpg_sim::{Addr, CoreId, Cycle, EventWheel, SimRng};

/// A little closed system: `n` cores, block-interleaved homes, messages
/// delivered after a random 1..=max_delay cycle latency.
struct MiniSystem {
    l1s: Vec<L1Cache>,
    homes: Vec<HomeBank>,
    wire: EventWheel<(usize, CoherenceMsg)>,
    rng: SimRng,
    max_delay: u64,
    now: Cycle,
    outbox: Vec<Envelope>,
}

impl MiniSystem {
    fn new(n: usize, max_delay: u64, seed: u64) -> Self {
        let map = HomeMap::new(n);
        MiniSystem {
            l1s: (0..n).map(|c| L1Cache::new(CoreId::new(c), map, 1)).collect(),
            homes: (0..n).map(|c| HomeBank::new(CoreId::new(c), n, 2)).collect(),
            wire: EventWheel::new(),
            rng: SimRng::seed_from_u64(seed),
            max_delay,
            now: Cycle::ZERO,
            outbox: Vec::new(),
        }
    }

    fn post(&mut self, env: Envelope) {
        assert_eq!(env.sink, Sink::NetworkInterface, "no routers in the mini system");
        let delay = self.rng.next_range(1, self.max_delay);
        self.wire.schedule(self.now + delay, (env.dst.index(), env.msg));
    }

    fn flush_outbox(&mut self) {
        let envs: Vec<Envelope> = self.outbox.drain(..).collect();
        for env in envs {
            self.post(env);
        }
    }

    fn tick(&mut self) {
        while let Some((node, msg)) = self.wire.pop_due(self.now) {
            match msg {
                CoherenceMsg::GetS { .. }
                | CoherenceMsg::GetX { .. }
                | CoherenceMsg::RelayedGetX { .. }
                | CoherenceMsg::RelayedInvAck { .. }
                | CoherenceMsg::UnblockS { .. }
                | CoherenceMsg::UnblockX { .. } => self.homes[node].handle(msg, self.now),
                other => {
                    let mut outbox = std::mem::take(&mut self.outbox);
                    self.l1s[node].handle(other, self.now, &mut outbox);
                    self.outbox = outbox;
                    self.flush_outbox();
                }
            }
        }
        for home in &mut self.homes {
            let mut outbox = Vec::new();
            home.tick(self.now, &mut outbox);
            self.outbox.extend(outbox);
        }
        self.flush_outbox();
        for l1 in &mut self.l1s {
            l1.tick(self.now);
        }
        self.now = self.now.next();
    }

    /// The authoritative value of a word once quiescent.
    fn read_word(&self, addr: Addr) -> u64 {
        for l1 in &self.l1s {
            if let Some((state, value)) = l1.probe_line(addr) {
                if matches!(state, "M" | "E" | "O") {
                    return value;
                }
            }
        }
        let map = HomeMap::new(self.homes.len());
        self.homes[map.home_of(addr).index()].l2_value(addr)
    }
}

/// Drives every core through `ops_per_core` operations from `make_op`,
/// one outstanding op per core, until all complete.
fn drive(
    system: &mut MiniSystem,
    ops_per_core: usize,
    mut make_op: impl FnMut(usize, usize) -> MemOp,
) -> Vec<Vec<u64>> {
    let n = system.l1s.len();
    let mut issued = vec![0usize; n];
    let mut results: Vec<Vec<u64>> = vec![Vec::new(); n];
    let deadline = 2_000_000u64;
    while system.now.as_u64() < deadline {
        for c in 0..n {
            if let Some(done) = system.l1s[c].take_completion() {
                results[c].push(done.value);
            }
            if !system.l1s[c].is_busy() && issued[c] < ops_per_core {
                let op = make_op(c, issued[c]);
                issued[c] += 1;
                let mut outbox = std::mem::take(&mut system.outbox);
                system.l1s[c].issue(op, system.now, &mut outbox);
                system.outbox = outbox;
                system.flush_outbox();
            }
        }
        if results.iter().all(|r| r.len() == ops_per_core) {
            return results;
        }
        system.tick();
    }
    panic!("mini system wedged: issued {issued:?}");
}

#[test]
fn concurrent_fetch_adds_are_atomic() {
    for seed in [1u64, 7, 42] {
        let mut system = MiniSystem::new(8, 9, seed);
        let addr = Addr::new(0);
        let per_core = 25;
        drive(&mut system, per_core, |_, _| MemOp {
            addr,
            kind: MemOpKind::FetchAdd(1),
            lock: true,
        });
        // Drain in-flight unblocks so the final state is quiescent.
        for _ in 0..200 {
            system.tick();
        }
        assert_eq!(
            system.read_word(addr),
            8 * per_core as u64,
            "every increment lands exactly once (seed {seed})"
        );
    }
}

#[test]
fn fetch_adds_return_unique_values() {
    // The returned old values of an atomic counter must be a permutation
    // of 0..total — the definition of atomicity.
    let mut system = MiniSystem::new(6, 7, 99);
    let addr = Addr::new(128);
    let per_core = 20;
    let results = drive(&mut system, per_core, |_, _| MemOp {
        addr,
        kind: MemOpKind::FetchAdd(1),
        lock: true,
    });
    let mut seen: Vec<u64> = results.into_iter().flatten().collect();
    seen.sort_unstable();
    let expected: Vec<u64> = (0..6 * per_core as u64).collect();
    assert_eq!(seen, expected);
}

#[test]
fn swaps_chain_without_losing_values() {
    // Each core repeatedly swaps its identity in; the sequence of old
    // values observed across all cores must contain every written value
    // exactly once (plus the initial 0).
    let n = 5;
    let per_core = 12;
    let mut system = MiniSystem::new(n, 6, 3);
    let addr = Addr::new(256);
    let results = drive(&mut system, per_core, |c, i| MemOp {
        addr,
        kind: MemOpKind::Swap((c * per_core + i + 1) as u64),
        lock: true,
    });
    for _ in 0..200 {
        system.tick();
    }
    let mut observed: Vec<u64> = results.into_iter().flatten().collect();
    observed.push(system.read_word(addr));
    observed.sort_unstable();
    let mut expected: Vec<u64> = (0..=(n * per_core) as u64).collect();
    expected.sort_unstable();
    assert_eq!(observed, expected, "a swapped-in value vanished or duplicated");
}

#[test]
fn cas_grants_mutual_exclusion() {
    // Everyone CASes 0 -> their id; exactly one may succeed.
    let n = 8;
    let mut system = MiniSystem::new(n, 10, 1234);
    let addr = Addr::new(512);
    let results = drive(&mut system, 1, |c, _| MemOp {
        addr,
        kind: MemOpKind::CompareSwap { expected: 0, new: c as u64 + 1 },
        lock: true,
    });
    let winners = results.iter().filter(|r| r[0] == 0).count();
    assert_eq!(winners, 1, "exactly one CAS may observe 0");
    for _ in 0..200 {
        system.tick();
    }
    let value = system.read_word(addr);
    assert!(value >= 1 && value <= n as u64, "the winner's id is stored");
}

#[test]
fn mixed_blocks_do_not_interfere() {
    // Cores hammer different blocks; each block's counter must be exact.
    let n = 6;
    let per_core = 15;
    let mut system = MiniSystem::new(n, 8, 777);
    drive(&mut system, per_core, |c, _| MemOp {
        addr: Addr::new(((c % 3) * 128) as u64),
        kind: MemOpKind::FetchAdd(1),
        lock: false,
    });
    for _ in 0..200 {
        system.tick();
    }
    // Cores 0&3 -> block 0, 1&4 -> block 1, 2&5 -> block 2.
    for block in 0..3u64 {
        assert_eq!(system.read_word(Addr::new(block * 128)), 2 * per_core as u64);
    }
}

#[test]
fn reads_eventually_observe_writes() {
    // One writer increments; readers poll. Every reader's final observed
    // value must equal the writer's total (no stuck stale copies).
    let n = 4;
    let mut system = MiniSystem::new(n, 5, 55);
    let addr = Addr::new(0);
    let writes = 10usize;
    let results = drive(&mut system, writes, |c, i| {
        if c == 0 {
            MemOp { addr, kind: MemOpKind::FetchAdd(1), lock: false }
        } else {
            // Readers interleave loads with delays via extra loads.
            let _ = i;
            MemOp { addr, kind: MemOpKind::Load, lock: false }
        }
    });
    for _ in 0..300 {
        system.tick();
    }
    assert_eq!(system.read_word(addr), writes as u64);
    // Reader-observed values never exceed the writer's count and never
    // decrease per reader (per-location coherence order).
    for vals in results.iter().take(n).skip(1) {
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "reads went backwards: {vals:?}");
        assert!(vals.iter().all(|&v| v <= writes as u64));
    }
}
