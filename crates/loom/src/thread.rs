//! Modeled threads: loom-compatible `spawn`/`yield_now`/`JoinHandle`.
//!
//! Each modeled thread is a real OS thread serialized by the scheduler:
//! it runs only while it is the active thread, and every visible
//! operation hands the turn back to the explorer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as OsMutex};

use crate::{current, payload_msg, set_current, Tid};

/// Handle to a modeled thread; `join` is a scheduling point.
pub struct JoinHandle<T> {
    tid: Tid,
    slot: Arc<OsMutex<Option<Result<T, String>>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes, returning its
    /// result, or `Err` with the panic message if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = current();
        sched.join_wait(self.tid, me);
        let result = self
            .slot
            .lock()
            .expect("result slot never poisons")
            .take()
            .expect("joined thread must have deposited a result");
        result.map_err(|msg| Box::new(msg) as Box<dyn std::any::Any + Send>)
    }
}

/// Spawns a modeled thread. It becomes runnable immediately and first
/// executes when the explorer schedules it.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, _me) = current();
    let tid = sched.register_thread();
    let slot = Arc::new(OsMutex::new(None));
    let thread_slot = Arc::clone(&slot);
    let thread_sched = Arc::clone(&sched);
    let os = std::thread::spawn(move || {
        set_current(Arc::clone(&thread_sched), tid);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // First scheduling point: wait to be chosen before running
            // any of the closure's code.
            thread_sched.switch(tid);
            f()
        }));
        let panic_msg = result.as_ref().err().map(|p| payload_msg(p.as_ref()));
        *thread_slot.lock().expect("result slot never poisons") =
            Some(result.map_err(|p| payload_msg(p.as_ref())));
        thread_sched.finish(tid, panic_msg);
    });
    sched.push_handle(os);
    JoinHandle { tid, slot }
}

/// A pure scheduling point: lets the explorer run another thread here.
pub fn yield_now() {
    let (sched, me) = current();
    sched.switch(me);
}
