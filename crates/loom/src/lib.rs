//! A vendored, std-only model-checking shim with a loom-compatible
//! surface, in the same spirit as the workspace's `proptest` and
//! `criterion` shims: the build environment has no registry access, so
//! the API the tests are written against is reproduced here and the
//! tests stay source-compatible with the real crate.
//!
//! What it does: [`model`] runs a closure repeatedly, exploring **every
//! interleaving** of the loom-wrapped threads and synchronization
//! operations inside it. Execution is serialized — exactly one modeled
//! thread runs at a time — and every visible operation (mutex
//! lock/unlock, condvar wait/notify, atomic access, spawn/join,
//! `yield_now`) is a scheduling point where the explorer chooses which
//! thread advances. Choices are recorded; after each execution the
//! deepest choice with an unexplored alternative is bumped and the
//! prefix replayed (depth-first search over the schedule tree). A
//! panicking thread or a deadlock (every live thread blocked) fails the
//! model with the schedule that produced it.
//!
//! Honest limitations vs the real loom:
//!
//! * **Sequential consistency only.** Atomics execute as `SeqCst`
//!   regardless of the ordering argument; weak-memory reorderings are
//!   not explored. A bug that *requires* `Relaxed` reordering to
//!   surface will not be found — interleaving bugs (the common kind in
//!   lock-based code) will be.
//! * **No partial-order reduction.** The schedule tree is explored
//!   whole, so models must stay small (2–3 threads, a dozen operations
//!   each). The explorer panics after [`MAX_ITERATIONS`] executions
//!   rather than silently truncating coverage.
//! * Mutexes never poison (a panicking execution aborts the run), and
//!   condvars have no spurious wakeups.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

pub mod sync;
pub mod thread;

/// Executions explored before the model panics: a model this large
/// needs partial-order reduction (the real loom), not a bigger cap.
pub const MAX_ITERATIONS: usize = 250_000;

/// Scheduling decisions per execution before the model panics; a bound
/// this deep means a thread is polling in a loop the explorer cannot
/// exhaust.
pub const MAX_STEPS: usize = 20_000;

pub(crate) type Tid = usize;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked,
    Finished,
}

#[derive(Default)]
struct State {
    /// Choice indices to replay from the previous execution (prefix).
    replay: Vec<usize>,
    /// Choice indices actually taken this execution.
    chosen: Vec<usize>,
    /// Number of runnable threads at each decision (branch width).
    alts: Vec<usize>,
    step: usize,
    threads: Vec<Run>,
    active: Tid,
    failure: Option<String>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CvSt>,
    /// Threads waiting in `join` on the indexed thread.
    join_waiters: Vec<Vec<Tid>>,
    /// Threads not yet Finished.
    live: usize,
}

#[derive(Default)]
struct MutexSt {
    held: bool,
    waiters: Vec<Tid>,
}

#[derive(Default)]
struct CvSt {
    waiters: Vec<Tid>,
}

pub(crate) struct Scheduler {
    state: OsMutex<State>,
    cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, Tid)>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> (Arc<Scheduler>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

pub(crate) fn set_current(sched: Arc<Scheduler>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

fn clear_current() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// The message threads panic with when the execution is being torn
/// down after a primary failure; never surfaces as the model verdict.
const ABANDONED: &str = "loom: execution abandoned after a failure elsewhere";

impl Scheduler {
    fn new(replay: Vec<usize>) -> Scheduler {
        let state = State {
            replay,
            threads: vec![Run::Runnable],
            join_waiters: vec![Vec::new()],
            live: 1,
            ..State::default()
        };
        Scheduler {
            state: OsMutex::new(state),
            cv: OsCondvar::new(),
            handles: OsMutex::new(Vec::new()),
        }
    }

    /// Picks the next thread to advance. Called with the state lock
    /// held, by the thread giving up its turn.
    fn decide(&self, st: &mut State) {
        if st.failure.is_some() {
            return;
        }
        let runnable: Vec<Tid> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.live > 0 {
                st.failure = Some(format!(
                    "deadlock: {} live thread(s) all blocked (schedule {:?})",
                    st.live, st.chosen
                ));
            }
            return;
        }
        if st.step >= MAX_STEPS {
            st.failure = Some(format!(
                "execution exceeded {MAX_STEPS} scheduling points — is a thread polling?"
            ));
            return;
        }
        let choice =
            if st.step < st.replay.len() { st.replay[st.step] } else { 0 }.min(runnable.len() - 1);
        st.chosen.push(choice);
        st.alts.push(runnable.len());
        st.active = runnable[choice];
        st.step += 1;
    }

    /// Waits (state lock held, released while parked) until this thread
    /// is the active one; unwinds if the execution failed meanwhile.
    fn wait_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, State> {
        while st.failure.is_none() && st.active != me {
            st = self.cv.wait(st).expect("scheduler state never poisons");
        }
        if st.failure.is_some() {
            drop(st);
            panic!("{ABANDONED}");
        }
        st
    }

    /// A scheduling point: chooses who advances next, then waits until
    /// this thread is chosen again.
    pub(crate) fn switch(&self, me: Tid) {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        self.decide(&mut st);
        self.cv.notify_all();
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Parks `me` as Blocked and hands the turn to someone else; returns
    /// once `me` is runnable *and* scheduled again. The caller must have
    /// registered `me` on the wait list that will wake it.
    fn park<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
        me: Tid,
    ) -> std::sync::MutexGuard<'a, State> {
        st.threads[me] = Run::Blocked;
        self.decide(&mut st);
        self.cv.notify_all();
        self.wait_turn(st, me)
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        st.mutexes.push(MutexSt::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        st.condvars.push(CvSt::default());
        st.condvars.len() - 1
    }

    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        st.threads.push(Run::Runnable);
        st.join_waiters.push(Vec::new());
        st.live += 1;
        st.threads.len() - 1
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().expect("handle list never poisons").push(h);
    }

    pub(crate) fn mutex_lock(&self, id: usize, me: Tid) {
        self.switch(me);
        let mut st = self.state.lock().expect("scheduler state never poisons");
        loop {
            if !st.mutexes[id].held {
                st.mutexes[id].held = true;
                return;
            }
            st.mutexes[id].waiters.push(me);
            st = self.park(st, me);
        }
    }

    /// Releases a mutex. Deliberately NOT a scheduling point: `drop` of
    /// a guard runs during unwinding too, and a panic there would abort
    /// the process; the next visible operation schedules instead, which
    /// explores the same set of distinguishable interleavings.
    pub(crate) fn mutex_unlock(&self, id: usize) {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        let state = &mut *st;
        state.mutexes[id].held = false;
        for w in state.mutexes[id].waiters.drain(..) {
            state.threads[w] = Run::Runnable;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Atomically releases the mutex and parks on the condvar; on
    /// wakeup, reacquires the mutex before returning.
    pub(crate) fn condvar_wait(&self, cv_id: usize, mutex_id: usize, me: Tid) {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        {
            let state = &mut *st;
            state.mutexes[mutex_id].held = false;
            for w in state.mutexes[mutex_id].waiters.drain(..) {
                state.threads[w] = Run::Runnable;
            }
            state.condvars[cv_id].waiters.push(me);
        }
        st = self.park(st, me);
        // Reacquire (same contended loop as `mutex_lock`, already
        // scheduled — no extra leading switch needed).
        loop {
            if !st.mutexes[mutex_id].held {
                st.mutexes[mutex_id].held = true;
                return;
            }
            st.mutexes[mutex_id].waiters.push(me);
            st = self.park(st, me);
        }
    }

    pub(crate) fn condvar_notify(&self, cv_id: usize, n: usize, me: Tid) {
        self.switch(me);
        let mut st = self.state.lock().expect("scheduler state never poisons");
        let state = &mut *st;
        let take = state.condvars[cv_id].waiters.len().min(n);
        for w in state.condvars[cv_id].waiters.drain(..take) {
            state.threads[w] = Run::Runnable;
        }
        drop(st);
        self.cv.notify_all();
    }

    pub(crate) fn join_wait(&self, child: Tid, me: Tid) {
        self.switch(me);
        let mut st = self.state.lock().expect("scheduler state never poisons");
        loop {
            if st.threads[child] == Run::Finished {
                return;
            }
            st.join_waiters[child].push(me);
            st = self.park(st, me);
        }
    }

    /// Marks a thread finished, recording its panic (if any) as the
    /// model failure unless one is already recorded.
    pub(crate) fn finish(&self, me: Tid, panic_msg: Option<String>) {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        let state = &mut *st;
        state.threads[me] = Run::Finished;
        state.live -= 1;
        for w in state.join_waiters[me].drain(..) {
            state.threads[w] = Run::Runnable;
        }
        if let Some(msg) = panic_msg {
            if state.failure.is_none() && msg != ABANDONED {
                state.failure = Some(format!("thread panicked: {msg} (schedule {:?})", state.chosen));
            }
        }
        if state.failure.is_none() {
            self.decide(state);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.state.lock().expect("scheduler state never poisons");
        while st.live > 0 {
            st = self.cv.wait(st).expect("scheduler state never poisons");
        }
    }
}

pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs one execution of the model under the given replay schedule.
/// Returns the choices taken, the branch widths, and any failure.
fn run_once<F>(f: &F, replay: Vec<usize>) -> (Vec<usize>, Vec<usize>, Option<String>)
where
    F: Fn() + Send + Sync,
{
    let sched = Arc::new(Scheduler::new(replay));
    set_current(sched.clone(), 0);
    let result = catch_unwind(AssertUnwindSafe(f));
    let msg = result.err().map(|p| payload_msg(p.as_ref()));
    sched.finish(0, msg);
    sched.wait_all_finished();
    for h in std::mem::take(&mut *sched.handles.lock().expect("handle list never poisons")) {
        let _ = h.join();
    }
    clear_current();
    let st = sched.state.lock().expect("scheduler state never poisons");
    (st.chosen.clone(), st.alts.clone(), st.failure.clone())
}

/// Explores every interleaving of the loom-wrapped concurrency inside
/// `f`, panicking on the first schedule that panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= MAX_ITERATIONS,
            "loom: model exceeded {MAX_ITERATIONS} executions — shrink the model \
             (fewer threads / operations); this shim has no partial-order reduction"
        );
        let (chosen, alts, failure) = run_once(&f, replay);
        if let Some(msg) = failure {
            panic!("loom: model failed after {iterations} execution(s): {msg}");
        }
        // Backtrack: bump the deepest choice with an unexplored sibling.
        let mut depth = chosen.len();
        loop {
            if depth == 0 {
                return; // schedule tree exhausted
            }
            depth -= 1;
            if chosen[depth] + 1 < alts[depth] {
                break;
            }
        }
        replay = chosen[..=depth].to_vec();
        replay[depth] += 1;
    }
}
