//! Modeled synchronization primitives.
//!
//! `Mutex` and `Condvar` mirror the `std::sync` API (including
//! `LockResult`, so call sites written against `std` compile unchanged)
//! but park and wake through the model scheduler instead of the OS.
//! Data inside a [`Mutex`] is safe to hand out because the scheduler
//! serializes execution: the guard holds the modeled lock, and no other
//! modeled thread runs while it would conflict.
//!
//! Atomics wrap the real `std` atomics and add a scheduling point
//! before every access; all accesses execute as `SeqCst` regardless of
//! the ordering argument (see the crate docs for this limitation).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, LockResult};

use crate::{current, Scheduler};

/// A modeled mutual-exclusion lock.
pub struct Mutex<T> {
    id: usize,
    sched: Arc<Scheduler>,
    data: UnsafeCell<T>,
}

// Safety: the scheduler runs exactly one modeled thread at a time, and
// `lock` blocks (in model time) until the modeled lock is free, so the
// data is never aliased mutably.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex registered with the current model execution.
    /// Panics outside `loom::model`.
    pub fn new(data: T) -> Mutex<T> {
        let (sched, _) = current();
        let id = sched.register_mutex();
        Mutex { id, sched, data: UnsafeCell::new(data) }
    }

    /// Acquires the lock, parking this thread (in model time) while a
    /// sibling holds it. Never returns `Err`: modeled mutexes do not
    /// poison — a panicking execution fails the whole model instead.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (sched, me) = current();
        debug_assert!(
            Arc::ptr_eq(&sched, &self.sched),
            "mutex used from a different model execution than it was created in"
        );
        sched.mutex_lock(self.id, me);
        Ok(MutexGuard { mutex: self })
    }

    /// Consumes the mutex, returning the inner data.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]; releases the modeled lock on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the modeled lock is held for the guard's lifetime.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above, plus `&mut self` gives unique guard access.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release is intentionally not a scheduling point (it must not
        // panic while unwinding); the scheduler wakes waiters here and
        // the next visible operation schedules.
        self.mutex.sched.mutex_unlock(self.mutex.id);
    }
}

/// A modeled condition variable.
pub struct Condvar {
    id: usize,
}

impl Condvar {
    /// Creates a condvar registered with the current model execution.
    /// Panics outside `loom::model`.
    pub fn new() -> Condvar {
        let (sched, _) = current();
        let id = sched.register_condvar();
        Condvar { id }
    }

    /// Releases the guard's mutex and parks until notified, then
    /// reacquires the mutex. No spurious wakeups in the model.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (sched, me) = current();
        let mutex = guard.mutex;
        // Hand release to the scheduler atomically with parking; the
        // guard's Drop must not run its own unlock on top of that.
        std::mem::forget(guard);
        sched.condvar_wait(self.id, mutex.id, me);
        Ok(MutexGuard { mutex })
    }

    /// Wakes one parked waiter (it still reacquires the mutex before
    /// its `wait` returns).
    pub fn notify_one(&self) {
        let (sched, me) = current();
        sched.condvar_notify(self.id, 1, me);
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        let (sched, me) = current();
        sched.condvar_notify(self.id, usize::MAX, me);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Modeled atomics: real `std` atomics with a scheduling point before
/// every access; every access runs `SeqCst` (orderings accepted for
/// API compatibility, not modeled).
pub mod atomic {
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! modeled_atomic {
        ($name:ident, $std:ty, $value:ty) => {
            /// Modeled atomic; see the module docs.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub fn new(value: $value) -> Self {
                    Self { inner: <$std>::new(value) }
                }

                pub fn load(&self, _order: Ordering) -> $value {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.load(SeqCst)
                }

                pub fn store(&self, value: $value, _order: Ordering) {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.store(value, SeqCst)
                }

                pub fn swap(&self, value: $value, _order: Ordering) -> $value {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.swap(value, SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    expected: $value,
                    new: $value,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$value, $value> {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.compare_exchange(expected, new, SeqCst, SeqCst)
                }
            }
        };
    }

    macro_rules! modeled_atomic_int {
        ($name:ident, $std:ty, $value:ty) => {
            modeled_atomic!($name, $std, $value);

            impl $name {
                pub fn fetch_add(&self, value: $value, _order: Ordering) -> $value {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.fetch_add(value, SeqCst)
                }

                pub fn fetch_sub(&self, value: $value, _order: Ordering) -> $value {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.fetch_sub(value, SeqCst)
                }

                pub fn fetch_or(&self, value: $value, _order: Ordering) -> $value {
                    let (sched, me) = crate::current();
                    sched.switch(me);
                    self.inner.fetch_or(value, SeqCst)
                }
            }
        };
    }

    modeled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    modeled_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    modeled_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    modeled_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    impl AtomicBool {
        pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
            let (sched, me) = crate::current();
            sched.switch(me);
            self.inner.fetch_or(value, SeqCst)
        }
    }
}
