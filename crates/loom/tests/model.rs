//! Self-tests for the model-checking shim: the explorer must *find*
//! planted concurrency bugs (otherwise a passing model proves nothing)
//! and must pass correct code on every interleaving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Mutex;

fn model_fails<F>(f: F) -> String
where
    F: Fn() + Send + Sync + 'static,
{
    let err = catch_unwind(AssertUnwindSafe(|| loom::model(f)))
        .expect_err("the model must find the planted bug");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic".into())
}

/// Two unsynchronized load-then-store increments: some schedule loses
/// one update, and the explorer must reach it.
#[test]
fn finds_a_lost_update() {
    let msg = model_fails(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure message: {msg}");
}

/// Classic ABBA: lock order inverted across threads. Some schedule
/// deadlocks, and the explorer must report it rather than hang.
#[test]
fn finds_an_abba_deadlock() {
    let msg = model_fails(|| {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

/// The fixed version of the lost update (fetch_add) passes on every
/// interleaving.
#[test]
fn passes_an_atomic_increment() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

/// Mutex-guarded increments never lose updates, on every interleaving.
#[test]
fn passes_a_mutex_counter() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let c = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            *c.lock().unwrap() += 1;
        });
        *counter.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

/// Condvar handoff: the waiter only proceeds once the flag is set; no
/// interleaving hangs (the model's deadlock detector would fire) or
/// observes the flag unset after wakeup.
#[test]
fn passes_a_condvar_handoff() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), loom::sync::Condvar::new()));
        let p = Arc::clone(&pair);
        let t = loom::thread::spawn(move || {
            let (flag, cv) = &*p;
            let mut set = flag.lock().unwrap();
            *set = true;
            drop(set);
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        let mut set = flag.lock().unwrap();
        while !*set {
            set = cv.wait(set).unwrap();
        }
        assert!(*set);
        drop(set);
        t.join().unwrap();
    });
}

/// A panic on a child thread surfaces as a model failure with the
/// child's message, not a hang or a silent pass.
#[test]
fn reports_a_child_panic() {
    let msg = model_fails(|| {
        let t = loom::thread::spawn(|| panic!("child exploded"));
        let _ = t.join();
    });
    assert!(msg.contains("child exploded"), "unexpected failure message: {msg}");
}
