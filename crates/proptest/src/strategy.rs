//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike the real `proptest`, generation is direct (no value trees, no
/// shrinking): a strategy is just a deterministic function of the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be nonempty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })*
    };
}
impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
