//! A minimal, dependency-free property-testing shim exposing the subset of
//! the `proptest` crate's surface this workspace uses, so the test suite
//! builds without network access to a crates registry.
//!
//! Supported: integer range strategies, tuple strategies, [`any`],
//! [`strategy::Just`], `prop_oneof!`, `prop_map`/`prop_flat_map`,
//! [`collection::vec`], [`ProptestConfig::with_cases`], the `proptest!`
//! macro and the `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (no persistence files, no environment
//! overrides) and failing cases are reported without shrinking — the
//! failing inputs are printed as-is.

pub mod collection;
pub mod strategy;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, ProptestConfig};
}

use std::marker::PhantomData;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic case generator (SplitMix64 over a per-test seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator for one named test case: the stream depends
    /// only on the test path and case index, so failures reproduce.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Types with a canonical "generate anything" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T` (`any::<bool>()`, …).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the current inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} == {:?}`", left, right,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{} (`{:?}` != `{:?}`)", ::std::format!($($fmt)+), left, right,
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?} != {:?}`", left, right,
            ));
        }
    }};
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let inputs = ::std::format!(
                        ::std::concat!($("\n  ", ::std::stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        ::std::panic!(
                            "property failed on case {}/{}: {}\ninputs:{}",
                            case + 1, config.cases, message, inputs,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_path() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = crate::TestRng::for_case("range", 0);
        for _ in 0..1000 {
            let v = (2u8..6).generate(&mut rng);
            assert!((2..6).contains(&v));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::for_case("combo", 0);
        let strategy = (0usize..4, any::<bool>())
            .prop_flat_map(|(n, flag)| {
                crate::collection::vec(0u64..10, n..n + 1)
                    .prop_map(move |v| (flag, v))
            });
        for _ in 0..200 {
            let (_, v) = strategy.generate(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_picks_only_listed_values() {
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let strategy = prop_oneof![Just(1u8), Just(8u8)];
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v == 1 || v == 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_asserts(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let doubled = x * 2;
            prop_assert_eq!(doubled % 2, 0, "doubling keeps parity for {}", x);
            if flag {
                prop_assert_ne!(doubled + 1, doubled);
            }
        }
    }
}
