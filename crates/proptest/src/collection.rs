//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}
