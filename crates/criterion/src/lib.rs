//! A minimal, dependency-free benchmarking shim exposing the subset of
//! the `criterion` crate's surface this workspace uses, so `cargo bench`
//! builds without network access to a crates registry.
//!
//! Each benchmark runs a small fixed number of timed samples and prints
//! the mean wall-clock time per iteration. There is no statistical
//! analysis, warm-up tuning, or HTML report — the point is keeping every
//! benchmarked code path compiling and runnable offline.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 3 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { _parent: self, name: name.to_string(), samples }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.clamp(1, 10);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.samples, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the benchmarked routine (mirrors `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one execution of `routine`, accumulating into the sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    for _ in 0..samples.max(1) {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!("bench: {name:<50} {per_iter:>12.3?}/iter ({} iters)", bencher.iterations);
}

/// Declares a benchmark group function (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may invoke harness-less bench binaries with
            // `--test`; benchmarks are then skipped to keep test runs fast.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_sample_size_is_respected() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2);
            group.bench_function(String::from("inner"), |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 2);
    }
}
