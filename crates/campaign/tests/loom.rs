//! Exhaustive interleaving checks for the campaign's two shared
//! structures, run under the vendored loom shim:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release -p inpg-campaign --test loom
//! ```
//!
//! Under `--cfg loom`, [`inpg_campaign::deque`] switches its mutexes to
//! `loom::sync::Mutex`, so the *production* claiming code runs under
//! the model scheduler — these are not reimplementations of the logic
//! under test. The admission queue needs no switch: it is a plain
//! structure guarded by whatever mutex the caller provides, and here
//! that is a modeled one.
//!
//! Models are deliberately tiny (2–3 threads, a handful of operations):
//! the shim explores the schedule tree exhaustively with no
//! partial-order reduction, so state must stay small. Every invariant
//! asserted here holds on *every* interleaving, not just the ones a
//! stress test happens to hit.

#![cfg(loom)]

use std::collections::BTreeSet;
use std::sync::Arc;

use inpg_campaign::admission::Admission;
use inpg_campaign::deque::StealDeques;
use loom::sync::Mutex;

/// The race the deques exist to survive: the owner LIFO-pops its own
/// deque while a sibling FIFO-steals from the same deque's other end.
/// On every interleaving, each task index must be claimed exactly once
/// and nothing may be lost — the pool writes each result into a
/// dedicated slot, so a double claim would double-execute a cell and a
/// lost index would leave a slot empty (`unreachable!` in the engine).
#[test]
fn owner_pop_and_sibling_steal_claim_each_index_exactly_once() {
    loom::model(|| {
        // 4 tasks, 2 workers → chunk = ceil(ceil(4/2)/4) = 1, so worker
        // 0's claims pull one index at a time and the injector stays
        // contended for the whole model.
        let work = Arc::new(StealDeques::new(4, 2));
        let w = Arc::clone(&work);
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            // Worker 1 never claims from the injector in this model: it
            // only steals, maximizing overlap with worker 0's pops.
            while let Some(i) = w.steal(1) {
                got.push(i);
            }
            got
        });
        let mut own = Vec::new();
        while let Some(i) = work.next_for(0) {
            own.push(i);
        }
        let stolen = thief.join().unwrap();

        let mut all = own.clone();
        all.extend(stolen.iter().copied());
        let unique: BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "an index was claimed twice: {all:?}");
        // The owner drains the injector even if the thief exits early,
        // so together they always account for every index.
        assert_eq!(unique, (0..4).collect(), "an index was lost: {all:?}");
    });
}

/// Round-robin admission under concurrent submitters and a draining
/// worker. On every interleaving: nothing is lost or duplicated,
/// per-connection FIFO order survives, and the flooding connection
/// cannot make the worker pop it twice in a row while another
/// connection has work queued (the no-starvation property the cursor
/// exists for).
#[test]
fn admission_is_fair_and_lossless_under_concurrent_submit_and_pop() {
    loom::model(|| {
        let adm = Arc::new(Mutex::new(Admission::<u64>::default()));
        // Connection 1 floods two jobs (values 10, 11 — FIFO-ordered);
        // connection 2 submits one (value 20).
        let a = Arc::clone(&adm);
        let flooder = loom::thread::spawn(move || {
            a.lock().unwrap().push(1, 10);
            a.lock().unwrap().push(1, 11);
        });
        let a = Arc::clone(&adm);
        let other = loom::thread::spawn(move || {
            a.lock().unwrap().push(2, 20);
        });
        // The worker pops exactly twice, concurrently with the
        // submitters (no polling loop: the schedule tree must stay
        // finite). Alongside each pop, record whether the *other*
        // connection still had queued work — that is what makes the
        // fairness check schedule-independent.
        let mut popped = Vec::new();
        for _ in 0..2 {
            let mut q = adm.lock().unwrap();
            if let Some(v) = q.pop_next() {
                popped.push((v, q.queued()));
            }
        }
        flooder.join().unwrap();
        other.join().unwrap();

        // Drain the remainder single-threaded.
        let mut rest = Vec::new();
        {
            let mut q = adm.lock().unwrap();
            while let Some(v) = q.pop_next() {
                rest.push(v);
            }
            assert_eq!(q.queued(), 0);
            assert!(!q.has_queues(), "empty queues are garbage-collected");
        }

        let mut all: Vec<u64> = popped.iter().map(|&(v, _)| v).collect();
        all.extend(rest.iter().copied());
        // Conservation: all three jobs surface exactly once.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 20], "lost or duplicated job: {all:?}");
        // Per-connection FIFO: 10 before 11 in the combined pop order.
        let pos = |v: u64| all.iter().position(|&x| x == v).unwrap();
        assert!(pos(10) < pos(11), "connection 1's FIFO order broken: {all:?}");
        // No-starvation: consecutive concurrent pops may both come from
        // connection 1 only if connection 2 had nothing queued between
        // them. `queued` recorded at pop time tells us: if the first
        // pop saw 2 remaining jobs, both connections were populated, so
        // the second pop must switch connections.
        if let [(first, remaining), (second, _)] = popped[..] {
            if remaining == 2 {
                let conn = |v: u64| v / 10;
                assert_ne!(
                    conn(first),
                    conn(second),
                    "round-robin violated with both connections non-empty: {popped:?}"
                );
            }
        }
    });
}

/// A drain racing a submitter: whatever the interleaving, every pushed
/// job ends up in exactly one of the drained set or the queue's
/// remainder — the daemon relies on this to journal queued cells
/// without losing or double-journaling any.
#[test]
fn drain_races_with_submit_without_losing_jobs() {
    loom::model(|| {
        let adm = Arc::new(Mutex::new(Admission::<u64>::default()));
        let a = Arc::clone(&adm);
        let submitter = loom::thread::spawn(move || {
            a.lock().unwrap().push(1, 1);
            a.lock().unwrap().push(2, 2);
        });
        let drained = adm.lock().unwrap().drain_all();
        submitter.join().unwrap();
        let rest = adm.lock().unwrap().drain_all();

        let mut all = drained.clone();
        all.extend(rest.iter().copied());
        all.sort_unstable();
        assert_eq!(all, vec![1, 2], "drain lost or duplicated a job");
    });
}
