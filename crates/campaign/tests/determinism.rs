//! End-to-end determinism guarantees of the campaign engine: the merged
//! artifact is byte-identical across worker counts and cache states, a
//! warm cache executes nothing, and a corrupted cache entry is
//! quarantined and re-run rather than trusted.

use inpg::Mechanism;
use inpg_campaign::{execute, Campaign, CellConfig, ExecOptions};
use std::path::PathBuf;

/// Splits a merged artifact into its cell body and its trailing footer
/// line. The body is a pure function of the campaign definition; the
/// footer additionally reports what cache corruption the producing run
/// encountered, so runs that differ only in encountered corruption have
/// identical bodies and differing footers.
fn body_and_footer(path: &PathBuf) -> (String, String) {
    let text = std::fs::read_to_string(path).unwrap();
    let trimmed = text.strip_suffix('\n').expect("artifact ends with a newline");
    let (body, footer) =
        trimmed.rsplit_once('\n').expect("artifact has at least body and footer");
    assert!(footer.contains("\"footer\":true"), "last line is the footer: {footer}");
    (body.to_string(), footer.to_string())
}

fn tiny_campaign() -> Campaign {
    let mut c = Campaign::new("tiny");
    for mechanism in Mechanism::ALL {
        for rounds in [2u64, 3] {
            let mut cfg = CellConfig::hot_lock(rounds, 80, 30);
            cfg.mechanism = mechanism;
            cfg.width = 4;
            cfg.height = 4;
            cfg.max_cycles = 5_000_000;
            c.push(format!("{mechanism}/r{rounds}"), cfg);
        }
    }
    c
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("inpg-determinism-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(workers: usize, cache: Option<PathBuf>, merged: PathBuf) -> ExecOptions {
    let mut o = ExecOptions::quiet();
    o.workers = workers;
    o.cache = cache;
    o.merged_out = Some(merged);
    o
}

#[test]
fn merged_artifact_is_byte_identical_across_worker_counts() {
    let dir = scratch("workers");
    let campaign = tiny_campaign();
    let mut artifacts = Vec::new();
    for workers in [1usize, 8] {
        let merged = dir.join(format!("w{workers}.jsonl"));
        let report = execute(&campaign, &opts(workers, None, merged.clone())).unwrap();
        assert_eq!(report.executed, campaign.cells.len());
        assert_eq!(report.cached, 0);
        assert!(report.incomplete().is_empty());
        artifacts.push(std::fs::read(&merged).unwrap());
    }
    assert!(!artifacts[0].is_empty());
    assert_eq!(
        artifacts[0], artifacts[1],
        "1-worker and 8-worker merged artifacts must match byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_executes_zero_cells_and_reproduces_the_artifact() {
    let dir = scratch("warm");
    let cache = dir.join("cache");
    let campaign = tiny_campaign();

    let cold_merged = dir.join("cold.jsonl");
    let cold =
        execute(&campaign, &opts(4, Some(cache.clone()), cold_merged.clone())).unwrap();
    assert_eq!(cold.executed, campaign.cells.len());

    let warm_merged = dir.join("warm.jsonl");
    let warm =
        execute(&campaign, &opts(4, Some(cache.clone()), warm_merged.clone())).unwrap();
    assert_eq!(warm.executed, 0, "a warm cache must execute nothing");
    assert_eq!(warm.cached, campaign.cells.len());
    assert!(warm.outcomes.iter().all(|o| o.cached && o.fresh.is_none()));

    assert_eq!(
        std::fs::read(&cold_merged).unwrap(),
        std::fs::read(&warm_merged).unwrap(),
        "cold and warm merged artifacts must match byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entry_is_detected_and_rerun() {
    let dir = scratch("corrupt");
    let cache_dir = dir.join("cache");
    let campaign = tiny_campaign();

    let cold_merged = dir.join("cold.jsonl");
    execute(&campaign, &opts(2, Some(cache_dir.clone()), cold_merged.clone())).unwrap();

    // Flip a payload digit inside one entry: its record hash no longer
    // checks out, so the engine must re-run exactly that cell.
    let victim = &campaign.cells[3];
    let entry_path = cache_dir.join(format!("{}.json", victim.config.content_hash()));
    let text = std::fs::read_to_string(&entry_path).unwrap();
    let tampered = text.replacen("\"roi_cycles\":", "\"roi_cycles\":9", 1);
    assert_ne!(text, tampered);
    std::fs::write(&entry_path, tampered).unwrap();

    let again_merged = dir.join("again.jsonl");
    let again =
        execute(&campaign, &opts(2, Some(cache_dir.clone()), again_merged.clone())).unwrap();
    assert_eq!(again.executed, 1, "only the corrupted cell re-runs");
    assert_eq!(again.cached, campaign.cells.len() - 1);
    assert_eq!(again.quarantined, 1, "the tampered entry was quarantined");
    assert!(again.summary_line().contains("1 quarantined"), "{}", again.summary_line());
    let rerun = again.outcome(&victim.label).unwrap();
    assert!(!rerun.cached);

    // The tampered bytes were moved aside for inspection, not deleted.
    let quarantined_entry = cache_dir
        .join("quarantine")
        .join(format!("{}.json", victim.config.content_hash()));
    assert!(quarantined_entry.exists(), "quarantine keeps the corrupt bytes");

    // The cell body is reproduced byte for byte; only the footer's
    // corruption tally may differ between the runs.
    let (cold_body, cold_footer) = body_and_footer(&cold_merged);
    let (again_body, again_footer) = body_and_footer(&again_merged);
    assert_eq!(cold_body, again_body, "the re-run must reproduce the cell body");
    assert!(cold_footer.contains("\"quarantined\":0"), "{cold_footer}");
    assert!(again_footer.contains("\"quarantined\":1"), "{again_footer}");

    // And the store-back repaired the entry: a third run is fully warm
    // and its artifact (footer included) matches the cold one again.
    let third_merged = dir.join("3.jsonl");
    let third =
        execute(&campaign, &opts(2, Some(cache_dir), third_merged.clone())).unwrap();
    assert_eq!(third.executed, 0);
    assert_eq!(third.quarantined, 0);
    assert_eq!(
        std::fs::read(&cold_merged).unwrap(),
        std::fs::read(&third_merged).unwrap(),
        "a repaired cache reproduces the artifact byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_bitflipped_cache_entries_are_demoted_to_misses() {
    let dir = scratch("mangle");
    let cache_dir = dir.join("cache");
    let campaign = tiny_campaign();

    let cold_merged = dir.join("cold.jsonl");
    execute(&campaign, &opts(2, Some(cache_dir.clone()), cold_merged.clone())).unwrap();

    // Two distinct corruption modes on two distinct entries: a
    // mid-write crash leaves a truncated file, and disk rot flips a
    // raw bit. Neither may be served from cache.
    let truncated = &campaign.cells[1];
    let path = cache_dir.join(format!("{}.json", truncated.config.content_hash()));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let flipped = &campaign.cells[5];
    let path = cache_dir.join(format!("{}.json", flipped.config.content_hash()));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let again_merged = dir.join("again.jsonl");
    let again =
        execute(&campaign, &opts(2, Some(cache_dir.clone()), again_merged.clone())).unwrap();
    assert_eq!(again.executed, 2, "both mangled cells re-run");
    assert_eq!(again.cached, campaign.cells.len() - 2);
    assert_eq!(again.quarantined, 2, "both corruption modes are quarantined");
    assert!(!again.outcome(&truncated.label).unwrap().cached);
    assert!(!again.outcome(&flipped.label).unwrap().cached);

    // Cell bodies reproduce byte for byte; the footers report the tally.
    let (cold_body, cold_footer) = body_and_footer(&cold_merged);
    let (again_body, again_footer) = body_and_footer(&again_merged);
    assert_eq!(cold_body, again_body, "the re-runs must reproduce the cell body");
    assert!(cold_footer.contains("\"quarantined\":0"), "{cold_footer}");
    assert!(again_footer.contains("\"quarantined\":2"), "{again_footer}");

    // Store-back repaired both entries: a third run is fully warm and
    // byte-identical to the cold artifact, footer included.
    let third_merged = dir.join("3.jsonl");
    let third =
        execute(&campaign, &opts(2, Some(cache_dir), third_merged.clone())).unwrap();
    assert_eq!(third.executed, 0);
    assert_eq!(
        std::fs::read(&cold_merged).unwrap(),
        std::fs::read(&third_merged).unwrap(),
        "a repaired cache reproduces the artifact byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_orphaned_tmp_from_a_writer_killed_mid_store_is_swept_and_harmless() {
    let dir = scratch("orphan-tmp");
    let cache_dir = dir.join("cache");
    let campaign = tiny_campaign();

    let cold_merged = dir.join("cold.jsonl");
    execute(&campaign, &opts(2, Some(cache_dir.clone()), cold_merged.clone())).unwrap();

    // A writer SIGKILLed mid-store leaves a half-written `.tmp` that
    // never got renamed into place. Simulate one next to a real entry.
    let victim = &campaign.cells[2];
    let entry = cache_dir.join(format!("{}.json", victim.config.content_hash()));
    let bytes = std::fs::read(&entry).unwrap();
    let orphan = cache_dir.join(format!(
        ".{}.99999.tmp",
        victim.config.content_hash()
    ));
    std::fs::write(&orphan, &bytes[..bytes.len() / 3]).unwrap();

    let again_merged = dir.join("again.jsonl");
    let again =
        execute(&campaign, &opts(2, Some(cache_dir.clone()), again_merged.clone())).unwrap();
    assert_eq!(again.executed, 0, "the orphan never shadows the real entry");
    assert_eq!(again.quarantined, 0, "an orphaned tmp is debris, not corruption");
    assert!(!orphan.exists(), "startup GC must collect the orphan");
    assert!(entry.exists(), "the committed entry must survive the sweep");
    assert_eq!(
        std::fs::read(&cold_merged).unwrap(),
        std::fs::read(&again_merged).unwrap(),
        "the swept run reproduces the artifact byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_configs_execute_once_and_share_the_record() {
    let mut campaign = tiny_campaign();
    let clone_of = campaign.cells[1].clone();
    campaign.push("alias-of-cell-1", clone_of.config.clone());

    let report = execute(&campaign, &ExecOptions::quiet()).unwrap();
    assert_eq!(report.executed, campaign.cells.len() - 1, "the alias must not execute");
    assert_eq!(report.cached, 1);
    let owner = report.outcome(&clone_of.label).unwrap();
    let alias = report.outcome("alias-of-cell-1").unwrap();
    assert!(!owner.cached);
    assert!(alias.cached);
    assert_eq!(owner.record, alias.record);
    assert_eq!(owner.hash, alias.hash);
}

#[test]
fn timeline_cells_always_run_fresh() {
    let mut campaign = Campaign::new("timeline");
    let mut cfg = CellConfig::benchmark("freq");
    cfg.width = 4;
    cfg.height = 4;
    cfg.scale = 0.02;
    cfg.record_timeline = true;
    campaign.push("freq/timeline", cfg);

    let dir = scratch("timeline");
    let cache = dir.join("cache");
    for _ in 0..2 {
        let report =
            execute(&campaign, &opts(2, Some(cache.clone()), dir.join("m.jsonl"))).unwrap();
        assert_eq!(report.executed, 1, "uncacheable cells execute every run");
        let outcome = report.outcome("freq/timeline").unwrap();
        let fresh = outcome.fresh.as_ref().expect("fresh result present");
        assert!(fresh.timeline.is_some(), "timeline recorded");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panicking_cell_is_reported_and_excluded_deterministically() {
    // An unknown benchmark name panics inside the pool task; the
    // campaign must survive, report the failure, and keep the merged
    // artifact byte-identical across worker counts without it.
    let dir = scratch("panic");
    let mut campaign = Campaign::new("poisoned");
    for rounds in [2u64, 3] {
        let mut cfg = CellConfig::hot_lock(rounds, 80, 30);
        cfg.width = 4;
        cfg.height = 4;
        cfg.max_cycles = 5_000_000;
        campaign.push(format!("good/r{rounds}"), cfg);
    }
    campaign.push("bad/benchmark", CellConfig::benchmark("no-such-benchmark"));

    let mut artifacts = Vec::new();
    for workers in [1usize, 4] {
        let merged = dir.join(format!("w{workers}.jsonl"));
        let report = execute(&campaign, &opts(workers, None, merged.clone())).unwrap();
        assert_eq!(report.executed, 2, "the good cells still run");
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].label, "bad/benchmark");
        assert!(
            report.failed[0].reason.contains("no-such-benchmark"),
            "reason carries the panic message: {}",
            report.failed[0].reason
        );
        assert!(report.outcome("bad/benchmark").is_none(), "failed cell has no outcome");
        assert!(report.summary_line().contains("1 FAILED"), "{}", report.summary_line());
        let text = std::fs::read(&merged).unwrap();
        assert!(
            !String::from_utf8_lossy(&text).contains("bad/benchmark"),
            "failed cell excluded from the merged artifact"
        );
        artifacts.push(text);
    }
    assert_eq!(artifacts[0], artifacts[1], "artifacts match despite the failure");
    let _ = std::fs::remove_dir_all(&dir);
}
