//! End-to-end tests of the campaign service: a real `inpg serve`
//! process per daemon (spawned from `CARGO_BIN_EXE_inpg`), driven over
//! its TCP wire protocol.
//!
//! The headline guarantees under test:
//!
//! * deadlines are typed timeouts, not wedged workers;
//! * the admission bound sheds honestly with a retry hint;
//! * a graceful drain journals queued cells, and a restarted daemon
//!   finishes the campaign with a byte-identical merged artifact;
//! * SIGKILLing one of two daemons sharing a cache mid-campaign loses
//!   nothing: the client fails over, a replacement daemon sweeps the
//!   victim's debris, and the merged artifact is byte-identical to an
//!   uninterrupted run — with zero unquarantined corrupt entries.

use inpg::Mechanism;
use inpg_campaign::submit::{self, AddrSource, SubmitOptions};
use inpg_campaign::{
    run_adaptive, AdaptiveCampaign, AdaptiveOptions, Campaign, CellConfig, EngineRunner,
    ExecOptions, HeadlineMetric, Notification, Reply, Request, ServiceRunner,
};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("inpg-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A quick cell (~hundreds of ms at these dimensions).
fn quick_cell(mechanism: Mechanism, rounds: u64) -> CellConfig {
    let mut cfg = CellConfig::hot_lock(rounds, 80, 30);
    cfg.mechanism = mechanism;
    cfg.width = 4;
    cfg.height = 4;
    cfg.max_cycles = 5_000_000;
    cfg
}

/// A cell that runs long enough to straddle any deadline or drain the
/// tests impose (it is always aborted or killed, never awaited).
fn slow_cell(seed: u64) -> CellConfig {
    let mut cfg = CellConfig::hot_lock(50_000, 200, 100);
    cfg.width = 8;
    cfg.height = 8;
    cfg.max_cycles = u64::MAX / 2;
    cfg.seed = seed;
    cfg
}

fn tiny_campaign() -> Campaign {
    let mut c = Campaign::new("serve-tiny");
    for mechanism in Mechanism::ALL {
        for rounds in [2u64, 3] {
            c.push(format!("{mechanism}/r{rounds}"), quick_cell(mechanism, rounds));
        }
    }
    c
}

/// One daemon process plus the paths that identify it.
struct Daemon {
    child: Child,
    addr_file: PathBuf,
}

impl Daemon {
    fn spawn(addr_file: &Path, cache: &Path, journal: &Path, extra: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_inpg"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--addr-file")
            .arg(addr_file)
            .arg("--cache-dir")
            .arg(cache)
            .arg("--journal")
            .arg(journal)
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn inpg serve");
        Daemon { child, addr_file: addr_file.to_path_buf() }
    }

    fn source(&self) -> AddrSource {
        AddrSource::File(self.addr_file.clone())
    }

    /// Polls until the daemon published its address and answers a ping.
    fn wait_ready(&mut self) {
        for _ in 0..600 {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                panic!("daemon exited during startup: {status}");
            }
            if let Ok(addr) = self.source().resolve() {
                if let Ok(Reply::Pong) = submit::request(&addr, &Request::Ping) {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon never became ready");
    }

    /// SIGKILL — the crash the service must survive.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks for a graceful drain and asserts the process exits 0.
    fn drain_and_wait(mut self) {
        submit::shutdown(&self.source()).expect("shutdown request");
        let status = self.child.wait().expect("wait");
        assert!(status.success(), "a drained daemon must exit 0, got {status}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Every `.tmp` file anywhere under `dir` (non-recursive is enough for
/// the flat cache layout, but walk one level into subdirectories too).
fn stray_tmp_files(dir: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                found.push(path);
            }
        }
    }
    found
}

fn quarantined_entries(cache: &Path) -> usize {
    std::fs::read_dir(cache.join("quarantine"))
        .map(|entries| entries.count())
        .unwrap_or(0)
}

#[test]
fn a_cell_over_its_deadline_times_out_without_wedging_the_pool() {
    let dir = scratch("deadline");
    let mut daemon = Daemon::spawn(
        &dir.join("addr"),
        &dir.join("cache"),
        &dir.join("journal.jsonl"),
        &["--workers", "1"],
    );
    daemon.wait_ready();
    let addr = daemon.source().resolve().unwrap();

    // A cell that would run for minutes, with a 100ms deadline: the
    // daemon must answer with a *typed* timeout, not hang or panic.
    let reply = submit::request(
        &addr,
        &Request::Submit { config: slow_cell(1), deadline_ms: Some(100) },
    )
    .expect("submit over-deadline cell");
    match reply {
        Reply::Timeout { detail } => {
            assert!(detail.contains("deadline"), "typed timeout names the deadline: {detail}");
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }

    // The single worker was reclaimed by the abort: an ordinary cell
    // submitted afterwards completes on it.
    let config = quick_cell(Mechanism::Original, 2);
    let reply = submit::request(
        &addr,
        &Request::Submit { config: config.clone(), deadline_ms: None },
    )
    .expect("submit ordinary cell");
    match reply {
        Reply::Result { hash, cached, .. } => {
            assert_eq!(hash, config.content_hash());
            assert!(!cached, "first execution cannot be a hit");
        }
        other => panic!("the pool is wedged: expected a result, got {other:?}"),
    }

    // The same cell again is a warm hit served from the verified cache.
    let reply = submit::request(
        &addr,
        &Request::Submit { config: config.clone(), deadline_ms: None },
    )
    .expect("resubmit cached cell");
    match reply {
        Reply::Result { cached, wall_nanos, .. } => {
            assert!(cached, "second submission must be a cache hit");
            assert_eq!(wall_nanos, 0, "hits report no execution time");
        }
        other => panic!("expected a cached result, got {other:?}"),
    }

    match submit::request(&addr, &Request::Status).expect("status") {
        Reply::Status(status) => {
            assert_eq!(status.timeouts, 1, "{status:?}");
            assert_eq!(status.misses, 1, "{status:?}");
            assert_eq!(status.hits, 1, "{status:?}");
            assert!(!status.draining, "{status:?}");
        }
        other => panic!("expected status, got {other:?}"),
    }

    daemon.drain_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overflowing_the_admission_queue_is_shed_with_retry_after() {
    let dir = scratch("backpressure");
    let mut daemon = Daemon::spawn(
        &dir.join("addr"),
        &dir.join("cache"),
        &dir.join("journal.jsonl"),
        &["--workers", "1", "--queue-capacity", "1"],
    );
    daemon.wait_ready();
    let addr = daemon.source().resolve().unwrap();

    // Occupy the single worker, then the single queue slot, from
    // background connections that will simply die with the daemon.
    // Staggered: the second submit may only go out once the first is
    // actually *running* (otherwise both would contend for the one
    // queue slot and the second would be shed before saturation).
    let wait_for = |in_flight: u64, queued: u64| {
        for _ in 0..400 {
            if let Ok(Reply::Status(s)) = submit::request(&addr, &Request::Status) {
                if s.in_flight == in_flight && s.queued == queued {
                    return;
                }
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon never reached {in_flight} in-flight + {queued} queued");
    };
    for (seed, queued_after) in [(10u64, 0u64), (11, 1)] {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let _ = submit::request(
                &addr,
                &Request::Submit { config: slow_cell(seed), deadline_ms: None },
            );
        });
        wait_for(1, queued_after);
    }

    // The next submit must be shed with an honest retry hint, not
    // buffered without bound and not blocked.
    let reply = submit::request(
        &addr,
        &Request::Submit { config: slow_cell(12), deadline_ms: None },
    )
    .expect("submit over the bound");
    match reply {
        Reply::Overloaded { retry_after_ms } => {
            assert!(retry_after_ms >= 1, "a usable backoff hint: {retry_after_ms}");
        }
        other => panic!("expected overloaded, got {other:?}"),
    }
    match submit::request(&addr, &Request::Status).expect("status") {
        Reply::Status(status) => assert_eq!(status.rejected, 1, "{status:?}"),
        other => panic!("expected status, got {other:?}"),
    }

    // The occupying cells run for minutes by design; SIGKILL, as a
    // crashing daemon is part of the service's threat model anyway.
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_journal_restart_reproduces_the_uninterrupted_artifact() {
    let dir = scratch("drain-soak");
    let campaign = tiny_campaign();

    // Arm 1 — uninterrupted: one daemon, fresh cache, full campaign.
    let base_merged = dir.join("base.jsonl");
    {
        let mut daemon = Daemon::spawn(
            &dir.join("addr-base"),
            &dir.join("cache-base"),
            &dir.join("journal-base.jsonl"),
            &["--workers", "2"],
        );
        daemon.wait_ready();
        let report = submit::run_campaign(
            &campaign,
            None,
            &SubmitOptions {
                daemons: vec![daemon.source()],
                workers: 4,
                merged_out: Some(base_merged.clone()),
                ..SubmitOptions::default()
            },
        )
        .expect("uninterrupted campaign");
        assert_eq!(report.executed + report.hits, campaign.cells.len());
        daemon.drain_and_wait();
    }

    // Arm 2 — interrupted: a 1-worker daemon is gracefully drained
    // mid-campaign; queued cells land in the journal; a replacement
    // daemon on the same addr-file/journal/cache picks everything up
    // while the client fails over to it transparently.
    let addr_file = dir.join("addr-soak");
    let cache = dir.join("cache-soak");
    let journal = dir.join("journal-soak.jsonl");
    let mut daemon = Daemon::spawn(&addr_file, &cache, &journal, &["--workers", "1"]);
    daemon.wait_ready();
    let interrupter = {
        let (addr_file, cache, journal) = (addr_file.clone(), cache.clone(), journal.clone());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(600));
            daemon.drain_and_wait();
            let mut replacement =
                Daemon::spawn(&addr_file, &cache, &journal, &["--workers", "2"]);
            replacement.wait_ready();
            replacement
        })
    };

    let soak_merged = dir.join("soak.jsonl");
    let report = submit::run_campaign(
        &campaign,
        None,
        &SubmitOptions {
            daemons: vec![AddrSource::File(addr_file.clone())],
            workers: 4,
            max_attempts: 120,
            merged_out: Some(soak_merged.clone()),
            ..SubmitOptions::default()
        },
    )
    .expect("interrupted campaign must still complete");
    assert_eq!(report.executed + report.hits, campaign.cells.len());
    let replacement = interrupter.join().expect("interrupter thread");

    assert_eq!(
        std::fs::read(&base_merged).unwrap(),
        std::fs::read(&soak_merged).unwrap(),
        "drain + restart must reproduce the merged artifact byte for byte"
    );
    assert!(stray_tmp_files(&cache).is_empty(), "no .tmp debris after the soak");
    assert_eq!(quarantined_entries(&cache), 0, "no corrupt entries were produced");

    // The replacement drains clean: nothing queued, so no journal left.
    replacement.drain_and_wait();
    assert!(!journal.exists(), "an empty drain leaves no journal behind");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_one_of_two_daemons_mid_campaign_is_survivable_and_deterministic() {
    let dir = scratch("kill-soak");
    let campaign = tiny_campaign();

    // Arm 1 — uninterrupted baseline (fresh cache, single daemon).
    let base_merged = dir.join("base.jsonl");
    {
        let mut daemon = Daemon::spawn(
            &dir.join("addr-base"),
            &dir.join("cache-base"),
            &dir.join("journal-base.jsonl"),
            &["--workers", "2"],
        );
        daemon.wait_ready();
        submit::run_campaign(
            &campaign,
            None,
            &SubmitOptions {
                daemons: vec![daemon.source()],
                workers: 4,
                merged_out: Some(base_merged.clone()),
                ..SubmitOptions::default()
            },
        )
        .expect("baseline campaign");
        daemon.drain_and_wait();
    }

    // Arm 2 — two daemons sharing one cache; daemon A is SIGKILLed
    // mid-campaign and replaced; the client shards across both and
    // fails over around the crash.
    let cache = dir.join("cache-shared");
    let addr_a = dir.join("addr-a");
    let addr_b = dir.join("addr-b");
    let journal_a = dir.join("journal-a.jsonl");
    let journal_b = dir.join("journal-b.jsonl");
    let mut daemon_a = Daemon::spawn(&addr_a, &cache, &journal_a, &["--workers", "1"]);
    let mut daemon_b = Daemon::spawn(&addr_b, &cache, &journal_b, &["--workers", "1"]);
    daemon_a.wait_ready();
    daemon_b.wait_ready();

    let killer = {
        let (addr_a, cache, journal_a) = (addr_a.clone(), cache.clone(), journal_a.clone());
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(500));
            daemon_a.kill();
            // The replacement sweeps whatever `.tmp` debris the SIGKILL
            // left in the shared cache as it starts.
            let mut replacement =
                Daemon::spawn(&addr_a, &cache, &journal_a, &["--workers", "1"]);
            replacement.wait_ready();
            replacement
        })
    };

    let soak_merged = dir.join("soak.jsonl");
    let report = submit::run_campaign(
        &campaign,
        None,
        &SubmitOptions {
            daemons: vec![AddrSource::File(addr_a.clone()), AddrSource::File(addr_b.clone())],
            workers: 4,
            max_attempts: 120,
            merged_out: Some(soak_merged.clone()),
            ..SubmitOptions::default()
        },
    )
    .expect("campaign must survive a SIGKILLed daemon");
    assert_eq!(report.executed + report.hits, campaign.cells.len());
    assert_eq!(report.quarantined, 0, "a torn .tmp is debris, never a cache entry");
    let replacement = killer.join().expect("killer thread");

    assert_eq!(
        std::fs::read(&base_merged).unwrap(),
        std::fs::read(&soak_merged).unwrap(),
        "SIGKILL + restart must reproduce the merged artifact byte for byte"
    );
    replacement.drain_and_wait();
    daemon_b.drain_and_wait();
    assert!(
        stray_tmp_files(&cache).is_empty(),
        "no .tmp debris survives the crash and restart"
    );
    assert_eq!(quarantined_entries(&cache), 0, "zero unquarantined corrupt entries");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_cache_miss_streams_queued_running_done_notes_in_order() {
    let dir = scratch("notes");
    let mut daemon = Daemon::spawn(
        &dir.join("addr"),
        &dir.join("cache"),
        &dir.join("journal.jsonl"),
        &["--workers", "1"],
    );
    daemon.wait_ready();
    let addr = daemon.source().resolve().unwrap();

    let config = quick_cell(Mechanism::Original, 2);
    let hash = config.content_hash();
    let mut notes: Vec<Notification> = Vec::new();
    let reply = submit::request_streaming(
        &addr,
        &Request::Submit { config: config.clone(), deadline_ms: None },
        |note| notes.push(note.clone()),
    )
    .expect("submit a miss");
    match &reply {
        Reply::Result { cached, .. } => assert!(!cached, "first execution is a miss"),
        other => panic!("expected a result, got {other:?}"),
    }
    match &notes[..] {
        [
            Notification::Queued { hash: h0, ahead: 0 },
            Notification::Running { hash: h1 },
            Notification::Done { hash: h2, wall_nanos },
        ] => {
            assert_eq!(h0, &hash);
            assert_eq!(h1, &hash);
            assert_eq!(h2, &hash);
            assert!(*wall_nanos > 0, "done carries the execution time");
        }
        other => panic!("expected queued -> running -> done, got {other:?}"),
    }

    // A warm hit is answered inline: no advisory notes at all.
    let mut hit_notes = 0usize;
    let reply = submit::request_streaming(
        &addr,
        &Request::Submit { config, deadline_ms: None },
        |_| hit_notes += 1,
    )
    .expect("resubmit the cached cell");
    match reply {
        Reply::Result { cached, .. } => assert!(cached),
        other => panic!("expected a cached result, got {other:?}"),
    }
    assert_eq!(hit_notes, 0, "cache hits stay single-line");

    daemon.drain_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn adaptive_over_two_daemons_matches_the_engine_byte_for_byte() {
    let dir = scratch("adaptive");
    let mut campaign = AdaptiveCampaign::new("serve-adaptive");
    for mechanism in Mechanism::ALL {
        campaign.push(
            format!("hot/{mechanism}"),
            quick_cell(mechanism, 2),
            HeadlineMetric::CsAccessTime,
        );
    }
    let opts = |merged: PathBuf| AdaptiveOptions {
        ci_target: 0.5,
        min_seeds: 3,
        seed_budget: 5,
        merged_out: Some(merged),
        progress: false,
    };

    // Arm 1 — the in-process engine.
    let engine_merged = dir.join("engine.jsonl");
    let mut exec = ExecOptions::quiet();
    exec.workers = 4;
    exec.cache = Some(dir.join("cache-engine"));
    let engine_report =
        run_adaptive(&campaign, &opts(engine_merged.clone()), &EngineRunner { exec })
            .expect("engine-backed adaptive run");

    // Arm 2 — the same campaign sharded across two daemons with a
    // shared cache of their own.
    let cache = dir.join("cache-serve");
    let mut daemon_a =
        Daemon::spawn(&dir.join("addr-a"), &cache, &dir.join("journal-a.jsonl"), &[
            "--workers", "1",
        ]);
    let mut daemon_b =
        Daemon::spawn(&dir.join("addr-b"), &cache, &dir.join("journal-b.jsonl"), &[
            "--workers", "1",
        ]);
    daemon_a.wait_ready();
    daemon_b.wait_ready();
    let serve_merged = dir.join("serve.jsonl");
    let serve_report = run_adaptive(
        &campaign,
        &opts(serve_merged.clone()),
        &ServiceRunner {
            opts: SubmitOptions {
                daemons: vec![daemon_a.source(), daemon_b.source()],
                workers: 4,
                ..SubmitOptions::default()
            },
        },
    )
    .expect("daemon-backed adaptive run");

    assert_eq!(
        std::fs::read(&engine_merged).unwrap(),
        std::fs::read(&serve_merged).unwrap(),
        "engine and two-daemon adaptive artifacts must match byte for byte"
    );
    assert_eq!(engine_report.kept(), serve_report.kept());
    assert_eq!(engine_report.converged(), serve_report.converged());
    for (e, s) in engine_report.groups.iter().zip(&serve_report.groups) {
        assert_eq!(e.label, s.label);
        assert_eq!(e.n_seeds, s.n_seeds, "group {} stopping counts differ", e.label);
        assert_eq!(e.mean.to_bits(), s.mean.to_bits(), "group {} means differ", e.label);
    }

    daemon_a.drain_and_wait();
    daemon_b.drain_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}
