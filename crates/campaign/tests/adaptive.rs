//! End-to-end guarantees of the adaptive (sequential-analysis)
//! campaign: the stopping count is a pure function of the campaign
//! definition, so the merged artifact is byte-identical across worker
//! counts and cache states; convergence stops below the seed budget;
//! budget exhaustion is reported, not fatal.

use inpg::Mechanism;
use inpg_campaign::{
    run_adaptive, AdaptiveCampaign, AdaptiveOptions, AdaptiveReport, EngineRunner,
    ExecOptions, HeadlineMetric,
};
use std::path::PathBuf;

/// Two hot-lock groups on a 4×4 mesh: cheap enough for debug-mode CI,
/// deterministic per seed, with real seed-to-seed variance in the
/// headline metric (the seed perturbs arrival jitter).
fn tiny_adaptive() -> AdaptiveCampaign {
    let mut c = AdaptiveCampaign::new("tiny-adaptive");
    for mechanism in Mechanism::ALL {
        let mut cfg = inpg_campaign::CellConfig::hot_lock(2, 80, 30);
        cfg.mechanism = mechanism;
        cfg.width = 4;
        cfg.height = 4;
        cfg.max_cycles = 5_000_000;
        c.push(format!("hot/{mechanism}"), cfg, HeadlineMetric::CsAccessTime);
    }
    c
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("inpg-adaptive-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn runner(workers: usize, cache: Option<PathBuf>) -> EngineRunner {
    let mut exec = ExecOptions::quiet();
    exec.workers = workers;
    exec.cache = cache;
    EngineRunner { exec }
}

fn opts(ci_target: f64, seed_budget: u64, merged: PathBuf) -> AdaptiveOptions {
    AdaptiveOptions {
        ci_target,
        min_seeds: 3,
        seed_budget,
        merged_out: Some(merged),
        progress: false,
    }
}

fn run(
    campaign: &AdaptiveCampaign,
    workers: usize,
    cache: Option<PathBuf>,
    ci_target: f64,
    seed_budget: u64,
    merged: PathBuf,
) -> AdaptiveReport {
    run_adaptive(campaign, &opts(ci_target, seed_budget, merged), &runner(workers, cache))
        .unwrap()
}

#[test]
fn adaptive_artifact_is_byte_identical_across_worker_counts() {
    let dir = scratch("workers");
    let campaign = tiny_adaptive();
    let mut artifacts = Vec::new();
    for workers in [1usize, 8] {
        let merged = dir.join(format!("w{workers}.jsonl"));
        let report = run(&campaign, workers, None, 0.5, 6, merged.clone());
        assert_eq!(report.groups.len(), campaign.groups.len());
        artifacts.push(std::fs::read(&merged).unwrap());
    }
    assert!(!artifacts[0].is_empty());
    assert_eq!(
        artifacts[0], artifacts[1],
        "1-worker and 8-worker adaptive artifacts must match byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_reruns_execute_nothing_and_reproduce_the_artifact() {
    let dir = scratch("warm");
    let cache = dir.join("cache");
    let campaign = tiny_adaptive();

    let cold_merged = dir.join("cold.jsonl");
    let cold = run(&campaign, 4, Some(cache.clone()), 0.5, 6, cold_merged.clone());
    assert!(cold.executed > 0, "a cold run must execute replicas");

    let warm_merged = dir.join("warm.jsonl");
    let warm = run(&campaign, 2, Some(cache), 0.5, 6, warm_merged.clone());
    assert_eq!(warm.executed, 0, "a warm cache must execute nothing");
    assert_eq!(warm.cached, warm.scheduled);
    assert!(warm.summary_line().contains("(0 executed"), "{}", warm.summary_line());

    assert_eq!(
        std::fs::read(&cold_merged).unwrap(),
        std::fs::read(&warm_merged).unwrap(),
        "cold and warm adaptive artifacts must match byte for byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convergence_stops_below_the_seed_budget() {
    // A loose target is met at min_seeds, well under the budget — the
    // whole point of the subsystem: fewer replicas than the equivalent
    // fixed-count superset (groups × budget).
    let campaign = tiny_adaptive();
    let report = run(&campaign, 4, None, 10.0, 12, scratch("below").join("m.jsonl"));
    assert_eq!(report.converged(), report.groups.len(), "every group converges");
    let superset = campaign.groups.len() * 12;
    assert!(
        report.scheduled < superset,
        "adaptive resolved {} replicas; the fixed superset is {superset}",
        report.scheduled
    );
    for g in &report.groups {
        assert_eq!(g.n_seeds, 3, "a loose target stops at min_seeds");
        assert!(g.converged);
        assert!(g.rel_ci95().expect("ci defined") <= 10.0);
        assert_eq!(g.replicas.len() as u64, g.n_seeds);
    }
}

#[test]
fn budget_exhaustion_is_reported_not_fatal() {
    // A negative target is finite but unreachable (relative half-widths
    // are non-negative), forcing every group to its budget.
    let campaign = tiny_adaptive();
    let report = run(&campaign, 4, None, -1.0, 4, scratch("budget").join("m.jsonl"));
    assert_eq!(report.converged(), 0);
    assert_eq!(report.scheduled, campaign.groups.len() * 4);
    for g in &report.groups {
        assert!(!g.converged);
        assert_eq!(g.n_seeds, 4, "unconverged groups stop exactly at the budget");
    }
}

#[test]
fn artifact_lines_carry_the_estimate_and_the_adaptive_footer() {
    let dir = scratch("fields");
    let merged = dir.join("m.jsonl");
    let campaign = tiny_adaptive();
    let report = run(&campaign, 2, None, 0.5, 6, merged.clone());

    let text = std::fs::read_to_string(&merged).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // One line per kept replica, one summary line per group, one footer.
    assert_eq!(lines.len(), report.kept() + report.groups.len() + 1);

    for g in &report.groups {
        let summary = lines
            .iter()
            .find(|l| l.contains(&format!("\"group\":\"{}\"", g.label)))
            .expect("per-group summary line present");
        for field in ["\"metric\":", "\"mean\":", "\"ci95\":", "\"n_seeds\":", "\"converged\":"]
        {
            assert!(summary.contains(field), "{summary} lacks {field}");
        }
        // Every kept replica appears, in index order, under its
        // replica label.
        for (i, r) in g.replicas.iter().enumerate() {
            assert_eq!(r.label, format!("{}/r{i:03}", g.label));
            assert!(
                lines.iter().any(|l| l.contains(&format!("\"label\":\"{}\"", r.label))),
                "replica {} missing from the artifact",
                r.label
            );
        }
    }
    let footer = lines.last().unwrap();
    assert!(footer.contains("\"footer\":true"), "{footer}");
    assert!(footer.contains("\"mode\":\"adaptive\""), "{footer}");
    assert!(footer.contains("\"ci_target\":"), "{footer}");
    assert!(footer.contains("\"seed_budget\":"), "{footer}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_tighter_target_keeps_at_least_as_many_replicas() {
    // Monotonicity of the stopping rule in the target: tightening the
    // CI requirement can only demand more seeds per group.
    let dir = scratch("mono");
    let cache = dir.join("cache");
    let campaign = tiny_adaptive();
    let loose = run(&campaign, 4, Some(cache.clone()), 1.0, 8, dir.join("loose.jsonl"));
    let tight = run(&campaign, 4, Some(cache), 0.01, 8, dir.join("tight.jsonl"));
    for (l, t) in loose.groups.iter().zip(&tight.groups) {
        assert_eq!(l.label, t.label);
        assert!(
            t.n_seeds >= l.n_seeds,
            "group {}: tight target kept {} < loose {}",
            l.label,
            t.n_seeds,
            l.n_seeds
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
