//! Minimal JSON value, writer and parser (the build environment has no
//! registry access, so `serde` is not an option).
//!
//! Two properties matter for the campaign engine and are guaranteed
//! here:
//!
//! 1. **Stable serialization** — objects keep insertion order, numbers
//!    print via Rust's shortest-roundtrip `Display`, so serializing the
//!    same value twice yields identical bytes.
//! 2. **Exact roundtrip** — `parse(serialize(v)) == v` for every value
//!    the engine emits (unsigned integers stay `u64`, floats stay
//!    bit-exact thanks to shortest-roundtrip printing, non-finite
//!    floats are written as `null` and read back as NaN).
//!
//! Together these make a cached cell record re-serialize to exactly the
//! bytes a fresh run would produce, which is what lets warm-cache and
//! cold-cache campaigns emit byte-identical merged artifacts.

use std::fmt;

/// A JSON value. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integer (the common case for simulator counters; kept
    /// apart from `Num` so u64 counters roundtrip without f64 loss).
    UInt(u64),
    /// Signed integer that did not fit the unsigned arm.
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, keeping order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A float value; non-finite floats serialize as `null`.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as f64 (integers widen; `null` reads as NaN, matching
    /// the writer's encoding of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization (stable: see module docs).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(n) => out.push_str(&n.to_string()),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Num(n) => {
            if n.is_finite() {
                // Shortest-roundtrip Display; force a fractional part so
                // the value parses back into the `Num` arm, not `UInt`.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.i, msg: msg.to_string() }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.b.get(self.i) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let value = self.value()?;
                    fields.push((key, value));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // engine's own artifacts; reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(c);
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let mut fractional = false;
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a value"));
        }
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { at: start, msg: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.to_string_compact();
        let back = parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, v, "{text}");
        assert_eq!(back.to_string_compact(), text, "second serialization differs");
    }

    #[test]
    fn roundtrips_scalars_and_containers() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::UInt(u64::MAX));
        roundtrip(&Json::Int(-42));
        roundtrip(&Json::Num(0.1 + 0.2));
        roundtrip(&Json::Num(1.5e300));
        roundtrip(&Json::Str("quo\"te \\ line\nüñî".into()));
        roundtrip(&Json::Arr(vec![Json::UInt(1), Json::Null, Json::Str("x".into())]));
        roundtrip(&Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Arr(vec![Json::Num(2.5)])),
        ]));
    }

    #[test]
    fn whole_floats_stay_floats_across_roundtrip() {
        // 3.0 must not come back as UInt(3): the record schema relies
        // on floats staying floats for byte-stable re-serialization.
        roundtrip(&Json::Num(3.0));
        assert_eq!(Json::Num(3.0).to_string_compact(), "3.0");
    }

    #[test]
    fn non_finite_floats_write_null_and_read_nan() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        let v = parse("null").unwrap();
        assert!(v.as_f64().unwrap().is_nan());
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("z"), Some(&Json::UInt(1)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"open", "tru", "1 2", "{\"a\" 1}", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse("\"s\"").unwrap().as_str(), Some("s"));
        assert_eq!(parse("[1]").unwrap().as_arr().map(<[Json]>::len), Some(1));
    }
}
