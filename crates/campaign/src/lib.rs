//! `inpg-campaign`: the declarative experiment-campaign engine.
//!
//! A campaign is an enumerable set of independent experiment cells in a
//! canonical order. Each cell is keyed by a stable content hash of its
//! full configuration; results live in an on-disk content-addressed
//! cache, so re-runs are incremental and interrupted campaigns resume
//! where they stopped. Cache misses execute on a hand-rolled, std-only
//! work-stealing thread pool, and the merged artifact is emitted in
//! canonical cell order — a 1-worker run, an N-worker run, and a
//! warm-cache run produce byte-identical merged output.
//!
//! Module map:
//!
//! * [`cell`] — cell configs, records, content hashing.
//! * [`suites`] — the named cell sets (one per paper figure + smoke).
//! * [`cache`] — the on-disk content-addressed result cache.
//! * [`deque`] — the work-stealing deques (loom-model-checked).
//! * [`pool`] — the work-stealing pool built on them.
//! * [`admission`] — the round-robin admission queue (loom-model-checked).
//! * [`engine`] — cache resolution, pooled execution, canonical merge.
//! * [`clock`] — the only wall-clock site in the crate.
//! * [`bench_out`] — `BENCH_campaign.json` emission.
//! * [`json`] — the hand-rolled canonical JSON used throughout.
//!
//! The campaign *service* (PR 8) keeps the pool resident between runs:
//!
//! * [`protocol`] — the newline-delimited JSON wire protocol.
//! * [`serve`] — the daemon: deadlines, backpressure, graceful drain.
//! * [`journal`] — the crash-safe drain journal of unfinished cells.
//! * [`submit`] — the client: sharding, failover, canonical merge.
//!
//! Sequential analysis (PR 10) runs seeds to confidence, not to a count:
//!
//! * [`adaptive`] — the adaptive controller: per-group seed streams,
//!   Welford/Student-t stopping rule, prefix-deterministic artifacts,
//!   backed by either the engine or the daemon fleet.

pub mod adaptive;
pub mod admission;
pub mod bench_out;
pub mod cache;
pub mod cell;
pub mod clock;
pub mod deque;
pub mod engine;
pub mod journal;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod serve;
pub mod submit;
pub mod suites;

pub use adaptive::{
    run_adaptive, AdaptiveCampaign, AdaptiveError, AdaptiveGroup, AdaptiveOptions,
    AdaptiveReport, EngineRunner, HeadlineMetric, ReplicaRunner, ServiceRunner,
};
pub use cache::{CacheMiss, ResultCache};
pub use cell::{Campaign, CellConfig, CellRecord, CellSpec, CellWorkload};
pub use engine::{
    execute, CampaignError, CampaignReport, CellOutcome, ExecOptions, FailedCell,
};
pub use protocol::{Notification, Reply, Request, ServerLine, ServiceStatus};
pub use serve::ServeOptions;
pub use submit::{AddrSource, SubmitError, SubmitOptions, SubmitReport};
