//! `BENCH_campaign.json` — the structured perf trajectory of the
//! harness itself.
//!
//! One file accumulates one entry per `(campaign, workers, resume,
//! cold)` combination — `cold` meaning every cell actually executed —
//! newest run replacing the previous entry for the same combination,
//! so a warm rerun never clobbers the cold timing it would be compared
//! against. Each entry records suite wall time, executed/cached
//! cell counts, total simulated cycles, suite throughput, per-cell wall
//! time and throughput, and — when the file also holds a full cold run
//! of the same campaign at `--workers 1` — the measured speedup over
//! that single-worker run.

use crate::adaptive::AdaptiveReport;
use crate::engine::CampaignReport;
use crate::json::{self, Json};
use crate::submit::SubmitReport;
use std::io;
use std::path::Path;

/// Merges `report` into the bench file at `path` (created if absent).
/// Returns the entry that was written.
pub fn write_bench_json(path: &Path, report: &CampaignReport) -> io::Result<Json> {
    let mut runs: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => json::parse(&text)
            .ok()
            .and_then(|v| v.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
            .unwrap_or_default(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    // Drop the previous entry for this (campaign, workers, resume, cold).
    let report_cold = report.executed == report.outcomes.len() && report.executed > 0;
    runs.retain(|r| {
        let r_cold = r.get("cells").and_then(Json::as_u64)
            == r.get("executed").and_then(Json::as_u64)
            && r.get("executed").and_then(Json::as_u64).unwrap_or(0) > 0;
        !(r.get("campaign").and_then(Json::as_str) == Some(report.name.as_str())
            && r.get("workers").and_then(Json::as_u64) == Some(report.workers as u64)
            && r.get("resume").and_then(Json::as_bool) == Some(report.resume)
            && r_cold == report_cold)
    });

    let entry = entry_json(report, baseline_wall_ms(&runs, report));
    runs.push(entry.clone());

    let doc = Json::obj(vec![
        ("schema", Json::UInt(1)),
        ("runs", Json::Arr(runs)),
    ]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_string_compact() + "\n")?;
    Ok(entry)
}

/// Merges a service-mode (`inpg submit`) run into the bench file at
/// `path`. Service entries are keyed `(mode: "serve", campaign)` — the
/// newest run replaces the previous serve entry for the same campaign
/// and coexists with the in-process engine's `(workers, resume, cold)`
/// entries, which carry no `mode` field. Returns the entry written.
pub fn write_serve_bench_json(path: &Path, report: &SubmitReport) -> io::Result<Json> {
    let mut runs: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => json::parse(&text)
            .ok()
            .and_then(|v| v.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
            .unwrap_or_default(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    runs.retain(|r| {
        !(r.get("mode").and_then(Json::as_str) == Some("serve")
            && r.get("campaign").and_then(Json::as_str) == Some(report.name.as_str()))
    });

    let quantile = |q: f64| report.hit_latency_ms(q).map_or(Json::Null, Json::num);
    let entry = Json::obj(vec![
        ("campaign", Json::Str(report.name.clone())),
        ("mode", Json::Str("serve".into())),
        ("daemons", Json::UInt(report.daemons as u64)),
        ("cells", Json::UInt(report.cells as u64)),
        ("executed", Json::UInt(report.executed as u64)),
        ("hits", Json::UInt(report.hits as u64)),
        ("quarantined", Json::UInt(report.quarantined)),
        ("wall_ms", Json::num(report.wall_nanos as f64 / 1e6)),
        // Client-measured service latency of warm cache hits: the
        // daemon's headline number (connect + request + verified cache
        // read + reply).
        ("warm_hit_p50_ms", quantile(0.5)),
        ("warm_hit_p99_ms", quantile(0.99)),
    ]);
    runs.push(entry.clone());

    let doc = Json::obj(vec![
        ("schema", Json::UInt(1)),
        ("runs", Json::Arr(runs)),
    ]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_string_compact() + "\n")?;
    Ok(entry)
}

/// Wall time of a prior *full cold* 1-worker run of the same campaign,
/// the denominator for the reported speedup.
fn baseline_wall_ms(runs: &[Json], report: &CampaignReport) -> Option<f64> {
    runs.iter()
        .filter(|r| {
            r.get("campaign").and_then(Json::as_str) == Some(report.name.as_str())
                && r.get("workers").and_then(Json::as_u64) == Some(1)
                && r.get("cells").and_then(Json::as_u64)
                    == r.get("executed").and_then(Json::as_u64)
                && r.get("executed").and_then(Json::as_u64).unwrap_or(0) > 0
        })
        .filter_map(|r| r.get("wall_ms").and_then(Json::as_f64))
        .next_back()
}

fn entry_json(report: &CampaignReport, baseline_wall_ms: Option<f64>) -> Json {
    let wall_ms = report.wall_nanos as f64 / 1e6;
    let full_cold = report.executed == report.outcomes.len() && report.executed > 0;
    // Speedups only compare full cold executions; a warm run's wall
    // time measures the cache, not the pool. When no 1-worker baseline
    // run is on file, the sum of this run's own per-cell wall times is
    // an honest serial-execution estimate (what 1 worker would have
    // spent executing, scheduling overhead excluded) — better than
    // emitting null until someone reruns the whole suite at --workers 1.
    let (speedup, basis) = match baseline_wall_ms {
        Some(base) if full_cold && wall_ms > 0.0 => {
            (Json::num(base / wall_ms), Json::Str("measured-1-worker".into()))
        }
        None if full_cold && wall_ms > 0.0 => {
            let serial_ms =
                report.outcomes.iter().map(|o| o.wall_nanos).sum::<u64>() as f64 / 1e6;
            (
                Json::num(serial_ms / wall_ms),
                Json::Str("derived-per-cell-serial".into()),
            )
        }
        _ => (Json::Null, Json::Null),
    };
    let cells_detail: Vec<Json> = report
        .outcomes
        .iter()
        .map(|o| {
            let cps = if o.wall_nanos == 0 {
                Json::Null
            } else {
                Json::num(o.record.roi_cycles as f64 * 1e9 / o.wall_nanos as f64)
            };
            Json::obj(vec![
                ("cell", Json::Str(o.spec.label.clone())),
                ("hash", Json::Str(o.hash.clone())),
                ("cached", Json::Bool(o.cached)),
                ("sim_cycles", Json::UInt(o.record.roi_cycles)),
                ("wall_ms", Json::num(o.wall_nanos as f64 / 1e6)),
                ("sim_cycles_per_sec", cps),
            ])
        })
        .collect();
    Json::obj(vec![
        ("campaign", Json::Str(report.name.clone())),
        ("workers", Json::UInt(report.workers as u64)),
        ("resume", Json::Bool(report.resume)),
        ("cells", Json::UInt(report.outcomes.len() as u64)),
        ("executed", Json::UInt(report.executed as u64)),
        ("cached", Json::UInt(report.cached as u64)),
        ("wall_ms", Json::num(wall_ms)),
        ("sim_cycles", Json::UInt(report.sim_cycles())),
        ("sim_cycles_per_sec", Json::num(report.sim_cycles_per_sec())),
        ("speedup_vs_workers_1", speedup),
        ("speedup_baseline", basis),
        ("cells_detail", Json::Arr(cells_detail)),
    ])
}

/// Merges an adaptive (`--adaptive`) run into the bench file at `path`.
/// Adaptive entries are keyed `(mode: "adaptive", campaign, backend)` —
/// one entry per campaign per backend (`"engine"` for the in-process
/// pool, `"serve"` for the daemon fleet), newest replacing previous.
/// Returns the entry written.
pub fn write_adaptive_bench_json(
    path: &Path,
    report: &AdaptiveReport,
    backend: &str,
) -> io::Result<Json> {
    let mut runs: Vec<Json> = match std::fs::read_to_string(path) {
        Ok(text) => json::parse(&text)
            .ok()
            .and_then(|v| v.get("runs").and_then(Json::as_arr).map(<[Json]>::to_vec))
            .unwrap_or_default(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    runs.retain(|r| {
        !(r.get("mode").and_then(Json::as_str) == Some("adaptive")
            && r.get("campaign").and_then(Json::as_str) == Some(report.name.as_str())
            && r.get("backend").and_then(Json::as_str) == Some(backend))
    });

    let groups_detail: Vec<Json> = report
        .groups
        .iter()
        .map(|g| {
            Json::obj(vec![
                ("group", Json::Str(g.label.clone())),
                ("metric", Json::Str(g.metric.name().to_string())),
                ("mean", Json::num(g.mean)),
                ("ci95", g.ci95.map_or(Json::Null, Json::num)),
                ("n_seeds", Json::UInt(g.n_seeds)),
                ("converged", Json::Bool(g.converged)),
            ])
        })
        .collect();
    let entry = Json::obj(vec![
        ("campaign", Json::Str(report.name.clone())),
        ("mode", Json::Str("adaptive".into())),
        ("backend", Json::Str(backend.to_string())),
        ("groups", Json::UInt(report.groups.len() as u64)),
        ("converged", Json::UInt(report.converged() as u64)),
        ("ci_target", Json::num(report.ci_target)),
        ("seed_budget", Json::UInt(report.seed_budget)),
        ("replicas_kept", Json::UInt(report.kept() as u64)),
        ("replicas_scheduled", Json::UInt(report.scheduled as u64)),
        ("executed", Json::UInt(report.executed as u64)),
        ("cached", Json::UInt(report.cached as u64)),
        ("wall_ms", Json::num(report.wall_nanos as f64 / 1e6)),
        ("groups_detail", Json::Arr(groups_detail)),
    ]);
    runs.push(entry.clone());

    let doc = Json::obj(vec![
        ("schema", Json::UInt(1)),
        ("runs", Json::Arr(runs)),
    ]);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_string_compact() + "\n")?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, CellRecord, CellSpec};
    use crate::engine::CellOutcome;
    use std::path::PathBuf;

    fn fake_report_resume(
        workers: usize,
        executed_all: bool,
        resume: bool,
        wall_nanos: u64,
    ) -> CampaignReport {
        let config = CellConfig::benchmark("freq");
        let result = {
            let mut c = CellConfig::hot_lock(1, 40, 20);
            c.width = 2;
            c.height = 2;
            c.max_cycles = 1_000_000;
            c.to_experiment().run().expect("valid")
        };
        let record = CellRecord::from_result(&result);
        let outcome = CellOutcome {
            spec: CellSpec { label: "only".into(), config: config.clone() },
            hash: config.content_hash(),
            record,
            fresh: None,
            cached: !executed_all,
            wall_nanos: if executed_all { wall_nanos } else { 0 },
        };
        CampaignReport {
            name: "t".into(),
            outcomes: vec![outcome],
            workers,
            resume,
            executed: usize::from(executed_all),
            cached: usize::from(!executed_all),
            failed: Vec::new(),
            quarantined: 0,
            wall_nanos,
        }
    }

    fn fake_report(workers: usize, executed_all: bool, wall_nanos: u64) -> CampaignReport {
        fake_report_resume(workers, executed_all, !executed_all, wall_nanos)
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("inpg-bench-test-{}-{tag}.json", std::process::id()))
    }

    #[test]
    fn accumulates_and_reports_speedup_vs_one_worker() {
        let path = tmp_path("speedup");
        let _ = std::fs::remove_file(&path);

        // 1-worker cold run: no recorded baseline yet, so the per-cell
        // wall times stand in (serial sum == total here → speedup 1.0).
        let entry = write_bench_json(&path, &fake_report(1, true, 8_000_000_000)).unwrap();
        let speedup = entry.get("speedup_vs_workers_1").and_then(Json::as_f64).unwrap();
        assert!((speedup - 1.0).abs() < 1e-9, "{speedup}");
        assert_eq!(
            entry.get("speedup_baseline").and_then(Json::as_str),
            Some("derived-per-cell-serial")
        );

        // 4-worker cold run: speedup vs the recorded 1-worker wall time.
        let entry = write_bench_json(&path, &fake_report(4, true, 2_000_000_000)).unwrap();
        let speedup = entry.get("speedup_vs_workers_1").and_then(Json::as_f64).unwrap();
        assert!((speedup - 4.0).abs() < 1e-9, "{speedup}");
        assert_eq!(
            entry.get("speedup_baseline").and_then(Json::as_str),
            Some("measured-1-worker")
        );

        // Warm (all-cached) run: wall time measures the cache, no speedup.
        let entry = write_bench_json(&path, &fake_report(4, false, 1_000_000)).unwrap();
        assert_eq!(entry.get("speedup_vs_workers_1"), Some(&Json::Null));
        assert_eq!(entry.get("speedup_baseline"), Some(&Json::Null));

        // Re-running a combination replaces its entry instead of duplicating.
        write_bench_json(&path, &fake_report(4, true, 1_000_000_000)).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 3, "1w cold, 4w cold (replaced), 4w warm");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_warm_rerun_keeps_the_cold_entry_it_is_compared_against() {
        let path = tmp_path("warm-keeps-cold");
        let _ = std::fs::remove_file(&path);

        // The CLI default is --resume in both runs: cold (nothing cached
        // yet) then warm. The warm entry must coexist with the cold one,
        // not replace it.
        write_bench_json(&path, &fake_report_resume(1, true, true, 8_000_000_000)).unwrap();
        let cold = write_bench_json(&path, &fake_report_resume(4, true, true, 2_000_000_000))
            .unwrap();
        assert!(cold.get("speedup_vs_workers_1").and_then(Json::as_f64).unwrap().is_finite());
        write_bench_json(&path, &fake_report_resume(4, false, true, 1_000_000)).unwrap();

        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 3, "1w cold, 4w cold, 4w warm");
        let cold_kept = runs.iter().any(|r| {
            r.get("workers").and_then(Json::as_u64) == Some(4)
                && r.get("executed").and_then(Json::as_u64) == Some(1)
        });
        assert!(cold_kept, "warm rerun clobbered the cold 4-worker entry");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_entries_replace_their_own_kind_and_keep_engine_entries() {
        let path = tmp_path("serve");
        let _ = std::fs::remove_file(&path);

        // An engine entry first (no `mode` field on it).
        write_bench_json(&path, &fake_report(4, true, 2_000_000_000)).unwrap();

        let serve_report = |p50_pool: &[u64], wall: u64| SubmitReport {
            name: "t".into(),
            cells: 3,
            hits: p50_pool.len(),
            executed: 3 - p50_pool.len(),
            daemons: 2,
            quarantined: 0,
            wall_nanos: wall,
            latencies_nanos: p50_pool.to_vec(),
            hit_latencies_nanos: p50_pool.to_vec(),
        };
        let entry =
            write_serve_bench_json(&path, &serve_report(&[2_000_000, 4_000_000], 9_000_000))
                .unwrap();
        assert_eq!(entry.get("mode").and_then(Json::as_str), Some("serve"));
        let p50 = entry.get("warm_hit_p50_ms").and_then(Json::as_f64).unwrap();
        assert!((p50 - 4.0).abs() < 1e-9, "nearest-rank p50 of [2ms,4ms] is 4ms: {p50}");

        // A rerun replaces the serve entry, not the engine one.
        write_serve_bench_json(&path, &serve_report(&[1_000_000], 5_000_000)).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "one engine entry + one serve entry");
        assert!(runs.iter().any(|r| r.get("workers").and_then(Json::as_u64) == Some(4)));

        // And the engine writer leaves the serve entry alone.
        write_bench_json(&path, &fake_report(4, true, 1_000_000_000)).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert!(
            runs.iter().any(|r| r.get("mode").and_then(Json::as_str) == Some("serve")),
            "engine rerun must not drop the serve entry"
        );

        // A hit-less serve run reports null latency quantiles.
        let entry = write_serve_bench_json(&path, &serve_report(&[], 5_000_000)).unwrap();
        assert_eq!(entry.get("warm_hit_p50_ms"), Some(&Json::Null));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adaptive_entries_are_keyed_by_campaign_and_backend() {
        use crate::adaptive::{GroupSummary, HeadlineMetric};

        let path = tmp_path("adaptive");
        let _ = std::fs::remove_file(&path);

        // An engine entry first; adaptive entries must coexist with it.
        write_bench_json(&path, &fake_report(4, true, 2_000_000_000)).unwrap();

        let report = |wall: u64| AdaptiveReport {
            name: "t".into(),
            groups: vec![GroupSummary {
                label: "g".into(),
                metric: HeadlineMetric::RoiCycles,
                mean: 1000.0,
                ci95: Some(30.0),
                n_seeds: 4,
                converged: true,
                replicas: Vec::new(),
            }],
            ci_target: 0.05,
            seed_budget: 16,
            scheduled: 5,
            executed: 3,
            cached: 2,
            wall_nanos: wall,
        };
        let entry = write_adaptive_bench_json(&path, &report(9_000_000), "engine").unwrap();
        assert_eq!(entry.get("mode").and_then(Json::as_str), Some("adaptive"));
        assert_eq!(entry.get("replicas_kept").and_then(Json::as_u64), Some(4));
        let detail = entry.get("groups_detail").and_then(Json::as_arr).unwrap();
        assert_eq!(detail[0].get("n_seeds").and_then(Json::as_u64), Some(4));

        // A serve-backed adaptive run coexists; an engine rerun replaces
        // only its own entry.
        write_adaptive_bench_json(&path, &report(7_000_000), "serve").unwrap();
        write_adaptive_bench_json(&path, &report(5_000_000), "engine").unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 3, "engine fixed + adaptive engine + adaptive serve");
        assert!(runs.iter().any(|r| r.get("workers").and_then(Json::as_u64) == Some(4)));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn survives_a_garbage_existing_file() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        write_bench_json(&path, &fake_report(2, true, 1_000_000_000)).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("runs").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        let _ = std::fs::remove_file(&path);
    }
}
