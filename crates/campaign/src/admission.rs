//! The round-robin admission queue: one FIFO per connection key,
//! served round-robin so a flooding connection cannot starve others.
//!
//! Extracted from [`serve`](crate::serve) as a *generic* structure with
//! no locking of its own: the daemon guards it with its admission
//! mutex, and the loom model (`tests/loom.rs`) guards it with a modeled
//! mutex to exhaustively check concurrent submit/drain interleavings.
//! Keeping the structure lock-free-by-delegation is what makes both
//! usable on the identical code.
//!
//! Invariants (checked by the unit tests here and the loom model):
//!
//! * per-connection FIFO — jobs from one connection pop in push order;
//! * conservation — every pushed job is popped or drained exactly once;
//! * round-robin — consecutive pops from the same connection happen
//!   only when no other connection has a queued job;
//! * empty per-connection queues are garbage-collected eagerly, so an
//!   idle connection costs nothing.

use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;

/// A round-robin multi-queue keyed by connection id. `J` is the queued
/// job type; the queue never inspects it except through caller-supplied
/// predicates.
pub struct Admission<J> {
    queues: BTreeMap<u64, VecDeque<J>>,
    /// Last connection served; the next pop starts strictly after it.
    cursor: u64,
    queued: usize,
    /// Jobs popped but not yet finished (maintained by the daemon).
    pub in_flight: usize,
    /// Set once the daemon refuses new submits (maintained by the daemon).
    pub draining: bool,
}

// Manual impl: a derived one would needlessly require `J: Default`.
impl<J> Default for Admission<J> {
    fn default() -> Admission<J> {
        Admission {
            queues: BTreeMap::new(),
            cursor: 0,
            queued: 0,
            in_flight: 0,
            draining: false,
        }
    }
}

impl<J> Admission<J> {
    /// Appends a job to `conn`'s FIFO.
    pub fn push(&mut self, conn: u64, job: J) {
        self.queues.entry(conn).or_default().push_back(job);
        self.queued += 1;
    }

    /// Number of queued (not yet popped) jobs.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Pops the next job round-robin across connection queues.
    pub fn pop_next(&mut self) -> Option<J> {
        let after = self
            .queues
            .range((Bound::Excluded(self.cursor), Bound::Unbounded))
            .find(|(_, q)| !q.is_empty())
            .map(|(&k, _)| k);
        let key = after.or_else(|| {
            self.queues
                .range(..=self.cursor)
                .find(|(_, q)| !q.is_empty())
                .map(|(&k, _)| k)
        })?;
        let queue = self.queues.get_mut(&key)?;
        let job = queue.pop_front()?;
        if queue.is_empty() {
            self.queues.remove(&key);
        }
        self.cursor = key;
        self.queued -= 1;
        Some(job)
    }

    /// Removes every queued job (drain), leaving the queues empty.
    pub fn drain_all(&mut self) -> Vec<J> {
        let mut jobs = Vec::with_capacity(self.queued);
        for (_, mut queue) in std::mem::take(&mut self.queues) {
            jobs.extend(queue.drain(..));
        }
        self.queued = 0;
        jobs
    }

    /// Removes queued jobs matching `take` (e.g. expired deadlines),
    /// preserving FIFO order among the survivors.
    pub fn drain_where(&mut self, mut take: impl FnMut(&J) -> bool) -> Vec<J> {
        let mut taken = Vec::new();
        for queue in self.queues.values_mut() {
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(job) = queue.pop_front() {
                if take(&job) {
                    taken.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *queue = keep;
        }
        self.queues.retain(|_, q| !q.is_empty());
        self.queued -= taken.len();
        taken
    }

    /// Whether any per-connection queue is still allocated.
    pub fn has_queues(&self) -> bool {
        !self.queues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves_connections() {
        let mut adm: Admission<u64> = Admission::default();
        // Connection 1 floods five jobs; connection 2 and 3 queue one each.
        for _ in 0..5 {
            adm.push(1, 1);
        }
        for conn in [2u64, 3] {
            adm.push(conn, conn);
        }
        let order: Vec<u64> = std::iter::from_fn(|| adm.pop_next()).collect();
        assert_eq!(order, vec![1, 2, 3, 1, 1, 1, 1], "flooder must not starve others");
        assert_eq!(adm.queued(), 0);
        assert!(!adm.has_queues(), "empty queues are garbage-collected");
    }

    #[test]
    fn cursor_wraps_below_the_lowest_key() {
        let mut adm: Admission<u64> = Admission::default();
        adm.push(7, 70);
        assert_eq!(adm.pop_next(), Some(70)); // cursor now 7
        adm.push(3, 30);
        assert_eq!(adm.pop_next(), Some(30), "pop must wrap past the cursor");
    }

    #[test]
    fn drain_all_empties_every_queue() {
        let mut adm: Admission<u64> = Admission::default();
        for conn in 0..4u64 {
            for _ in 0..3 {
                adm.push(conn, conn);
            }
        }
        assert_eq!(adm.drain_all().len(), 12);
        assert_eq!(adm.queued(), 0);
        assert!(adm.pop_next().is_none());
    }

    #[test]
    fn drain_where_keeps_survivor_order() {
        let mut adm: Admission<u64> = Admission::default();
        for v in [10u64, 11, 12, 13] {
            adm.push(1, v);
        }
        let taken = adm.drain_where(|v| v % 2 == 0);
        assert_eq!(taken, vec![10, 12]);
        assert_eq!(adm.queued(), 2);
        assert_eq!(adm.pop_next(), Some(11));
        assert_eq!(adm.pop_next(), Some(13));
    }
}
