//! Experiment cells: the unit of campaign work.
//!
//! A [`CellConfig`] is the *complete* configuration of one simulation
//! point — workload, mechanism, primitive, mesh, deployment, table
//! size, retry budget, scale, seed, cycle bound. It has one canonical
//! JSON encoding (fixed field order, shortest-roundtrip numbers) and a
//! stable 64-bit FNV-1a content hash over that encoding, which keys the
//! on-disk result cache. Equal configs hash equal; any field change
//! changes the hash.
//!
//! A [`CellRecord`] is the deterministic result of running a cell: all
//! simulated metrics, no wall-clock anything. Because the simulator is
//! deterministic per seeded config, a record is a pure function of its
//! config — exactly what makes content-addressed caching sound.

use crate::json::{self, Json};
use inpg::{Experiment, ExperimentResult, LockPrimitive, Mechanism, ThreadProgram};
use inpg_sim::{CoreId, LockId};
use std::fmt;

/// Schema carried inside every cache entry; bump on layout changes so
/// stale entries re-run instead of being misread.
pub const SCHEMA_VERSION: u64 = 1;

/// What a cell simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum CellWorkload {
    /// One of the 24 modelled benchmarks, by name.
    Benchmark { name: String },
    /// The Figure-10 microbenchmark: every core of the mesh hammers one
    /// lock (`rounds` rounds of `compute` parallel cycles then a
    /// `cs_cycles`-cycle critical section).
    HotLock { rounds: u64, compute: u64, cs_cycles: u64 },
}

/// Full configuration of one experiment cell. Field defaults mirror
/// [`Experiment`]'s.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    pub workload: CellWorkload,
    pub mechanism: Mechanism,
    pub primitive: LockPrimitive,
    pub width: u8,
    pub height: u8,
    /// `None` keeps the mechanism default (checkerboard for iNPG).
    pub big_routers: Option<usize>,
    pub barrier_entries: usize,
    pub retry_budget: u32,
    pub scale: f64,
    pub seed: u64,
    /// Home every lock at this core index (Figure 10), or interleave.
    pub lock_home: Option<usize>,
    /// Timeline-recording cells are never cached: the timeline is too
    /// large to serialize and is consumed in-process (Figure 9).
    pub record_timeline: bool,
    pub max_cycles: u64,
}

impl CellConfig {
    /// A benchmark cell with [`Experiment`]'s defaults.
    pub fn benchmark(name: &str) -> Self {
        CellConfig {
            workload: CellWorkload::Benchmark { name: name.to_string() },
            ..Self::base()
        }
    }

    /// A Figure-10-style hot-lock cell (TAS, one lock, every core).
    pub fn hot_lock(rounds: u64, compute: u64, cs_cycles: u64) -> Self {
        CellConfig {
            workload: CellWorkload::HotLock { rounds, compute, cs_cycles },
            primitive: LockPrimitive::Tas,
            ..Self::base()
        }
    }

    fn base() -> Self {
        CellConfig {
            workload: CellWorkload::Benchmark { name: String::new() },
            mechanism: Mechanism::Original,
            primitive: LockPrimitive::Qsl,
            width: 8,
            height: 8,
            big_routers: None,
            barrier_entries: 16,
            retry_budget: 128,
            scale: 1.0,
            seed: 0x1a9e_4711,
            lock_home: None,
            record_timeline: false,
            max_cycles: 400_000_000,
        }
    }

    /// Whether the cell's result may be cached on disk. Timeline cells
    /// carry their (huge, in-process) timeline and must run fresh.
    pub fn cacheable(&self) -> bool {
        !self.record_timeline
    }

    /// Canonical JSON encoding: fixed field order, every field present.
    pub fn to_json(&self) -> Json {
        let workload = match &self.workload {
            CellWorkload::Benchmark { name } => Json::obj(vec![
                ("kind", Json::Str("benchmark".into())),
                ("name", Json::Str(name.clone())),
            ]),
            CellWorkload::HotLock { rounds, compute, cs_cycles } => Json::obj(vec![
                ("kind", Json::Str("hot-lock".into())),
                ("rounds", Json::UInt(*rounds)),
                ("compute", Json::UInt(*compute)),
                ("cs_cycles", Json::UInt(*cs_cycles)),
            ]),
        };
        Json::obj(vec![
            ("schema", Json::UInt(SCHEMA_VERSION)),
            ("workload", workload),
            ("mechanism", Json::Str(mechanism_name(self.mechanism).into())),
            ("primitive", Json::Str(primitive_name(self.primitive).into())),
            ("width", Json::UInt(u64::from(self.width))),
            ("height", Json::UInt(u64::from(self.height))),
            (
                "big_routers",
                self.big_routers.map_or(Json::Null, |n| Json::UInt(n as u64)),
            ),
            ("barrier_entries", Json::UInt(self.barrier_entries as u64)),
            ("retry_budget", Json::UInt(u64::from(self.retry_budget))),
            ("scale", Json::num(self.scale)),
            ("seed", Json::UInt(self.seed)),
            (
                "lock_home",
                self.lock_home.map_or(Json::Null, |c| Json::UInt(c as u64)),
            ),
            ("record_timeline", Json::Bool(self.record_timeline)),
            ("max_cycles", Json::UInt(self.max_cycles)),
        ])
    }

    /// Parses a canonical encoding back into a config.
    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let schema = req_u64(v, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(SchemaError(format!(
                "cell schema {schema}, engine speaks {SCHEMA_VERSION}"
            )));
        }
        let w = v.get("workload").ok_or_else(|| SchemaError("no workload".into()))?;
        let workload = match req_str(w, "kind")? {
            "benchmark" => CellWorkload::Benchmark { name: req_str(w, "name")?.to_string() },
            "hot-lock" => CellWorkload::HotLock {
                rounds: req_u64(w, "rounds")?,
                compute: req_u64(w, "compute")?,
                cs_cycles: req_u64(w, "cs_cycles")?,
            },
            other => return Err(SchemaError(format!("unknown workload kind `{other}`"))),
        };
        let mechanism: Mechanism = req_str(v, "mechanism")?
            .parse()
            .map_err(|e| SchemaError(format!("{e}")))?;
        let primitive: LockPrimitive = req_str(v, "primitive")?
            .parse()
            .map_err(|e| SchemaError(format!("{e}")))?;
        Ok(CellConfig {
            workload,
            mechanism,
            primitive,
            width: cast_u8(req_u64(v, "width")?)?,
            height: cast_u8(req_u64(v, "height")?)?,
            big_routers: opt_u64(v, "big_routers")?.map(|n| n as usize),
            barrier_entries: req_u64(v, "barrier_entries")? as usize,
            retry_budget: u32::try_from(req_u64(v, "retry_budget")?)
                .map_err(|_| SchemaError("retry_budget out of range".into()))?,
            scale: req_f64(v, "scale")?,
            seed: req_u64(v, "seed")?,
            lock_home: opt_u64(v, "lock_home")?.map(|c| c as usize),
            record_timeline: v
                .get("record_timeline")
                .and_then(Json::as_bool)
                .ok_or_else(|| SchemaError("no record_timeline".into()))?,
            max_cycles: req_u64(v, "max_cycles")?,
        })
    }

    /// The canonical encoding as a compact string (the hash preimage).
    pub fn canonical(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Stable content hash of the full config (FNV-1a 64, hex).
    pub fn content_hash(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// Builds the runnable [`Experiment`] for this cell.
    pub fn to_experiment(&self) -> Experiment {
        let mut e = match &self.workload {
            CellWorkload::Benchmark { name } => Experiment::benchmark(name).scale(self.scale),
            CellWorkload::HotLock { rounds, compute, cs_cycles } => {
                let threads = usize::from(self.width) * usize::from(self.height);
                let programs: Vec<ThreadProgram> = (0..threads)
                    .map(|_| {
                        ThreadProgram::new().rounds(
                            *rounds as usize,
                            *compute,
                            LockId::new(0),
                            *cs_cycles,
                        )
                    })
                    .collect();
                Experiment::custom("hot-lock", programs, 1)
            }
        };
        e = e
            .mechanism(self.mechanism)
            .primitive(self.primitive)
            .mesh(self.width, self.height)
            .barrier_entries(self.barrier_entries)
            .retry_budget(self.retry_budget)
            .seed(self.seed)
            .record_timeline(self.record_timeline)
            .max_cycles(self.max_cycles);
        if let Some(count) = self.big_routers {
            e = e.big_routers(count);
        }
        if let Some(core) = self.lock_home {
            e = e.lock_home(CoreId::new(core));
        }
        e
    }
}

/// One labelled cell of a campaign.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Unique human-readable label within the campaign
    /// (e.g. `freq/iNPG/QSL/s0`); the formatting key for fig binaries.
    pub label: String,
    pub config: CellConfig,
}

/// A declarative campaign: a named, canonically-ordered cell set.
/// Definition order *is* the canonical order — merged artifacts list
/// cells in exactly this order regardless of execution interleaving.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    pub name: String,
    pub cells: Vec<CellSpec>,
}

impl Campaign {
    pub fn new(name: impl Into<String>) -> Self {
        Campaign { name: name.into(), cells: Vec::new() }
    }

    /// Appends a cell. Labels must be unique — they are the lookup key
    /// for result formatting.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate label: that is a bug in the campaign
    /// definition, not a runtime condition.
    pub fn push(&mut self, label: impl Into<String>, config: CellConfig) {
        let label = label.into();
        assert!(
            !self.cells.iter().any(|c| c.label == label),
            "duplicate cell label `{label}` in campaign `{}`",
            self.name
        );
        self.cells.push(CellSpec { label, config });
    }

    /// Cells whose label contains `filter` (all cells when `None`).
    pub fn matching(&self, filter: Option<&str>) -> Vec<&CellSpec> {
        self.cells
            .iter()
            .filter(|c| filter.is_none_or(|f| c.label.contains(f)))
            .collect()
    }
}

/// Summary of one invalidation-acknowledgement population, serializable.
#[derive(Debug, Clone, PartialEq)]
pub struct InvAckRecord {
    pub mean: f64,
    pub max: u64,
    pub count: u64,
    /// Histogram with trailing zero buckets trimmed.
    pub histogram: Vec<u64>,
    /// Mean delay per core; `None` = that core was never invalidated.
    pub per_core_mean: Vec<Option<f64>>,
}

impl InvAckRecord {
    fn from_summary(s: &inpg::InvAckSummary) -> Self {
        let mut histogram = s.histogram.clone();
        while histogram.last() == Some(&0) {
            histogram.pop();
        }
        InvAckRecord {
            mean: s.mean,
            max: s.max,
            count: s.count,
            histogram,
            per_core_mean: s.per_core_mean.clone(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::num(self.mean)),
            ("max", Json::UInt(self.max)),
            ("count", Json::UInt(self.count)),
            ("histogram", Json::Arr(self.histogram.iter().map(|&n| Json::UInt(n)).collect())),
            (
                "per_core_mean",
                Json::Arr(
                    self.per_core_mean
                        .iter()
                        .map(|m| m.map_or(Json::Null, Json::num))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let histogram = v
            .get("histogram")
            .and_then(Json::as_arr)
            .ok_or_else(|| SchemaError("no histogram".into()))?
            .iter()
            .map(|j| j.as_u64().ok_or_else(|| SchemaError("bad histogram bucket".into())))
            .collect::<Result<Vec<_>, _>>()?;
        let per_core_mean = v
            .get("per_core_mean")
            .and_then(Json::as_arr)
            .ok_or_else(|| SchemaError("no per_core_mean".into()))?
            .iter()
            .map(|j| match j {
                Json::Null => Ok(None),
                other => other
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| SchemaError("bad per_core_mean entry".into())),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(InvAckRecord {
            mean: req_f64(v, "mean")?,
            max: req_u64(v, "max")?,
            count: req_u64(v, "count")?,
            histogram,
            per_core_mean,
        })
    }
}

/// The deterministic result of one cell: everything the fig binaries
/// format, nothing wall-clock. A pure function of the cell's config.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    pub completed: bool,
    pub roi_cycles: u64,
    pub cs_count: u64,
    pub threads: u64,
    pub avg_cs_coh: f64,
    pub avg_cs_cse: f64,
    pub total_parallel: u64,
    pub total_coh: u64,
    pub total_cse: u64,
    pub total_sleep: u64,
    pub lco_cycles: u64,
    pub mem_txn_cycles: u64,
    pub invack: InvAckRecord,
    pub invack_early: InvAckRecord,
    pub delivered: u64,
    pub mean_latency: f64,
    pub generated: u64,
    pub early_invs: u64,
    pub requests_stopped: u64,
    pub acks_relayed: u64,
    pub home_invs_sent: u64,
    pub home_invs_saved: u64,
}

impl CellRecord {
    /// Extracts the record from a full in-process result.
    pub fn from_result(r: &ExperimentResult) -> Self {
        CellRecord {
            completed: r.completed,
            roi_cycles: r.roi_cycles,
            cs_count: r.cs_count as u64,
            threads: r.per_thread.len() as u64,
            avg_cs_coh: r.avg_cs_coh,
            avg_cs_cse: r.avg_cs_cse,
            total_parallel: r.total_parallel,
            total_coh: r.total_coh,
            total_cse: r.total_cse,
            total_sleep: r.total_sleep,
            lco_cycles: r.lco_cycles,
            mem_txn_cycles: r.mem_txn_cycles,
            invack: InvAckRecord::from_summary(&r.invack),
            invack_early: InvAckRecord::from_summary(&r.invack_early),
            delivered: r.noc.delivered,
            mean_latency: r.noc.mean_latency,
            generated: r.noc.generated,
            early_invs: r.noc.early_invs,
            requests_stopped: r.barrier.requests_stopped,
            acks_relayed: r.barrier.acks_relayed,
            home_invs_sent: r.home_invs_sent,
            home_invs_saved: r.home_invs_saved,
        }
    }

    /// Mean critical-section access time (COH + CSE), Figure 11's
    /// normalized quantity.
    pub fn cs_access_time(&self) -> f64 {
        self.avg_cs_coh + self.avg_cs_cse
    }

    /// Fraction of LCO in total runtime (Figure 2's metric).
    pub fn lco_share(&self) -> f64 {
        if self.roi_cycles == 0 || self.threads == 0 {
            return 0.0;
        }
        self.lco_cycles as f64 / (self.roi_cycles as f64 * self.threads as f64)
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("completed", Json::Bool(self.completed)),
            ("roi_cycles", Json::UInt(self.roi_cycles)),
            ("cs_count", Json::UInt(self.cs_count)),
            ("threads", Json::UInt(self.threads)),
            ("avg_cs_coh", Json::num(self.avg_cs_coh)),
            ("avg_cs_cse", Json::num(self.avg_cs_cse)),
            ("total_parallel", Json::UInt(self.total_parallel)),
            ("total_coh", Json::UInt(self.total_coh)),
            ("total_cse", Json::UInt(self.total_cse)),
            ("total_sleep", Json::UInt(self.total_sleep)),
            ("lco_cycles", Json::UInt(self.lco_cycles)),
            ("mem_txn_cycles", Json::UInt(self.mem_txn_cycles)),
            ("invack", self.invack.to_json()),
            ("invack_early", self.invack_early.to_json()),
            ("delivered", Json::UInt(self.delivered)),
            ("mean_latency", Json::num(self.mean_latency)),
            ("generated", Json::UInt(self.generated)),
            ("early_invs", Json::UInt(self.early_invs)),
            ("requests_stopped", Json::UInt(self.requests_stopped)),
            ("acks_relayed", Json::UInt(self.acks_relayed)),
            ("home_invs_sent", Json::UInt(self.home_invs_sent)),
            ("home_invs_saved", Json::UInt(self.home_invs_saved)),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, SchemaError> {
        Ok(CellRecord {
            completed: v
                .get("completed")
                .and_then(Json::as_bool)
                .ok_or_else(|| SchemaError("no completed".into()))?,
            roi_cycles: req_u64(v, "roi_cycles")?,
            cs_count: req_u64(v, "cs_count")?,
            threads: req_u64(v, "threads")?,
            avg_cs_coh: req_f64(v, "avg_cs_coh")?,
            avg_cs_cse: req_f64(v, "avg_cs_cse")?,
            total_parallel: req_u64(v, "total_parallel")?,
            total_coh: req_u64(v, "total_coh")?,
            total_cse: req_u64(v, "total_cse")?,
            total_sleep: req_u64(v, "total_sleep")?,
            lco_cycles: req_u64(v, "lco_cycles")?,
            mem_txn_cycles: req_u64(v, "mem_txn_cycles")?,
            invack: InvAckRecord::from_json(
                v.get("invack").ok_or_else(|| SchemaError("no invack".into()))?,
            )?,
            invack_early: InvAckRecord::from_json(
                v.get("invack_early").ok_or_else(|| SchemaError("no invack_early".into()))?,
            )?,
            delivered: req_u64(v, "delivered")?,
            mean_latency: req_f64(v, "mean_latency")?,
            generated: req_u64(v, "generated")?,
            early_invs: req_u64(v, "early_invs")?,
            requests_stopped: req_u64(v, "requests_stopped")?,
            acks_relayed: req_u64(v, "acks_relayed")?,
            home_invs_sent: req_u64(v, "home_invs_sent")?,
            home_invs_saved: req_u64(v, "home_invs_saved")?,
        })
    }
}

/// A cache entry or artifact line did not match the expected layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema mismatch: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

impl From<json::ParseError> for SchemaError {
    fn from(e: json::ParseError) -> Self {
        SchemaError(e.to_string())
    }
}

/// Canonical lowercase mechanism name (roundtrips through `FromStr`).
pub fn mechanism_name(m: Mechanism) -> &'static str {
    match m {
        Mechanism::Original => "original",
        Mechanism::Ocor => "ocor",
        Mechanism::Inpg => "inpg",
        Mechanism::InpgOcor => "inpg+ocor",
    }
}

/// Canonical lowercase primitive name (roundtrips through `FromStr`).
pub fn primitive_name(p: LockPrimitive) -> &'static str {
    match p {
        LockPrimitive::Tas => "tas",
        LockPrimitive::Ticket => "ttl",
        LockPrimitive::Abql => "abql",
        LockPrimitive::Mcs => "mcs",
        LockPrimitive::Qsl => "qsl",
    }
}

/// 64-bit FNV-1a over a byte string — the content hash of the cache.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn req_u64(v: &Json, key: &str) -> Result<u64, SchemaError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SchemaError(format!("missing or non-integer `{key}`")))
}

fn opt_u64(v: &Json, key: &str) -> Result<Option<u64>, SchemaError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| SchemaError(format!("non-integer `{key}`"))),
    }
}

fn req_f64(v: &Json, key: &str) -> Result<f64, SchemaError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| SchemaError(format!("missing or non-numeric `{key}`")))
}

fn req_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, SchemaError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| SchemaError(format!("missing or non-string `{key}`")))
}

fn cast_u8(v: u64) -> Result<u8, SchemaError> {
    u8::try_from(v).map_err(|_| SchemaError(format!("{v} out of u8 range")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> CellConfig {
        let mut c = CellConfig::benchmark("freq");
        c.mechanism = Mechanism::InpgOcor;
        c.primitive = LockPrimitive::Mcs;
        c.width = 4;
        c.height = 4;
        c.big_routers = Some(8);
        c.scale = 0.05;
        c.seed = 42;
        c
    }

    #[test]
    fn config_roundtrips_and_hash_is_stable() {
        for config in [
            sample_config(),
            CellConfig::benchmark("vips"),
            CellConfig::hot_lock(16, 500, 100),
        ] {
            let encoded = config.canonical();
            let back =
                CellConfig::from_json(&json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(back, config);
            assert_eq!(back.canonical(), encoded, "canonical form must be a fixpoint");
            assert_eq!(back.content_hash(), config.content_hash());
        }
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let base = sample_config();
        let mut variants = vec![
            CellConfig { seed: 43, ..base.clone() },
            CellConfig { scale: 0.1, ..base.clone() },
            CellConfig { mechanism: Mechanism::Inpg, ..base.clone() },
            CellConfig { primitive: LockPrimitive::Tas, ..base.clone() },
            CellConfig { big_routers: None, ..base.clone() },
            CellConfig { barrier_entries: 4, ..base.clone() },
            CellConfig { lock_home: Some(3), ..base.clone() },
            CellConfig { max_cycles: 1, ..base.clone() },
        ];
        variants.push(CellConfig::benchmark("freq")); // workload defaults
        let mut hashes: Vec<String> =
            variants.iter().map(CellConfig::content_hash).collect();
        hashes.push(base.content_hash());
        hashes.sort();
        let before = hashes.len();
        hashes.dedup();
        assert_eq!(hashes.len(), before, "all variant hashes must differ");
    }

    #[test]
    fn record_roundtrips_via_a_real_run() {
        let mut config = CellConfig::hot_lock(2, 60, 25);
        config.width = 4;
        config.height = 4;
        config.max_cycles = 3_000_000;
        config.mechanism = Mechanism::Inpg;
        let result = config.to_experiment().run().expect("valid experiment");
        let record = CellRecord::from_result(&result);
        assert!(record.completed);
        assert_eq!(record.cs_count, 32);
        assert!(record.requests_stopped > 0, "iNPG must stop requests");
        let encoded = record.to_json().to_string_compact();
        let back = CellRecord::from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(back, record);
        assert_eq!(
            back.to_json().to_string_compact(),
            encoded,
            "cached records must re-serialize byte-identically"
        );
        assert!((record.cs_access_time() - (record.avg_cs_coh + record.avg_cs_cse)).abs() < 1e-12);
        assert!(record.lco_share() > 0.0);
    }

    #[test]
    fn campaign_labels_are_unique_and_filterable() {
        let mut campaign = Campaign::new("t");
        campaign.push("a/x", CellConfig::benchmark("freq"));
        campaign.push("b/x", CellConfig::benchmark("vips"));
        assert_eq!(campaign.matching(None).len(), 2);
        assert_eq!(campaign.matching(Some("a/")).len(), 1);
        let result = std::panic::catch_unwind(move || {
            campaign.push("a/x", CellConfig::benchmark("nab"));
        });
        assert!(result.is_err(), "duplicate label must panic");
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for m in Mechanism::ALL {
            assert_eq!(mechanism_name(m).parse::<Mechanism>().unwrap(), m);
        }
        for p in LockPrimitive::ALL {
            assert_eq!(primitive_name(p).parse::<LockPrimitive>().unwrap(), p);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
