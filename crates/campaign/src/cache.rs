//! The on-disk content-addressed result cache.
//!
//! Layout: one file per cell at `<dir>/<config-hash>.json` holding
//!
//! ```json
//! {"schema":1,
//!  "config_hash":"<16 hex>",
//!  "config":{...canonical cell config...},
//!  "record_hash":"<16 hex>",
//!  "record":{...deterministic cell record...}}
//! ```
//!
//! Nothing in an entry is trusted on load. A hit requires *all* of:
//! the stored `config_hash` matches the file name, re-hashing the
//! stored config's canonical encoding reproduces it (so the entry
//! really is the cell we asked for, not a renamed file), and re-hashing
//! the re-serialized record matches `record_hash` (so a flipped bit
//! anywhere in the payload is caught). Any mismatch — including a file
//! that fails to parse — is a [`CacheMiss`], and the engine re-runs the
//! cell instead of trusting the entry.

use crate::cell::{fnv1a64, CellConfig, CellRecord};
use crate::json::{self, Json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Why a lookup did not produce a usable record. `Absent` is the
/// ordinary cold-cache case; every other variant means an entry existed
/// but was rejected.
#[derive(Debug)]
pub enum CacheMiss {
    /// No entry on disk.
    Absent,
    /// The entry could not be read.
    Unreadable(io::Error),
    /// The entry did not parse or did not match the schema.
    Malformed(String),
    /// A stored hash did not check out — the entry is corrupt or
    /// mislabelled.
    HashMismatch(String),
}

/// A content-addressed cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (and lazily creates) a cache at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a cell.
    pub fn entry_path(&self, config: &CellConfig) -> PathBuf {
        self.dir.join(format!("{}.json", config.content_hash()))
    }

    /// Loads and fully verifies the entry for `config`.
    pub fn load(&self, config: &CellConfig) -> Result<CellRecord, CacheMiss> {
        let path = self.entry_path(config);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(CacheMiss::Absent),
            Err(e) => return Err(CacheMiss::Unreadable(e)),
        };
        let entry = json::parse(&text).map_err(|e| CacheMiss::Malformed(e.to_string()))?;

        let expected_hash = config.content_hash();
        let stored_hash = entry
            .get("config_hash")
            .and_then(Json::as_str)
            .ok_or_else(|| CacheMiss::Malformed("no config_hash".into()))?;
        if stored_hash != expected_hash {
            return Err(CacheMiss::HashMismatch(format!(
                "entry claims config {stored_hash}, wanted {expected_hash}"
            )));
        }
        let stored_config = entry
            .get("config")
            .ok_or_else(|| CacheMiss::Malformed("no config".into()))?;
        let stored_config = CellConfig::from_json(stored_config)
            .map_err(|e| CacheMiss::Malformed(e.to_string()))?;
        if stored_config.content_hash() != expected_hash {
            return Err(CacheMiss::HashMismatch(
                "stored config does not hash to the entry's address".into(),
            ));
        }

        let record_json = entry
            .get("record")
            .ok_or_else(|| CacheMiss::Malformed("no record".into()))?;
        let record = CellRecord::from_json(record_json)
            .map_err(|e| CacheMiss::Malformed(e.to_string()))?;
        let stored_record_hash = entry
            .get("record_hash")
            .and_then(Json::as_str)
            .ok_or_else(|| CacheMiss::Malformed("no record_hash".into()))?;
        let recomputed = record_hash(&record);
        if stored_record_hash != recomputed {
            return Err(CacheMiss::HashMismatch(format!(
                "record hash {stored_record_hash} != recomputed {recomputed}"
            )));
        }
        Ok(record)
    }

    /// Writes the entry for a (config, record) pair, crash-safely: the
    /// payload goes to a per-process temporary file, is fsynced, and is
    /// atomically renamed into place. A process killed at any point
    /// leaves either the old entry, the new entry, or an orphaned
    /// `.tmp` file (collected by [`gc_stale_tmp`](Self::gc_stale_tmp))
    /// — never a torn entry at the content address. Concurrent writers
    /// of the same cell write identical bytes by construction, so the
    /// rename race is benign.
    pub fn store(&self, config: &CellConfig, record: &CellRecord) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let entry = Json::obj(vec![
            ("schema", Json::UInt(crate::cell::SCHEMA_VERSION)),
            ("config_hash", Json::Str(config.content_hash())),
            ("config", config.to_json()),
            ("record_hash", Json::Str(record_hash(record))),
            ("record", record.to_json()),
        ]);
        let path = self.entry_path(config);
        let tmp = self.dir.join(format!(
            ".{}.{}.tmp",
            config.content_hash(),
            std::process::id()
        ));
        {
            let mut file = fs::File::create(&tmp)?;
            io::Write::write_all(&mut file, (entry.to_string_compact() + "\n").as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)
    }

    /// Removes orphaned `.tmp` files left by writers that died mid-store
    /// (SIGKILL between create and rename). Call once at startup, before
    /// serving: a live writer whose tmp is swept merely fails its rename
    /// and re-runs the cell; a dead writer's half-written payload must
    /// never be mistaken for an entry. Returns the number removed.
    pub fn gc_stale_tmp(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let is_tmp = name.to_str().is_some_and(|n| n.ends_with(".tmp"));
            if is_tmp && entry.file_type()?.is_file() {
                fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Where corrupt entries are moved instead of deleted.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Moves the (rejected) entry for `config` into
    /// `quarantine/<hash>.json` so the corruption stays inspectable and
    /// the address is free for the honest re-run. Returns `false` when
    /// there was nothing on disk to move (e.g. two shards quarantined
    /// the same entry concurrently — one wins the rename, both re-run).
    pub fn quarantine(&self, config: &CellConfig) -> io::Result<bool> {
        let path = self.entry_path(config);
        if !path.exists() {
            return Ok(false);
        }
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        match fs::rename(&path, qdir.join(format!("{}.json", config.content_hash()))) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Hash of a record's canonical serialization (FNV-1a 64, hex).
pub fn record_hash(record: &CellRecord) -> String {
    format!("{:016x}", fnv1a64(record.to_json().to_string_compact().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inpg::Mechanism;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("inpg-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn run_cell() -> (CellConfig, CellRecord) {
        let mut config = CellConfig::hot_lock(1, 50, 20);
        config.width = 2;
        config.height = 2;
        config.mechanism = Mechanism::Original;
        config.max_cycles = 1_000_000;
        let result = config.to_experiment().run().expect("valid experiment");
        (config.clone(), CellRecord::from_result(&result))
    }

    #[test]
    fn store_then_load_roundtrips() {
        let cache = ResultCache::new(tmp_dir("roundtrip"));
        let (config, record) = run_cell();
        assert!(matches!(cache.load(&config), Err(CacheMiss::Absent)));
        cache.store(&config, &record).unwrap();
        let loaded = cache.load(&config).expect("verified hit");
        assert_eq!(loaded, record);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupted_entries_are_rejected_not_trusted() {
        let cache = ResultCache::new(tmp_dir("corrupt"));
        let (config, record) = run_cell();
        cache.store(&config, &record).unwrap();
        let path = cache.entry_path(&config);

        // Flip a digit inside the record payload: the roi_cycles value.
        let text = fs::read_to_string(&path).unwrap();
        let needle = format!("\"roi_cycles\":{}", record.roi_cycles);
        let tampered =
            text.replace(&needle, &format!("\"roi_cycles\":{}", record.roi_cycles + 1));
        assert_ne!(text, tampered, "tamper target must exist in the entry");
        fs::write(&path, tampered).unwrap();
        assert!(
            matches!(cache.load(&config), Err(CacheMiss::HashMismatch(_))),
            "a flipped payload byte must be a hash mismatch"
        );

        // Truncated garbage is malformed, also a miss.
        fs::write(&path, "{\"schema\":1").unwrap();
        assert!(matches!(cache.load(&config), Err(CacheMiss::Malformed(_))));

        // An entry renamed onto the wrong address is a config-hash
        // mismatch, not a silent wrong answer.
        cache.store(&config, &record).unwrap();
        let mut other = config.clone();
        other.seed ^= 1;
        fs::copy(&path, cache.entry_path(&other)).unwrap();
        assert!(matches!(cache.load(&other), Err(CacheMiss::HashMismatch(_))));

        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_tmp_files_are_collected_entries_are_not() {
        let cache = ResultCache::new(tmp_dir("gc"));
        let (config, record) = run_cell();
        cache.store(&config, &record).unwrap();

        // A writer killed mid-store leaves a half-written tmp behind —
        // simulate with a truncated payload under the tmp naming scheme.
        let full = fs::read_to_string(cache.entry_path(&config)).unwrap();
        let orphan = cache.dir().join(format!(".{}.99999.tmp", config.content_hash()));
        fs::write(&orphan, &full[..full.len() / 2]).unwrap();
        let unrelated = cache.dir().join("whatever.tmp");
        fs::write(&unrelated, "garbage").unwrap();

        assert_eq!(cache.gc_stale_tmp().unwrap(), 2);
        assert!(!orphan.exists());
        assert!(!unrelated.exists());
        // The committed entry survives and still verifies.
        assert_eq!(cache.load(&config).expect("hit"), record);
        // Idempotent on a clean directory; absent directory is not an error.
        assert_eq!(cache.gc_stale_tmp().unwrap(), 0);
        assert_eq!(ResultCache::new(tmp_dir("gc-absent")).gc_stale_tmp().unwrap(), 0);

        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn quarantine_moves_the_entry_aside() {
        let cache = ResultCache::new(tmp_dir("quarantine"));
        let (config, record) = run_cell();
        cache.store(&config, &record).unwrap();
        fs::write(cache.entry_path(&config), "{\"schema\":1, torn").unwrap();

        assert!(cache.quarantine(&config).unwrap());
        assert!(!cache.entry_path(&config).exists(), "address must be freed");
        let moved =
            cache.quarantine_dir().join(format!("{}.json", config.content_hash()));
        assert_eq!(
            fs::read_to_string(&moved).unwrap(),
            "{\"schema\":1, torn",
            "the corrupt payload must stay inspectable"
        );
        assert!(matches!(cache.load(&config), Err(CacheMiss::Absent)));
        // Nothing left to move: reports false, does not error.
        assert!(!cache.quarantine(&config).unwrap());
        // The quarantine subdirectory is not swept by tmp GC.
        assert_eq!(cache.gc_stale_tmp().unwrap(), 0);
        assert!(moved.exists());

        let _ = fs::remove_dir_all(cache.dir());
    }
}
