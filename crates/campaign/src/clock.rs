//! The harness-boundary wall clock.
//!
//! This is the *only* place in the campaign crate allowed to read the
//! host's wall clock (`cargo xtask lint` bans `Instant`/`SystemTime`
//! everywhere else in the crate). Cell execution and result merging are
//! pure functions of cell configs; wall time exists solely to report
//! harness throughput (progress, ETA, `BENCH_campaign.json`) and can
//! never influence what a cell computes or how results are merged.

/// A monotonically measured span started at the harness boundary.
#[derive(Debug, Clone, Copy)]
pub struct HarnessClock {
    // lint: allow(wallclock) — this module is the harness boundary; the
    // reading never reaches cell execution or merge logic.
    start: std::time::Instant,
}

impl HarnessClock {
    /// Starts measuring now.
    pub fn start() -> Self {
        // lint: allow(wallclock) — harness boundary (see module docs).
        HarnessClock { start: std::time::Instant::now() }
    }

    /// Nanoseconds elapsed since [`start`](Self::start).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let clock = HarnessClock::start();
        let a = clock.elapsed_nanos();
        let b = clock.elapsed_nanos();
        assert!(b >= a);
    }
}
