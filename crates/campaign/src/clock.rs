//! The harness-boundary wall clock.
//!
//! This is the *only* place in the campaign crate allowed to read the
//! host's wall clock (`cargo xtask lint` bans `Instant`/`SystemTime`
//! everywhere else in the crate). Cell execution and result merging are
//! pure functions of cell configs; wall time exists solely to report
//! harness throughput (progress, ETA, `BENCH_campaign.json`) and can
//! never influence what a cell computes or how results are merged.

/// A monotonically measured span started at the harness boundary.
#[derive(Debug, Clone, Copy)]
pub struct HarnessClock {
    // lint: allow(wallclock) — this module is the harness boundary; the
    // reading never reaches cell execution or merge logic.
    start: std::time::Instant,
}

impl HarnessClock {
    /// Starts measuring now.
    pub fn start() -> Self {
        // lint: allow(wallclock) — harness boundary (see module docs).
        HarnessClock { start: std::time::Instant::now() }
    }

    /// Nanoseconds elapsed since [`start`](Self::start).
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// A wall-clock deadline, created and compared only here at the harness
/// boundary. The campaign service hands these to its deadline timer;
/// serve/submit code asks `expired()`/`remaining_ms()` and never names
/// `Instant` itself, so the wallclock lint stays meaningful: decisions
/// driven by wall time are confined to explicitly harness-side types.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    // lint: allow(wallclock) — harness boundary (see module docs).
    at: std::time::Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        // lint: allow(wallclock) — harness boundary (see module docs).
        Deadline { at: std::time::Instant::now() + std::time::Duration::from_millis(ms) }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        // lint: allow(wallclock) — harness boundary (see module docs).
        std::time::Instant::now() >= self.at
    }

    /// Milliseconds until the deadline (0 once passed).
    pub fn remaining_ms(&self) -> u64 {
        // lint: allow(wallclock) — harness boundary (see module docs).
        let now = std::time::Instant::now();
        self.at.saturating_duration_since(now).as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let clock = HarnessClock::start();
        let a = clock.elapsed_nanos();
        let b = clock.elapsed_nanos();
        assert!(b >= a);
    }

    #[test]
    fn deadline_expiry_is_ordered() {
        let soon = Deadline::after_ms(0);
        let late = Deadline::after_ms(3_600_000);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(soon.expired());
        assert_eq!(soon.remaining_ms(), 0);
        assert!(!late.expired());
        assert!(late.remaining_ms() > 3_000_000);
    }
}
