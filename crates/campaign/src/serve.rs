//! `inpg serve` — the resident campaign daemon.
//!
//! Holds the worker pool warm between requests: cache hits are answered
//! inline on the connection handler in microseconds, misses are
//! admitted to a bounded queue and executed by resident workers.
//! Robustness is the headline, in four layers:
//!
//! * **Deadlines** — every submit may carry `deadline_ms`. A job whose
//!   deadline passes while queued is answered with a typed
//!   [`Reply::Timeout`] without ever running; a job that exceeds its
//!   deadline mid-run is stopped cooperatively through the simulator's
//!   [`AbortHandle`] (the run ends with `SimError::Aborted` at its next
//!   poll point) and answered with the same typed timeout. The pool is
//!   never wedged by a slow cell.
//! * **Backpressure** — the admission queue is bounded. Beyond the
//!   bound, requests are shed with [`Reply::Overloaded`] and an honest
//!   `retry_after_ms`, not buffered without limit. Queued work is
//!   served round-robin across connections, so one greedy client
//!   cannot starve the rest.
//! * **Graceful drain** — a shutdown request or SIGTERM/SIGINT flips
//!   the daemon into draining: new submits are refused with
//!   [`Reply::Draining`], in-flight cells finish and answer normally,
//!   queued cells are persisted to the [journal](crate::journal)
//!   (their waiting clients get `Draining` and resubmit elsewhere),
//!   and the process exits 0.
//! * **Crash safety** — all cache writes go through tmp+fsync+rename;
//!   startup sweeps orphaned `.tmp` files and replays the journal
//!   (idempotent: replayed cells that already made it to the shared
//!   cache cost one verified hit). Corrupt cache entries found while
//!   serving are quarantined and counted, never trusted and never
//!   silently deleted.
//!
//! Multiple daemons may share one cache directory: entries are
//! content-addressed and written atomically with identical bytes for
//! identical cells, so concurrent writers are benign, and a client can
//! shard cells across daemons by content hash.
//!
//! A submit that misses the cache additionally streams progress
//! [`Notification`] lines (queued/running/done) on its connection ahead
//! of the terminal reply, so a client watching a long cell sees it move
//! through the queue instead of a silent socket. Notes are advisory and
//! never block a worker: they travel through the same unbounded channel
//! as the final reply, and a disconnected client merely loses them.

use crate::admission::Admission;
use crate::cache::{CacheMiss, ResultCache};
use crate::cell::{CellConfig, CellRecord};
use crate::clock::{Deadline, HarnessClock};
use crate::journal;
use crate::protocol::{Notification, Reply, Request, ServiceStatus};
use inpg_manycore::SimError;
use inpg_sim::AbortHandle;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How the daemon runs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address. Port 0 picks an ephemeral port (recommended: std
    /// offers no `SO_REUSEADDR`, so a fixed port can linger in
    /// `TIME_WAIT` after a restart); the bound address is published via
    /// [`addr_file`](Self::addr_file).
    pub addr: String,
    /// File the bound `host:port` is written to once listening (and
    /// removed on exit). Clients re-read it on retry, which is how a
    /// restarted daemon on a fresh ephemeral port is re-discovered.
    pub addr_file: Option<PathBuf>,
    /// Result-cache directory (`None` disables caching — every submit
    /// executes).
    pub cache: Option<PathBuf>,
    /// Resident worker threads.
    pub workers: usize,
    /// Admission bound: queued (not yet running) jobs beyond this are
    /// shed with `Overloaded`.
    pub queue_capacity: usize,
    /// Deadline applied to submits that do not carry their own
    /// (`None` = no default deadline).
    pub default_deadline_ms: Option<u64>,
    /// Drain journal path (`None` disables journaling: queued cells are
    /// refused at drain but not persisted).
    pub journal: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            addr_file: None,
            cache: Some(PathBuf::from("results/cache")),
            workers: crate::engine::default_workers(),
            queue_capacity: 256,
            default_deadline_ms: None,
            journal: Some(PathBuf::from("results/serve/journal.jsonl")),
        }
    }
}

/// What a job's owning connection receives while it is in flight: zero
/// or more advisory progress notes, then exactly one terminal reply.
enum JobEvent {
    Note(Notification),
    Final(Reply),
}

/// One admitted, not-yet-finished unit of work.
struct Job {
    config: CellConfig,
    deadline: Option<Deadline>,
    /// Where progress notes and the (exactly one) terminal reply go.
    /// Journal-replay jobs hold a sender whose receiver is dropped —
    /// their sends are no-ops.
    events: mpsc::Sender<JobEvent>,
}

impl Job {
    /// Sends the terminal reply (best-effort: the client may be gone).
    fn finish(&self, reply: Reply) {
        let _ = self.events.send(JobEvent::Final(reply));
    }
}

/// Removes queued jobs whose deadline has passed (the generic drain
/// lives in [`Admission::drain_where`]).
fn drain_expired(adm: &mut Admission<Job>) -> Vec<Job> {
    adm.drain_where(|job| job.deadline.is_some_and(|d| d.expired()))
}

/// Everything the daemon's threads share.
struct Shared {
    admission: Mutex<Admission<Job>>,
    work_ready: Condvar,
    cache: Option<ResultCache>,
    opts: ServeOptions,
    hits: AtomicU64,
    misses: AtomicU64,
    timeouts: AtomicU64,
    rejected: AtomicU64,
    quarantined: AtomicU64,
    /// Deadlines of in-flight runs, scanned by the timer thread; the
    /// handle is raised when the deadline passes, stopping the run.
    inflight_deadlines: Mutex<BTreeMap<u64, (Deadline, AbortHandle)>>,
    next_deadline_id: AtomicU64,
    /// Set once the drain has fully completed; stops the timer thread.
    stopped: AtomicBool,
}

impl Shared {
    fn admission(&self) -> MutexGuard<'_, Admission<Job>> {
        self.admission.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn status(&self) -> ServiceStatus {
        let adm = self.admission();
        ServiceStatus {
            queued: adm.queued() as u64,
            in_flight: adm.in_flight as u64,
            // sync: Relaxed — independent monotone counters; a snapshot
            // is advisory (stats line), so cross-counter skew is fine.
            hits: self.hits.load(Ordering::Relaxed), // sync: relaxed stat counter
            misses: self.misses.load(Ordering::Relaxed), // sync: relaxed stat counter
            timeouts: self.timeouts.load(Ordering::Relaxed), // sync: relaxed stat counter
            rejected: self.rejected.load(Ordering::Relaxed), // sync: relaxed stat counter
            quarantined: self.quarantined.load(Ordering::Relaxed), // sync: relaxed stat counter
            draining: adm.draining,
        }
    }

    /// Flips the daemon into draining (idempotent): queued jobs are
    /// journaled and their clients told to go elsewhere. Returns how
    /// many cells were journaled.
    fn initiate_drain(&self) -> u64 {
        let jobs = {
            let mut adm = self.admission();
            if adm.draining {
                return 0;
            }
            adm.draining = true;
            let jobs = adm.drain_all();
            self.work_ready.notify_all();
            jobs
        };
        let configs: Vec<CellConfig> = jobs.iter().map(|j| j.config.clone()).collect();
        let journaled = match &self.opts.journal {
            Some(path) => match journal::write(path, &configs) {
                Ok(()) => configs.len() as u64,
                Err(e) => {
                    eprintln!("serve: cannot journal {} queued cell(s): {e}", configs.len());
                    0
                }
            },
            None => 0,
        };
        for job in jobs {
            job.finish(Reply::Draining);
        }
        journaled
    }

    /// Cache lookup with quarantine-on-corruption. `Ok(None)` is a
    /// plain miss.
    fn cache_load(&self, config: &CellConfig) -> Option<CellRecord> {
        let cache = self.cache.as_ref()?;
        if !config.cacheable() {
            return None;
        }
        match cache.load(config) {
            Ok(record) => Some(record),
            Err(CacheMiss::Absent) => None,
            Err(CacheMiss::HashMismatch(why) | CacheMiss::Malformed(why)) => {
                match cache.quarantine(config) {
                    Ok(true) => {
                        // sync: Relaxed — monotone stat counter, not
                        // an ordering edge; readers tolerate skew.
                        self.quarantined.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "serve: quarantined corrupt cache entry {} ({why})",
                            config.content_hash()
                        );
                    }
                    Ok(false) => {}
                    Err(e) => eprintln!(
                        "serve: corrupt cache entry {} ({why}) could not be quarantined: {e}",
                        config.content_hash()
                    ),
                }
                None
            }
            Err(CacheMiss::Unreadable(e)) => {
                eprintln!(
                    "serve: cache entry {} unreadable ({e}); re-running",
                    config.content_hash()
                );
                None
            }
        }
    }
}

/// Runs the daemon until it has gracefully drained. Returns after the
/// last in-flight cell finished and queued cells were journaled.
pub fn serve(opts: ServeOptions) -> io::Result<()> {
    let cache = opts.cache.as_ref().map(ResultCache::new);
    if let Some(cache) = &cache {
        match cache.gc_stale_tmp() {
            Ok(0) => {}
            Ok(n) => eprintln!("serve: collected {n} orphaned .tmp cache file(s)"),
            Err(e) => eprintln!("serve: cannot sweep stale .tmp files: {e} (continuing)"),
        }
    }

    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    if let Some(path) = &opts.addr_file {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, format!("{bound}\n"))?;
    }
    sig::install();

    let shared = Arc::new(Shared {
        // sync: the admission queue is the daemon's one blocking lock;
        // `work_ready` is only ever waited on while holding it, and no
        // other lock is taken inside that critical section.
        admission: Mutex::new(Admission::default()),
        work_ready: Condvar::new(), // sync: paired with `admission` above
        cache,
        opts: opts.clone(),
        hits: AtomicU64::new(0), // sync: relaxed stat counter
        misses: AtomicU64::new(0), // sync: relaxed stat counter
        timeouts: AtomicU64::new(0), // sync: relaxed stat counter
        rejected: AtomicU64::new(0), // sync: relaxed stat counter
        quarantined: AtomicU64::new(0), // sync: relaxed stat counter
        // sync: leaf lock — deadline registration/expiry never takes
        // `admission` (or any other lock) while holding it.
        inflight_deadlines: Mutex::new(BTreeMap::new()),
        next_deadline_id: AtomicU64::new(0), // sync: relaxed unique-ID source
        stopped: AtomicBool::new(false), // sync: SeqCst stop flag, see `store`
    });

    replay_journal(&shared);

    let workers: Vec<_> = (0..opts.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<io::Result<_>>()?;
    let timer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-deadline-timer".into())
            .spawn(move || deadline_timer_loop(&shared))?
    };

    eprintln!(
        "serve: listening on {bound} ({} workers, queue bound {})",
        opts.workers.max(1),
        opts.queue_capacity
    );

    // The accept loop: non-blocking polls so drain requests (from a
    // handler thread) and signals are noticed within one poll interval.
    let mut next_conn_id: u64 = 1;
    loop {
        if sig::termed() {
            let journaled = shared.initiate_drain();
            eprintln!("serve: signal received; draining ({journaled} cell(s) journaled)");
        }
        if shared.admission().draining {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                std::thread::Builder::new()
                    .name(format!("serve-conn-{conn_id}"))
                    .spawn(move || handle_connection(&shared, stream, conn_id))?;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                eprintln!("serve: accept failed: {e}; draining");
                shared.initiate_drain();
            }
        }
    }

    // Drain: workers exit once the (already emptied) queue stays empty;
    // their current cells finish and answer first.
    for worker in workers {
        let _ = worker.join();
    }
    // sync: SeqCst — the stop flag must be globally ordered against the
    // admission drain it races with on shutdown, so a worker that misses
    // the flag still observes the drained queue (and vice versa).
    shared.stopped.store(true, Ordering::SeqCst);
    let _ = timer.join();
    if let Some(path) = &opts.addr_file {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("serve: drained, exiting");
    Ok(())
}

/// Re-admits journaled cells from a previous daemon's drain. Their
/// results go to the shared cache; nobody waits on a reply. The journal
/// file itself is only rewritten at the *next* drain — replay is
/// idempotent through the cache, so an already-replayed journal costs
/// verified hits, never duplicate work.
fn replay_journal(shared: &Arc<Shared>) {
    let Some(path) = &shared.opts.journal else { return };
    match journal::load(path) {
        Ok(cells) if cells.is_empty() => {}
        Ok(cells) => {
            eprintln!("serve: replaying {} journaled cell(s)", cells.len());
            let (tx, _discarded_rx) = mpsc::channel();
            let mut adm = shared.admission();
            for config in cells {
                // Served from cache if a sibling already finished it.
                if let Some(_record) = shared.cache_load(&config) {
                    // sync: Relaxed — monotone stat counter.
                    shared.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                adm.push(0, Job { config, deadline: None, events: tx.clone() });
            }
            shared.work_ready.notify_all();
        }
        Err(e) => eprintln!("serve: cannot replay journal: {e} (continuing without it)"),
    }
}

/// One connection: newline-delimited requests, one reply line each.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // peer closed (or broke) the connection
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match Request::from_line(&line) {
            Err(e) => Reply::Invalid { detail: e.to_string() },
            Ok(Request::Ping) => Reply::Pong,
            Ok(Request::Status) => Reply::Status(shared.status()),
            Ok(Request::Shutdown) => {
                Reply::ShuttingDown { journaled: shared.initiate_drain() }
            }
            Ok(Request::Submit { config, deadline_ms }) => {
                handle_submit(shared, config, deadline_ms, conn_id, &mut writer)
            }
        };
        let out = reply.to_json().to_string_compact() + "\n";
        if writer.write_all(out.as_bytes()).and_then(|()| writer.flush()).is_err() {
            return;
        }
    }
}

/// Writes one progress-note line. Best-effort by design: the note is
/// advisory, so a failed write is reported to the caller only so it can
/// stop bothering a dead socket.
fn write_note(writer: &mut impl Write, note: &Notification) -> io::Result<()> {
    let line = note.to_json().to_string_compact() + "\n";
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// The submit path: cache hit inline (one reply line, no notes), miss
/// through the bounded queue with queued/running/done notes streamed to
/// `writer` ahead of the terminal reply.
fn handle_submit(
    shared: &Arc<Shared>,
    config: CellConfig,
    deadline_ms: Option<u64>,
    conn_id: u64,
    writer: &mut impl Write,
) -> Reply {
    if let Some(record) = shared.cache_load(&config) {
        shared.hits.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
        return Reply::Result {
            hash: config.content_hash(),
            record: Box::new(record),
            cached: true,
            wall_nanos: 0,
        };
    }

    let deadline = deadline_ms.or(shared.opts.default_deadline_ms).map(Deadline::after_ms);
    let hash = config.content_hash();
    let (tx, rx) = mpsc::channel();
    let ahead = {
        let mut adm = shared.admission();
        if adm.draining {
            return Reply::Draining;
        }
        if adm.queued() >= shared.opts.queue_capacity {
            shared.rejected.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
            // Honest heuristic: the fuller the queue per worker, the
            // longer the suggested backoff.
            let per_worker = adm.queued() / shared.opts.workers.max(1);
            return Reply::Overloaded { retry_after_ms: 25 * (1 + per_worker as u64) };
        }
        let ahead = adm.queued() as u64;
        adm.push(conn_id, Job { config, deadline, events: tx });
        self::notify_one(shared);
        ahead
    };
    // The queued note is written outside the admission lock: socket I/O
    // must never extend the daemon's one blocking critical section. The
    // channel buffers any worker events racing this write, so the wire
    // order stays queued → running → done → reply.
    let mut socket_alive = write_note(writer, &Notification::Queued { hash, ahead }).is_ok();
    // The worker (or the deadline timer, or a drain) always finishes.
    loop {
        match rx.recv() {
            Ok(JobEvent::Note(note)) => {
                if socket_alive {
                    socket_alive = write_note(writer, &note).is_ok();
                }
            }
            Ok(JobEvent::Final(reply)) => return reply,
            Err(_) => {
                return Reply::Failed { detail: "worker vanished without a reply".into() }
            }
        }
    }
}

fn notify_one(shared: &Shared) {
    shared.work_ready.notify_one();
}

/// A resident worker: pop round-robin, honor deadlines, run, store,
/// reply. Exits when draining and no job is claimable.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut adm = shared.admission();
            loop {
                if let Some(job) = adm.pop_next() {
                    adm.in_flight += 1;
                    break job;
                }
                if adm.draining {
                    return;
                }
                adm = shared
                    .work_ready
                    .wait(adm)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let hash = job.config.content_hash();
        let _ = job.events.send(JobEvent::Note(Notification::Running { hash: hash.clone() }));
        let reply = run_job(shared, &job);
        if let Reply::Result { wall_nanos, cached: false, .. } = &reply {
            let _ = job
                .events
                .send(JobEvent::Note(Notification::Done { hash, wall_nanos: *wall_nanos }));
        }
        job.finish(reply);
        let mut adm = shared.admission();
        adm.in_flight -= 1;
    }
}

/// Executes one job with deadline enforcement and panic isolation.
fn run_job(shared: &Arc<Shared>, job: &Job) -> Reply {
    if let Some(deadline) = job.deadline {
        if deadline.expired() {
            shared.timeouts.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
            return Reply::Timeout {
                detail: "deadline passed while queued; the cell never ran".into(),
            };
        }
    }
    let abort = AbortHandle::new();
    let registration = job.deadline.map(|deadline| {
        // sync: Relaxed — fetch_add is atomic at any ordering, and
        // uniqueness of the ID is all this needs; nothing is published.
        let id = shared.next_deadline_id.fetch_add(1, Ordering::Relaxed);
        shared
            .inflight_deadlines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, (deadline, abort.clone()));
        id
    });

    let clock = HarnessClock::start();
    let experiment = job.config.to_experiment().abort_on(abort);
    let outcome = catch_unwind(AssertUnwindSafe(move || experiment.run()));
    let wall_nanos = clock.elapsed_nanos();

    if let Some(id) = registration {
        shared
            .inflight_deadlines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id);
    }

    match outcome {
        Ok(Ok(fresh)) => {
            shared.misses.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
            let record = CellRecord::from_result(&fresh);
            if let Some(cache) = &shared.cache {
                if job.config.cacheable() {
                    if let Err(e) = cache.store(&job.config, &record) {
                        eprintln!(
                            "serve: cannot cache {}: {e} (continuing)",
                            job.config.content_hash()
                        );
                    }
                }
            }
            Reply::Result {
                hash: job.config.content_hash(),
                record: Box::new(record),
                cached: false,
                wall_nanos,
            }
        }
        Ok(Err(SimError::Aborted { cycle })) => {
            shared.timeouts.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
            Reply::Timeout {
                detail: format!(
                    "deadline passed mid-run; simulation stopped at cycle {}",
                    cycle.as_u64()
                ),
            }
        }
        Ok(Err(e)) => Reply::Failed { detail: e.to_string() },
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Reply::Failed { detail: format!("cell panicked: {detail}") }
        }
    }
}

/// The deadline enforcer: every few milliseconds, raise the abort
/// handle of any in-flight run whose deadline passed, and answer queued
/// jobs whose deadline passed without making them wait for a worker.
fn deadline_timer_loop(shared: &Arc<Shared>) {
    // sync: SeqCst — pairs with the shutdown `store`; see that site.
    while !shared.stopped.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(5));
        {
            let mut inflight = shared
                .inflight_deadlines
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (deadline, handle) in inflight.values_mut() {
                if deadline.expired() {
                    handle.abort();
                }
            }
        }
        let expired = drain_expired(&mut shared.admission());
        for job in expired {
            shared.timeouts.fetch_add(1, Ordering::Relaxed); // sync: relaxed stat counter
            job.finish(Reply::Timeout {
                detail: "deadline passed while queued; the cell never ran".into(),
            });
        }
    }
}

/// Signal handling (std-only): SIGTERM/SIGINT set a flag the accept
/// loop polls; everything else about the drain happens on ordinary
/// threads, so the handler body is a single async-signal-safe store.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    // sync: signal-handler flag — written from a signal context where
    // only atomics are async-signal-safe; SeqCst keeps it simple.
    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst); // sync: see TERM declaration
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst) // sync: see TERM declaration
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn termed() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Round-robin / drain-all behavior is covered generically in
    // `crate::admission`; here only the serve-specific deadline
    // predicate is tested.
    #[test]
    fn expired_queued_jobs_are_separated_from_live_ones() {
        let mut adm: Admission<Job> = Admission::default();
        let (tx, _rx) = mpsc::channel();
        for (conn, deadline) in [
            (1u64, Some(Deadline::after_ms(0))),
            (1, None),
            (2, Some(Deadline::after_ms(3_600_000))),
        ] {
            adm.push(
                conn,
                Job { config: CellConfig::benchmark("freq"), deadline, events: tx.clone() },
            );
        }
        std::thread::sleep(Duration::from_millis(2));
        let expired = drain_expired(&mut adm);
        assert_eq!(expired.len(), 1);
        assert_eq!(adm.queued(), 2, "undeadlined and future-deadlined jobs stay");
    }
}
