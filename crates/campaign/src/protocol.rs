//! The campaign-service wire protocol: newline-delimited JSON over a
//! localhost TCP stream (std-only, matching the workspace's no-deps
//! style; the same framing would work over a Unix socket).
//!
//! One request per line, one reply per line, in order. Success replies
//! carry an `"ok"` discriminant, error replies an `"err"` discriminant,
//! so a client can classify a reply without knowing every variant. All
//! payloads reuse the campaign crate's canonical encodings
//! ([`CellConfig::to_json`], [`CellRecord::to_json`]), which is what
//! lets `inpg submit` reassemble merged artifacts byte-identical to the
//! in-process engine's.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"status"}
//! {"op":"shutdown"}
//! {"op":"submit","deadline_ms":1500,"config":{...canonical cell config...}}
//! ```
//!
//! Replies (one of):
//!
//! ```text
//! {"ok":"pong"}
//! {"ok":"result","hash":"<16 hex>","cached":true,"wall_nanos":0,"record":{...}}
//! {"ok":"status","queued":0,"in_flight":1,...}
//! {"ok":"shutting-down","journaled":3}
//! {"err":"timeout","detail":"..."}          deadline passed (typed, per request)
//! {"err":"overloaded","retry_after_ms":50}  admission queue full — back off
//! {"err":"draining"}                        daemon is shutting down, resubmit later
//! {"err":"failed","detail":"..."}           the cell's simulation errored
//! {"err":"invalid","detail":"..."}          unparseable or malformed request
//! ```
//!
//! A submit that misses the cache may additionally stream progress
//! *notes* before its terminal reply — zero or more lines carrying a
//! `"note"` discriminant, pushed on the same connection:
//!
//! ```text
//! {"note":"queued","hash":"<16 hex>","ahead":3}   admitted; 3 jobs queued ahead
//! {"note":"running","hash":"<16 hex>"}            a worker picked it up
//! {"note":"done","hash":"<16 hex>","wall_nanos":12345}  simulation finished
//! ```
//!
//! Notes are advisory: a client may ignore every one of them and just
//! wait for the `"ok"`/`"err"` line ([`ServerLine`] does the
//! classification). Cache hits and error replies arrive with no notes
//! at all, so the warm path stays a single-line exchange.

use crate::cell::{CellConfig, CellRecord, SchemaError};
use crate::json::{self, Json};

/// A client-to-daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Service counters and queue depths.
    Status,
    /// Begin a graceful drain: finish in-flight cells, journal queued
    /// ones, refuse new work, exit.
    Shutdown,
    /// Run (or serve from cache) one cell.
    Submit {
        config: CellConfig,
        /// Per-request deadline in milliseconds, measured from
        /// admission. `None` uses the daemon's default (which may be
        /// unlimited).
        deadline_ms: Option<u64>,
    },
}

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj(vec![("op", Json::Str("ping".into()))]),
            Request::Status => Json::obj(vec![("op", Json::Str("status".into()))]),
            Request::Shutdown => Json::obj(vec![("op", Json::Str("shutdown".into()))]),
            Request::Submit { config, deadline_ms } => Json::obj(vec![
                ("op", Json::Str("submit".into())),
                (
                    "deadline_ms",
                    deadline_ms.map_or(Json::Null, Json::UInt),
                ),
                ("config", config.to_json()),
            ]),
        }
    }

    /// Parses one request line.
    pub fn from_line(line: &str) -> Result<Self, SchemaError> {
        let v = json::parse(line)?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError("request has no op".into()))?;
        match op {
            "ping" => Ok(Request::Ping),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let config = v
                    .get("config")
                    .ok_or_else(|| SchemaError("submit has no config".into()))?;
                let deadline_ms = match v.get("deadline_ms") {
                    None | Some(Json::Null) => None,
                    Some(j) => Some(
                        j.as_u64()
                            .ok_or_else(|| SchemaError("bad deadline_ms".into()))?,
                    ),
                };
                Ok(Request::Submit { config: CellConfig::from_json(config)?, deadline_ms })
            }
            other => Err(SchemaError(format!("unknown op `{other}`"))),
        }
    }
}

/// Service counters reported by [`Reply::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Jobs admitted but not yet started.
    pub queued: u64,
    /// Jobs currently executing on the resident pool.
    pub in_flight: u64,
    /// Requests answered from the verified cache.
    pub hits: u64,
    /// Requests that executed a simulator.
    pub misses: u64,
    /// Requests that hit their deadline (queued or mid-run).
    pub timeouts: u64,
    /// Requests shed at the admission bound.
    pub rejected: u64,
    /// Corrupt cache entries quarantined since startup.
    pub quarantined: u64,
    /// Whether the daemon is refusing new work.
    pub draining: bool,
}

impl ServiceStatus {
    fn to_json_fields(self) -> Vec<(&'static str, Json)> {
        vec![
            ("queued", Json::UInt(self.queued)),
            ("in_flight", Json::UInt(self.in_flight)),
            ("hits", Json::UInt(self.hits)),
            ("misses", Json::UInt(self.misses)),
            ("timeouts", Json::UInt(self.timeouts)),
            ("rejected", Json::UInt(self.rejected)),
            ("quarantined", Json::UInt(self.quarantined)),
            ("draining", Json::Bool(self.draining)),
        ]
    }

    fn from_json(v: &Json) -> Result<Self, SchemaError> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| SchemaError(format!("status missing `{key}`")))
        };
        Ok(ServiceStatus {
            queued: field("queued")?,
            in_flight: field("in_flight")?,
            hits: field("hits")?,
            misses: field("misses")?,
            timeouts: field("timeouts")?,
            rejected: field("rejected")?,
            quarantined: field("quarantined")?,
            draining: v
                .get("draining")
                .and_then(Json::as_bool)
                .ok_or_else(|| SchemaError("status missing `draining`".into()))?,
        })
    }
}

/// A daemon-to-client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    Pong,
    /// The cell's verified record (boxed: it dwarfs every other
    /// variant).
    Result {
        /// The cell config's content hash (its cache address).
        hash: String,
        record: Box<CellRecord>,
        /// Whether the record came from the cache (no simulator ran for
        /// this request).
        cached: bool,
        /// Wall nanoseconds this request spent executing (0 on a hit).
        wall_nanos: u64,
    },
    Status(ServiceStatus),
    /// Acknowledges a shutdown request; `journaled` cells were persisted
    /// for the next daemon to replay.
    ShuttingDown { journaled: u64 },
    /// The request's deadline passed (while queued, or mid-run via a
    /// raised abort handle).
    Timeout { detail: String },
    /// Shed at the admission bound; retry after the given backoff.
    Overloaded { retry_after_ms: u64 },
    /// The daemon is draining and accepts no new work.
    Draining,
    /// The cell's simulation failed (config/stall/invariant error).
    Failed { detail: String },
    /// The request line could not be understood.
    Invalid { detail: String },
}

impl Reply {
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Pong => Json::obj(vec![("ok", Json::Str("pong".into()))]),
            Reply::Result { hash, record, cached, wall_nanos } => Json::obj(vec![
                ("ok", Json::Str("result".into())),
                ("hash", Json::Str(hash.clone())),
                ("cached", Json::Bool(*cached)),
                ("wall_nanos", Json::UInt(*wall_nanos)),
                ("record", record.to_json()),
            ]),
            Reply::Status(status) => {
                let mut fields = vec![("ok", Json::Str("status".into()))];
                fields.extend(status.to_json_fields());
                Json::obj(fields)
            }
            Reply::ShuttingDown { journaled } => Json::obj(vec![
                ("ok", Json::Str("shutting-down".into())),
                ("journaled", Json::UInt(*journaled)),
            ]),
            Reply::Timeout { detail } => Json::obj(vec![
                ("err", Json::Str("timeout".into())),
                ("detail", Json::Str(detail.clone())),
            ]),
            Reply::Overloaded { retry_after_ms } => Json::obj(vec![
                ("err", Json::Str("overloaded".into())),
                ("retry_after_ms", Json::UInt(*retry_after_ms)),
            ]),
            Reply::Draining => Json::obj(vec![("err", Json::Str("draining".into()))]),
            Reply::Failed { detail } => Json::obj(vec![
                ("err", Json::Str("failed".into())),
                ("detail", Json::Str(detail.clone())),
            ]),
            Reply::Invalid { detail } => Json::obj(vec![
                ("err", Json::Str("invalid".into())),
                ("detail", Json::Str(detail.clone())),
            ]),
        }
    }

    /// Parses one reply line.
    pub fn from_line(line: &str) -> Result<Self, SchemaError> {
        let v = json::parse(line)?;
        let detail = |v: &Json| {
            v.get("detail")
                .and_then(Json::as_str)
                .unwrap_or("(no detail)")
                .to_string()
        };
        if let Some(ok) = v.get("ok").and_then(Json::as_str) {
            return match ok {
                "pong" => Ok(Reply::Pong),
                "result" => Ok(Reply::Result {
                    hash: v
                        .get("hash")
                        .and_then(Json::as_str)
                        .ok_or_else(|| SchemaError("result has no hash".into()))?
                        .to_string(),
                    record: Box::new(CellRecord::from_json(
                        v.get("record")
                            .ok_or_else(|| SchemaError("result has no record".into()))?,
                    )?),
                    cached: v
                        .get("cached")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| SchemaError("result has no cached".into()))?,
                    wall_nanos: v.get("wall_nanos").and_then(Json::as_u64).unwrap_or(0),
                }),
                "status" => Ok(Reply::Status(ServiceStatus::from_json(&v)?)),
                "shutting-down" => Ok(Reply::ShuttingDown {
                    journaled: v.get("journaled").and_then(Json::as_u64).unwrap_or(0),
                }),
                other => Err(SchemaError(format!("unknown ok reply `{other}`"))),
            };
        }
        if let Some(err) = v.get("err").and_then(Json::as_str) {
            return match err {
                "timeout" => Ok(Reply::Timeout { detail: detail(&v) }),
                "overloaded" => Ok(Reply::Overloaded {
                    retry_after_ms: v
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(50),
                }),
                "draining" => Ok(Reply::Draining),
                "failed" => Ok(Reply::Failed { detail: detail(&v) }),
                "invalid" => Ok(Reply::Invalid { detail: detail(&v) }),
                other => Err(SchemaError(format!("unknown err reply `{other}`"))),
            };
        }
        Err(SchemaError("reply has neither ok nor err".into()))
    }
}

/// A progress note a daemon pushes for an in-flight cache miss, ahead
/// of the terminal [`Reply`] on the same connection. Purely advisory:
/// clients that only read the terminal line still work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// The job passed admission; `ahead` jobs were queued before it.
    Queued { hash: String, ahead: u64 },
    /// A worker thread picked the job up.
    Running { hash: String },
    /// The simulation finished (the result line follows).
    Done { hash: String, wall_nanos: u64 },
}

impl Notification {
    /// The content hash of the cell the note is about.
    pub fn hash(&self) -> &str {
        match self {
            Notification::Queued { hash, .. }
            | Notification::Running { hash }
            | Notification::Done { hash, .. } => hash,
        }
    }

    pub fn to_json(&self) -> Json {
        match self {
            Notification::Queued { hash, ahead } => Json::obj(vec![
                ("note", Json::Str("queued".into())),
                ("hash", Json::Str(hash.clone())),
                ("ahead", Json::UInt(*ahead)),
            ]),
            Notification::Running { hash } => Json::obj(vec![
                ("note", Json::Str("running".into())),
                ("hash", Json::Str(hash.clone())),
            ]),
            Notification::Done { hash, wall_nanos } => Json::obj(vec![
                ("note", Json::Str("done".into())),
                ("hash", Json::Str(hash.clone())),
                ("wall_nanos", Json::UInt(*wall_nanos)),
            ]),
        }
    }

    /// Parses one note line.
    pub fn from_line(line: &str) -> Result<Self, SchemaError> {
        let v = json::parse(line)?;
        let note = v
            .get("note")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError("line has no note".into()))?;
        let hash = v
            .get("hash")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError("note has no hash".into()))?
            .to_string();
        match note {
            "queued" => Ok(Notification::Queued {
                hash,
                ahead: v.get("ahead").and_then(Json::as_u64).unwrap_or(0),
            }),
            "running" => Ok(Notification::Running { hash }),
            "done" => Ok(Notification::Done {
                hash,
                wall_nanos: v.get("wall_nanos").and_then(Json::as_u64).unwrap_or(0),
            }),
            other => Err(SchemaError(format!("unknown note `{other}`"))),
        }
    }
}

/// One classified line of a daemon's response stream: either an
/// advisory progress [`Notification`] or the terminal [`Reply`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServerLine {
    Note(Notification),
    Reply(Reply),
}

impl ServerLine {
    /// Classifies one line. The `"note"` discriminant is checked first,
    /// so a stream reader can loop over lines without knowing whether
    /// the daemon streams progress at all.
    pub fn from_line(line: &str) -> Result<Self, SchemaError> {
        let v = json::parse(line)?;
        if v.get("note").is_some() {
            return Notification::from_line(line).map(ServerLine::Note);
        }
        Reply::from_line(line).map(ServerLine::Reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inpg::Mechanism;

    fn roundtrip_request(req: Request) {
        let line = req.to_json().to_string_compact();
        assert_eq!(Request::from_line(&line).expect("parses"), req, "{line}");
    }

    fn roundtrip_reply(reply: Reply) {
        let line = reply.to_json().to_string_compact();
        assert_eq!(Reply::from_line(&line).expect("parses"), reply, "{line}");
    }

    fn sample_record() -> CellRecord {
        let mut config = CellConfig::hot_lock(1, 40, 20);
        config.width = 2;
        config.height = 2;
        config.max_cycles = 1_000_000;
        let result = config.to_experiment().run().expect("valid experiment");
        CellRecord::from_result(&result)
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Status);
        roundtrip_request(Request::Shutdown);
        let mut config = CellConfig::benchmark("freq");
        config.mechanism = Mechanism::Inpg;
        config.seed = 99;
        roundtrip_request(Request::Submit { config: config.clone(), deadline_ms: None });
        roundtrip_request(Request::Submit { config, deadline_ms: Some(1500) });
    }

    #[test]
    fn replies_roundtrip() {
        roundtrip_reply(Reply::Pong);
        roundtrip_reply(Reply::Result {
            hash: "00ff00ff00ff00ff".into(),
            record: Box::new(sample_record()),
            cached: true,
            wall_nanos: 0,
        });
        roundtrip_reply(Reply::Status(ServiceStatus {
            queued: 3,
            in_flight: 2,
            hits: 10,
            misses: 4,
            timeouts: 1,
            rejected: 7,
            quarantined: 1,
            draining: true,
        }));
        roundtrip_reply(Reply::ShuttingDown { journaled: 5 });
        roundtrip_reply(Reply::Timeout { detail: "deadline 10ms passed".into() });
        roundtrip_reply(Reply::Overloaded { retry_after_ms: 75 });
        roundtrip_reply(Reply::Draining);
        roundtrip_reply(Reply::Failed { detail: "stall".into() });
        roundtrip_reply(Reply::Invalid { detail: "no op".into() });
    }

    #[test]
    fn garbage_lines_are_schema_errors() {
        assert!(Request::from_line("not json").is_err());
        assert!(Request::from_line("{\"op\":\"fly\"}").is_err());
        assert!(Reply::from_line("{}").is_err());
        assert!(Reply::from_line("{\"ok\":\"victory\"}").is_err());
    }

    #[test]
    fn notes_roundtrip() {
        for note in [
            Notification::Queued { hash: "00ff00ff00ff00ff".into(), ahead: 3 },
            Notification::Running { hash: "00ff00ff00ff00ff".into() },
            Notification::Done { hash: "00ff00ff00ff00ff".into(), wall_nanos: 12_345 },
        ] {
            let line = note.to_json().to_string_compact();
            assert_eq!(Notification::from_line(&line).expect("parses"), note, "{line}");
            assert_eq!(note.hash(), "00ff00ff00ff00ff");
        }
        assert!(Notification::from_line("{\"note\":\"paused\",\"hash\":\"x\"}").is_err());
        assert!(Notification::from_line("{\"note\":\"done\"}").is_err(), "hash required");
    }

    #[test]
    fn server_lines_classify_notes_before_replies() {
        let note = Notification::Running { hash: "ab".into() };
        assert_eq!(
            ServerLine::from_line(&note.to_json().to_string_compact()).expect("parses"),
            ServerLine::Note(note)
        );
        assert_eq!(
            ServerLine::from_line("{\"ok\":\"pong\"}").expect("parses"),
            ServerLine::Reply(Reply::Pong)
        );
        assert_eq!(
            ServerLine::from_line("{\"err\":\"draining\"}").expect("parses"),
            ServerLine::Reply(Reply::Draining)
        );
        assert!(ServerLine::from_line("{}").is_err());
    }
}
