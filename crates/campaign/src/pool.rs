//! A hand-rolled, std-only work-stealing thread pool for campaign
//! cells.
//!
//! The claiming discipline (own deque LIFO, then injector chunk, then
//! sibling steal FIFO) lives in [`deque::StealDeques`](crate::deque) —
//! extracted there so the owner-pop vs steal race is model-checkable
//! under loom. This module owns what is pool-specific: the worker
//! scope, result slots, and panic isolation. A fig15 16×16-mesh cell
//! can cost 100× a 2×2 cell, which is why the chunked-claim + steal
//! balance matters.
//!
//! The pool is deliberately order-oblivious: results are written to
//! their task's slot, and the campaign engine re-emits everything in
//! canonical cell order, which is what makes 1-worker and N-worker runs
//! byte-identical downstream. No wall clock in here — timing belongs to
//! the engine's harness boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::deque::StealDeques;

/// Runs `task(i)` for every `i in 0..n` on `workers` threads, returning
/// the results indexed by task. `workers` is clamped to `1..=n` (a
/// zero-cell run spawns nothing).
pub fn run_indexed<T, F>(n: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    // sync: the work mutexes live in StealDeques; slots are a third,
    // independent family — a worker holds at most one of {injector, one
    // deque, one slot} at a time (claim, then release, then execute),
    // so no lock-order cycle exists.
    let work = StealDeques::new(n, workers);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect(); // sync: see above

    std::thread::scope(|scope| {
        for me in 0..workers {
            let work = &work;
            let slots = &slots;
            let task = &task;
            scope.spawn(move || {
                while let Some(index) = work.next_for(me) {
                    let result = task(index);
                    *lock_clean(&slots[index]) = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            lock_clean(&slot)
                .take()
                .unwrap_or_else(|| unreachable!("every task index is executed exactly once"))
        })
        .collect()
}

/// Like [`run_indexed`], but each task runs under `catch_unwind`: a
/// panicking task yields `Err` with its panic message while every other
/// task still runs to completion. One poisoned cell must not wedge the
/// pool or discard the results its siblings already computed.
pub fn run_indexed_isolated<T, F>(
    n: usize,
    workers: usize,
    task: F,
) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n, workers, |i| {
        catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string())
        })
    })
}

/// Locks a mutex; poisoning cannot happen because a panicking task
/// unwinds through `thread::scope`, aborting the whole campaign before
/// anyone re-locks.
fn lock_clean<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_index_exactly_once() {
        for workers in [1, 2, 8, 64] {
            let counter = AtomicUsize::new(0);
            let results = run_indexed(37, workers, |i| {
                counter.fetch_add(1, Ordering::SeqCst);
                i * i
            });
            assert_eq!(counter.load(Ordering::SeqCst), 37, "workers={workers}");
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn imbalanced_tasks_are_stolen_across_workers() {
        // One pathological task plus many cheap ones: with 4 workers the
        // cheap tail must not serialize behind the expensive head. The
        // head task blocks until a sibling has finished a cheap task, so
        // the spread is guaranteed even on a single-CPU machine (where a
        // busy-loop head can otherwise drain the whole injector inside
        // its first scheduling quantum).
        let ran_on: Vec<Mutex<Option<std::thread::ThreadId>>> =
            (0..64).map(|_| Mutex::new(None)).collect();
        let cheap_done = AtomicUsize::new(0);
        run_indexed(64, 4, |i| {
            *ran_on[i].lock().unwrap() = Some(std::thread::current().id());
            if i == 0 {
                while cheap_done.load(Ordering::SeqCst) == 0 {
                    std::thread::yield_now();
                }
            } else {
                cheap_done.fetch_add(1, Ordering::SeqCst);
            }
        });
        let distinct: std::collections::BTreeSet<_> = ran_on
            .iter()
            .map(|m| format!("{:?}", m.lock().unwrap().expect("ran")))
            .collect();
        assert!(distinct.len() > 1, "work must spread across threads");
    }

    #[test]
    fn a_panicking_task_is_isolated_and_the_rest_complete() {
        let results = run_indexed_isolated(16, 4, |i| {
            assert!(i != 5, "task five exploded");
            i * 2
        });
        for (i, r) in results.iter().enumerate() {
            match r {
                Ok(v) if i != 5 => assert_eq!(*v, i * 2),
                Err(msg) if i == 5 => assert!(msg.contains("task five exploded"), "{msg}"),
                other => panic!("slot {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn zero_and_singleton_inputs() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_keep_task_order_regardless_of_finish_order() {
        // Make later tasks finish first by giving early tasks more work.
        let results = run_indexed(16, 4, |i| {
            let mut acc = i as u64;
            for k in 0..(16 - i as u64) * 50_000 {
                acc = acc.wrapping_add(k ^ acc);
            }
            (i, acc)
        });
        for (slot, (i, _)) in results.iter().enumerate() {
            assert_eq!(slot, *i);
        }
    }
}
