//! The campaign engine: resolves cells against the content-addressed
//! cache, executes the misses on the work-stealing pool, and merges
//! everything back in canonical cell order.
//!
//! # Determinism argument
//!
//! Each cell owns its own seeded simulator, so a cell's
//! [`CellRecord`] is a pure function of its [`CellConfig`] — worker
//! count and scheduling order cannot change it. The merged artifact is
//! written in canonical (campaign-definition) order from those records
//! only, so a 1-worker run, an N-worker run, and a warm-cache run all
//! produce byte-identical merged output. Wall-clock readings exist only
//! in the progress stream and the `BENCH_campaign.json` sidecar, never
//! in the merged artifact.

use crate::cache::{CacheMiss, ResultCache};
use crate::cell::{Campaign, CellRecord, CellSpec};
use crate::clock::HarnessClock;
use crate::json::Json;
use crate::pool;
use inpg::{ExperimentResult, SimError};
use std::fmt;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How to execute a campaign.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for cache misses (clamped to at least 1).
    pub workers: usize,
    /// Read the cache: verified hits skip execution. Writes happen
    /// whenever `cache` is set, resumed or not, so an interrupted
    /// campaign leaves every finished cell behind for the next run.
    pub resume: bool,
    /// Cache directory (`None` disables the cache entirely).
    pub cache: Option<PathBuf>,
    /// Merged-artifact path (canonical order, deterministic bytes);
    /// parent directories are created.
    pub merged_out: Option<PathBuf>,
    /// Only run cells whose label contains this substring.
    pub filter: Option<String>,
    /// Per-cell progress + ETA lines on stderr.
    pub progress: bool,
    /// Per-cell JSONL records (wall time, throughput) on stdout, in
    /// completion order.
    pub cell_jsonl: bool,
}

impl ExecOptions {
    /// Defaults for programmatic use: all cores, resume on, no cache
    /// directory, no artifacts, quiet.
    pub fn quiet() -> Self {
        ExecOptions {
            workers: default_workers(),
            resume: true,
            cache: None,
            merged_out: None,
            filter: None,
            progress: false,
            cell_jsonl: false,
        }
    }

    /// Defaults for the fig binaries: all cores (`INPG_WORKERS`
    /// overrides), resuming from `results/cache` (`INPG_CACHE=0`
    /// disables, `INPG_CACHE=<dir>` relocates), progress on stderr.
    pub fn for_figures() -> Self {
        let cache = match std::env::var("INPG_CACHE") {
            Err(_) => Some(PathBuf::from("results/cache")),
            Ok(v) if v == "0" => None,
            Ok(v) => Some(PathBuf::from(v)),
        };
        ExecOptions {
            workers: std::env::var("INPG_WORKERS")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n: &usize| n > 0)
                .unwrap_or_else(default_workers),
            resume: true,
            cache,
            merged_out: None,
            filter: None,
            progress: true,
            cell_jsonl: false,
        }
    }
}

/// The host's available parallelism (1 if unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The result of one cell within a campaign run.
#[derive(Debug)]
pub struct CellOutcome {
    pub spec: CellSpec,
    /// Content hash of the cell's config (the cache address).
    pub hash: String,
    /// The deterministic record (freshly computed or cache-verified).
    pub record: CellRecord,
    /// The full in-process result, present only when the cell executed
    /// this run (timeline-recording cells always execute).
    pub fresh: Option<ExperimentResult>,
    /// Whether the record came from the cache.
    pub cached: bool,
    /// Wall nanoseconds this run spent executing the cell (0 if cached).
    pub wall_nanos: u64,
}

/// A cell whose execution panicked. The campaign carries on without
/// it: the panic is caught at the pool boundary, the cell is excluded
/// from the merged artifact, and the failure is reported here (and in
/// the end-of-run summary) instead of wedging the whole run.
#[derive(Debug, Clone)]
pub struct FailedCell {
    /// The failed cell's label.
    pub label: String,
    /// The panic message.
    pub reason: String,
}

/// Everything one campaign run produced, in canonical cell order.
#[derive(Debug)]
pub struct CampaignReport {
    pub name: String,
    pub outcomes: Vec<CellOutcome>,
    pub workers: usize,
    pub resume: bool,
    /// Cells executed this run (cache misses).
    pub executed: usize,
    /// Cells served by verified cache hits.
    pub cached: usize,
    /// Cells whose execution panicked, in canonical cell order; absent
    /// from [`outcomes`](Self::outcomes) and the merged artifact.
    pub failed: Vec<FailedCell>,
    /// Corrupt cache entries moved to `quarantine/` during resolution
    /// (each one re-ran honestly; none were silently trusted or
    /// silently deleted).
    pub quarantined: usize,
    /// Suite wall time, nanoseconds (harness boundary measurement).
    pub wall_nanos: u64,
}

impl CampaignReport {
    /// Looks up an outcome by cell label.
    pub fn outcome(&self, label: &str) -> Option<&CellOutcome> {
        self.outcomes.iter().find(|o| o.spec.label == label)
    }

    /// The record for `label`.
    ///
    /// # Panics
    ///
    /// Panics when the label is not in the report — a campaign
    /// definition bug, not a runtime condition.
    pub fn record(&self, label: &str) -> &CellRecord {
        &self
            .outcome(label)
            .unwrap_or_else(|| panic!("no cell labelled `{label}` in campaign `{}`", self.name))
            .record
    }

    /// Total simulated cycles over all cells (cached ones included).
    pub fn sim_cycles(&self) -> u64 {
        self.outcomes.iter().map(|o| o.record.roi_cycles).sum()
    }

    /// Suite-level simulated-cycles-per-second over the cells actually
    /// executed this run.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        let executed_cycles: u64 = self
            .outcomes
            .iter()
            .filter(|o| !o.cached)
            .map(|o| o.record.roi_cycles)
            .sum();
        executed_cycles as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Labels of cells that hit the cycle bound without completing.
    pub fn incomplete(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.record.completed)
            .map(|o| o.spec.label.as_str())
            .collect()
    }

    /// One stable summary line (the CI smoke job greps it).
    pub fn summary_line(&self) -> String {
        let failed = if self.failed.is_empty() {
            String::new()
        } else {
            format!(", {} FAILED", self.failed.len())
        };
        let failed = if self.quarantined == 0 {
            failed
        } else {
            format!("{failed}, {} quarantined", self.quarantined)
        };
        format!(
            "campaign {}: {} cells ({} executed, {} cached{failed}) on {} workers in {:.2}s, {:.2} Msim-cycles/s",
            self.name,
            self.outcomes.len() + self.failed.len(),
            self.executed,
            self.cached,
            self.workers,
            self.wall_nanos as f64 / 1e9,
            self.sim_cycles_per_sec() / 1e6,
        )
    }
}

/// Why a campaign run failed.
#[derive(Debug)]
pub enum CampaignError {
    /// Artifact or cache I/O failed.
    Io(io::Error),
    /// A cell's simulation failed (bad config, stall, invariant).
    Cell { label: String, error: SimError },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign i/o: {e}"),
            CampaignError::Cell { label, error } => write!(f, "cell `{label}`: {error}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// What one executed miss produced (pool task result). The payloads
/// are boxed so the enum stays small next to `Failed`.
enum MissResult {
    Ran { record: Box<CellRecord>, fresh: Box<ExperimentResult>, wall_nanos: u64 },
    Failed(SimError),
    Panicked(String),
}

/// Executes a campaign: cache resolution, pooled execution, canonical
/// merge, artifact emission.
///
/// # Errors
///
/// Fails on the first cell whose simulation errors (reported in
/// canonical order) and on artifact/cache I/O failures. Cells that
/// merely hit their cycle bound are *not* errors here; see
/// [`CampaignReport::incomplete`]. A cell whose execution *panics* is
/// not an error either: the panic is caught at the pool boundary, the
/// cell lands in [`CampaignReport::failed`], and the rest of the
/// campaign (and its merged artifact) completes without it.
pub fn execute(campaign: &Campaign, opts: &ExecOptions) -> Result<CampaignReport, CampaignError> {
    let clock = HarnessClock::start();
    let cells: Vec<CellSpec> =
        campaign.matching(opts.filter.as_deref()).into_iter().cloned().collect();
    let cache = opts.cache.as_ref().map(ResultCache::new);

    // Orphaned `.tmp` files from a writer killed mid-store must never be
    // around to confuse anyone (and must not accumulate); sweep first.
    if let Some(cache) = &cache {
        match cache.gc_stale_tmp() {
            Ok(0) => {}
            Ok(n) => eprintln!(
                "campaign {}: collected {n} orphaned .tmp cache file(s)",
                campaign.name
            ),
            Err(e) => eprintln!(
                "campaign {}: cannot sweep stale .tmp files: {e} (continuing)",
                campaign.name
            ),
        }
    }

    // Phase 1 — resolve against the cache (sequential: pure I/O).
    // Corrupt entries are moved to `quarantine/` — inspectable, counted,
    // and off their content address so the honest re-run can land.
    let mut quarantined = 0usize;
    let mut resolved: Vec<Option<CellRecord>> = vec![None; cells.len()];
    if opts.resume {
        if let Some(cache) = &cache {
            for (slot, cell) in resolved.iter_mut().zip(&cells) {
                if !cell.config.cacheable() {
                    continue;
                }
                match cache.load(&cell.config) {
                    Ok(record) => *slot = Some(record),
                    Err(CacheMiss::Absent) => {}
                    Err(CacheMiss::HashMismatch(why) | CacheMiss::Malformed(why)) => {
                        match cache.quarantine(&cell.config) {
                            Ok(moved) => {
                                if moved {
                                    quarantined += 1;
                                }
                                eprintln!(
                                    "campaign {}: cache entry for `{}` rejected ({why}); \
                                     quarantined, re-running",
                                    campaign.name, cell.label
                                );
                            }
                            Err(e) => eprintln!(
                                "campaign {}: cache entry for `{}` rejected ({why}) but \
                                 could not be quarantined ({e}); re-running",
                                campaign.name, cell.label
                            ),
                        }
                    }
                    Err(CacheMiss::Unreadable(e)) => {
                        // An I/O error, not corruption: leave the entry.
                        eprintln!(
                            "campaign {}: cache entry for `{}` unreadable ({e}); re-running",
                            campaign.name, cell.label
                        );
                    }
                }
            }
        }
    }

    // Phase 2 — execute the misses on the work-stealing pool. Distinct
    // cells with identical configs (fig11 and fig12 share their cell
    // set; knob sweeps repeat the default point) execute once: the
    // content hash that addresses the cache also dedupes within a run.
    // Timeline cells are excluded — each consumer needs a fresh result.
    let misses: Vec<usize> =
        (0..cells.len()).filter(|&i| resolved[i].is_none()).collect();
    let mut owner_of: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut exec_slot: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    let mut unique: Vec<usize> = Vec::new();
    for &i in &misses {
        if cells[i].config.cacheable() {
            let hash = cells[i].config.content_hash();
            if let Some(&slot) = owner_of.get(&hash) {
                exec_slot.insert(i, slot);
                continue;
            }
            owner_of.insert(hash, unique.len());
        }
        exec_slot.insert(i, unique.len());
        unique.push(i);
    }
    let progress = ProgressSink {
        enabled: opts.progress,
        jsonl: opts.cell_jsonl,
        done: AtomicUsize::new(0), // sync: monotone progress count, see fetch_add below
        total: unique.len(),
        clock,
        // sync: serializes stderr/JSONL emission only; no shared state
        // is guarded, so lock order vs other locks never matters.
        out: Mutex::new(()),
    };
    for (i, cell) in cells.iter().enumerate() {
        if let Some(record) = &resolved[i] {
            progress.emit_cached(cell, record);
        }
    }
    let miss_results: Vec<MissResult> =
        pool::run_indexed_isolated(unique.len(), opts.workers, |k| {
        let cell = &cells[unique[k]];
        match cell.config.to_experiment().run_timed() {
            Err(error) => MissResult::Failed(error),
            Ok(fresh) => {
                let record = CellRecord::from_result(&fresh);
                let wall_nanos = fresh.wall_nanos.unwrap_or(0);
                if let Some(cache) = &cache {
                    if cell.config.cacheable() {
                        if let Err(e) = cache.store(&cell.config, &record) {
                            eprintln!(
                                "campaign: cannot cache `{}`: {e} (continuing)",
                                cell.label
                            );
                        }
                    }
                }
                progress.emit_executed(cell, &record, wall_nanos);
                MissResult::Ran {
                    record: Box::new(record),
                    fresh: Box::new(fresh),
                    wall_nanos,
                }
            }
        }
    })
    .into_iter()
    .map(|r| r.unwrap_or_else(MissResult::Panicked))
    .collect();

    // Phase 3 — merge in canonical order. A dedup group's first cell
    // (canonically earliest, since `unique` was built in order) owns the
    // execution; later cells with the same config share its record and
    // count as cached — they were served without running a simulator.
    enum SlotState {
        Ran { record: Box<CellRecord>, fresh: Option<Box<ExperimentResult>>, wall_nanos: u64 },
        Failed(Option<SimError>),
        Panicked(String),
    }
    let mut slots: Vec<SlotState> = miss_results
        .into_iter()
        .map(|r| match r {
            MissResult::Ran { record, fresh, wall_nanos } => {
                SlotState::Ran { record, fresh: Some(fresh), wall_nanos }
            }
            MissResult::Failed(e) => SlotState::Failed(Some(e)),
            MissResult::Panicked(reason) => SlotState::Panicked(reason),
        })
        .collect();
    let mut outcomes = Vec::with_capacity(cells.len());
    let mut failed: Vec<FailedCell> = Vec::new();
    let mut executed = 0;
    let mut cached = 0;
    for (i, cell) in cells.into_iter().enumerate() {
        let hash = cell.config.content_hash();
        if let Some(record) = resolved[i].take() {
            cached += 1;
            outcomes.push(CellOutcome {
                spec: cell,
                hash,
                record,
                fresh: None,
                cached: true,
                wall_nanos: 0,
            });
            continue;
        }
        let slot = *exec_slot.get(&i).unwrap_or_else(|| {
            unreachable!("unresolved cell {i} must have an execution slot")
        });
        let is_owner = unique[slot] == i;
        match &mut slots[slot] {
            SlotState::Ran { record, fresh, wall_nanos } => {
                if is_owner {
                    executed += 1;
                    outcomes.push(CellOutcome {
                        spec: cell,
                        hash,
                        record: record.as_ref().clone(),
                        fresh: fresh.take().map(|b| *b),
                        cached: false,
                        wall_nanos: *wall_nanos,
                    });
                } else {
                    cached += 1;
                    outcomes.push(CellOutcome {
                        spec: cell,
                        hash,
                        record: record.as_ref().clone(),
                        fresh: None,
                        cached: true,
                        wall_nanos: 0,
                    });
                }
            }
            SlotState::Failed(error) => {
                // The owner is canonically first, so the error is still
                // present when we get here.
                let error = error.take().unwrap_or_else(|| {
                    unreachable!("a failed slot is reported at its owner, which merges first")
                });
                return Err(CampaignError::Cell { label: cell.label, error });
            }
            SlotState::Panicked(reason) => {
                // Every cell sharing the panicked config fails with the
                // same reason; the merge order keeps the list canonical.
                failed.push(FailedCell { label: cell.label, reason: reason.clone() });
            }
        }
    }

    let report = CampaignReport {
        name: campaign.name.clone(),
        outcomes,
        workers: opts.workers.max(1),
        resume: opts.resume,
        executed,
        cached,
        failed,
        quarantined,
        wall_nanos: clock.elapsed_nanos(),
    };

    // Phase 4 — the merged artifact, canonical order, no wall clock.
    if let Some(path) = &opts.merged_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = String::new();
        for line in report.outcomes.iter().map(merged_line) {
            text.push_str(&line.to_string_compact());
            text.push('\n');
        }
        text.push_str(
            &merged_footer(&report.name, report.outcomes.len(), report.quarantined)
                .to_string_compact(),
        );
        text.push('\n');
        std::fs::write(path, text)?;
    }

    Ok(report)
}

/// One line of the merged artifact: label, address, full config, full
/// deterministic record. Everything here is a pure function of the
/// campaign definition.
fn merged_line(outcome: &CellOutcome) -> Json {
    merged_entry_line(
        &outcome.spec.label,
        &outcome.hash,
        &outcome.spec.config,
        &outcome.record,
    )
}

/// The merged-artifact line for one `(label, hash, config, record)`
/// quadruple — shared by the in-process engine and the service client
/// (`inpg submit`), so both emit byte-identical artifacts.
pub fn merged_entry_line(
    label: &str,
    hash: &str,
    config: &crate::cell::CellConfig,
    record: &CellRecord,
) -> Json {
    Json::obj(vec![
        ("label", Json::Str(label.to_string())),
        ("hash", Json::Str(hash.to_string())),
        ("config", config.to_json()),
        ("record", record.to_json()),
    ])
}

/// The merged artifact's trailing footer line: campaign identity, cell
/// count, and the quarantined-entry count, so a consumer can both
/// detect truncation (no footer = torn file) and see whether any cache
/// corruption was encountered while producing the artifact.
pub fn merged_footer(name: &str, cells: usize, quarantined: usize) -> Json {
    Json::obj(vec![
        ("footer", Json::Bool(true)),
        ("campaign", Json::Str(name.to_string())),
        ("cells", Json::UInt(cells as u64)),
        ("quarantined", Json::UInt(quarantined as u64)),
    ])
}

/// Serialized progress/telemetry emission (stderr text, stdout JSONL).
struct ProgressSink {
    enabled: bool,
    jsonl: bool,
    done: AtomicUsize,
    total: usize,
    clock: HarnessClock,
    out: Mutex<()>,
}

impl ProgressSink {
    fn emit_executed(&self, cell: &CellSpec, record: &CellRecord, wall_nanos: u64) {
        // sync: SeqCst — progress lines must agree with the order the
        // counter was claimed in across workers; this is a per-cell (not
        // per-cycle) event, so the fence cost is irrelevant.
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.enabled && !self.jsonl {
            return;
        }
        let _guard = self.out.lock().unwrap_or_else(|p| p.into_inner());
        if self.enabled {
            let elapsed = self.clock.elapsed_nanos();
            let eta_s = if done == 0 {
                0.0
            } else {
                elapsed as f64 / 1e9 / done as f64 * (self.total - done) as f64
            };
            let cps = if wall_nanos == 0 {
                0.0
            } else {
                record.roi_cycles as f64 * 1e9 / wall_nanos as f64
            };
            eprintln!(
                "[{done}/{}] {} {:.0}ms {:.2} Mcyc/s eta {:.0}s",
                self.total,
                cell.label,
                wall_nanos as f64 / 1e6,
                cps / 1e6,
                eta_s,
            );
        }
        if self.jsonl {
            self.write_jsonl(cell, record, false, wall_nanos);
        }
    }

    fn emit_cached(&self, cell: &CellSpec, record: &CellRecord) {
        if !self.jsonl {
            return;
        }
        let _guard = self.out.lock().unwrap_or_else(|p| p.into_inner());
        self.write_jsonl(cell, record, true, 0);
    }

    /// One telemetry record, completion order: the only place wall time
    /// and simulated throughput appear next to a cell.
    fn write_jsonl(&self, cell: &CellSpec, record: &CellRecord, cached: bool, wall_nanos: u64) {
        let cps = if wall_nanos == 0 {
            Json::Null
        } else {
            Json::num(record.roi_cycles as f64 * 1e9 / wall_nanos as f64)
        };
        let line = Json::obj(vec![
            ("cell", Json::Str(cell.label.clone())),
            ("hash", Json::Str(cell.config.content_hash())),
            ("cached", Json::Bool(cached)),
            ("completed", Json::Bool(record.completed)),
            ("sim_cycles", Json::UInt(record.roi_cycles)),
            ("wall_ms", Json::num(wall_nanos as f64 / 1e6)),
            ("sim_cycles_per_sec", cps),
        ]);
        let mut stdout = io::stdout().lock();
        let _ = writeln!(stdout, "{}", line.to_string_compact());
    }
}
