//! `inpg` — command-line front end for the simulator.
//!
//! ```text
//! inpg list                                  list the modelled benchmarks
//! inpg run <benchmark> [options]             run one experiment
//! inpg compare <benchmark> [options]         run all four mechanisms
//! inpg sweep-primitives <benchmark> [opts]   Original vs iNPG × 5 primitives
//! inpg campaign <suite> [campaign options]   run a figure suite in parallel
//! inpg campaign --list                       list the suites
//! inpg campaign <suite> --adaptive [...]     run seeds to confidence, not count
//! inpg serve [serve options]                 run the resident campaign daemon
//! inpg submit <suite> [submit options]       drive a suite through daemon(s)
//! inpg shutdown [--daemon A | --addr-file P] gracefully drain a daemon
//!
//! serve options:
//!   --addr HOST:PORT     bind address (default 127.0.0.1:0 — ephemeral)
//!   --addr-file PATH     publish the bound address here (removed on exit)
//!   --cache-dir DIR      shared result cache (default results/cache)
//!   --no-cache           disable the cache (every submit executes)
//!   --workers N          resident worker threads (default: all cores)
//!   --queue-capacity N   admission bound before load-shedding (default 256)
//!   --default-deadline-ms N   deadline for submits that carry none
//!   --journal PATH       drain journal (default results/serve/journal.jsonl)
//!   --no-journal         do not persist queued cells at drain
//!
//! submit options:
//!   --daemon HOST:PORT   a daemon to shard cells across (repeatable)
//!   --addr-file PATH     a daemon published here (repeatable, re-read on
//!                        retry — survives daemon restarts)
//!   --workers N          concurrent in-flight requests (default: all cores)
//!   --deadline-ms N      per-request deadline forwarded to the daemon
//!   --max-attempts N     per-cell attempt budget (default 40)
//!   --scale F / --seeds N / --filter SUBSTR    as for `inpg campaign`
//!   --adaptive / --ci-target / --seed-budget / --min-seeds
//!                        as for `inpg campaign` (replicas shard across daemons)
//!   --out PATH           merged artifact (default results/campaign/<suite>.jsonl)
//!   --bench-out PATH     perf trajectory (default BENCH_campaign.json)
//!   --quiet              no per-cell progress on stderr
//!
//! campaign options:
//!   --workers N          worker threads (default: all cores)
//!   --no-resume          ignore cached results (still writes the cache)
//!   --no-cache           disable the result cache entirely
//!   --cache-dir DIR      cache location (default results/cache)
//!   --filter SUBSTR      only run cells whose label contains SUBSTR
//!   --scale F            override the suite's default workload scale
//!   --seeds N            average seed-swept suites over N workload seeds
//!   --out PATH           merged artifact (default results/campaign/<suite>.jsonl)
//!   --bench-out PATH     perf trajectory (default BENCH_campaign.json)
//!   --jsonl              per-cell JSONL telemetry on stdout
//!   --quiet              no per-cell progress on stderr
//!   --adaptive           sequential analysis: run each cell's seed stream
//!                        until its CI target is met (suites: smoke, fig02,
//!                        fig11, fig12; artifact gains mean/ci95/n_seeds)
//!   --ci-target F        relative 95% CI half-width to stop at (default
//!                        0.05; implies --adaptive)
//!   --seed-budget N      max replicas per cell, >= 2 (default 16; implies
//!                        --adaptive)
//!   --min-seeds N        replicas before the CI is consulted, >= 2
//!                        (default 3; implies --adaptive)
//!
//! options:
//!   --mechanism original|ocor|inpg|inpg+ocor   (run only; default original)
//!   --primitive tas|ttl|abql|mcs|qsl           (default qsl)
//!   --mesh WxH                                 (default 8x8)
//!   --scale F                                  (default 0.1)
//!   --big-routers N                            override deployment
//!   --barrier-entries N                        (default 16)
//!   --seed N                                   workload seed
//!   --watchdog-cycles N                        abort after N stalled cycles
//!   --check-invariants N                       check protocol invariants every N cycles
//!   --fault KIND:VALUE                         inject a fault (repeatable); kinds:
//!                                              jitter:N barrier-off:C ttl-storm:C
//!                                              ei-exhaust:N drop-ack:N link-drop:N
//!                                              router-fail:C
//!   --fault-seed N                             fault-injection RNG seed
//!   --recover                                  arm timeout-based retransmission so
//!                                              injected faults are survived, not
//!                                              aborted
//!   --retry-budget N                           recovery retransmissions per
//!                                              transaction (default 8)
//!   --recovery-timeout N                       base retransmission timeout, cycles
//!                                              (default 8192)
//! ```

use inpg::stats::{pct, speedup, Table};
use inpg::{Experiment, ExperimentResult, FaultKind, FaultPlan, LockPrimitive, Mechanism, SimError};
use inpg_campaign::{
    bench_out, engine, run_adaptive, serve, submit, suites, AddrSource, AdaptiveOptions,
    EngineRunner, ExecOptions, ReplicaRunner, ServeOptions, ServiceRunner, SubmitOptions,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Everything the CLI can fail with, so `main` can pick exit text and
/// code from one place.
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown flag, malformed value, missing operand).
    Usage(String),
    /// The simulation itself failed: bad configuration, watchdog stall,
    /// or invariant violation.
    Sim(SimError),
    /// A run hit the cycle bound without completing.
    Incomplete(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Incomplete(msg) => f.write_str(msg),
            CliError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl From<SimError> for CliError {
    fn from(e: SimError) -> Self {
        CliError::Sim(e)
    }
}

#[derive(Debug, Clone)]
struct Options {
    mechanism: Mechanism,
    primitive: LockPrimitive,
    mesh: (u8, u8),
    scale: f64,
    big_routers: Option<usize>,
    barrier_entries: usize,
    seed: Option<u64>,
    watchdog_cycles: Option<u64>,
    check_invariants: Option<u64>,
    faults: FaultPlan,
    recover: bool,
    recovery_retry_budget: Option<u32>,
    recovery_timeout: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            mechanism: Mechanism::Original,
            primitive: LockPrimitive::Qsl,
            mesh: (8, 8),
            scale: 0.1,
            big_routers: None,
            barrier_entries: 16,
            seed: None,
            watchdog_cycles: None,
            check_invariants: None,
            faults: FaultPlan::none(),
            recover: false,
            recovery_retry_budget: None,
            recovery_timeout: None,
        }
    }
}

fn parse_mesh(s: &str) -> Result<(u8, u8), String> {
    let (w, h) = s.split_once(['x', 'X']).ok_or_else(|| format!("bad mesh `{s}`"))?;
    Ok((
        w.parse().map_err(|_| format!("bad mesh width `{w}`"))?,
        h.parse().map_err(|_| format!("bad mesh height `{h}`"))?,
    ))
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().cloned().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--mechanism" => options.mechanism = value()?.parse().map_err(|e| format!("{e}"))?,
            "--primitive" => options.primitive = value()?.parse().map_err(|e| format!("{e}"))?,
            "--mesh" => options.mesh = parse_mesh(&value()?)?,
            "--scale" => {
                options.scale = value()?.parse().map_err(|_| "bad --scale".to_string())?
            }
            "--big-routers" => {
                options.big_routers =
                    Some(value()?.parse().map_err(|_| "bad --big-routers".to_string())?)
            }
            "--barrier-entries" => {
                options.barrier_entries =
                    value()?.parse().map_err(|_| "bad --barrier-entries".to_string())?
            }
            "--seed" => {
                options.seed = Some(value()?.parse().map_err(|_| "bad --seed".to_string())?)
            }
            "--watchdog-cycles" => {
                options.watchdog_cycles =
                    Some(value()?.parse().map_err(|_| "bad --watchdog-cycles".to_string())?)
            }
            "--check-invariants" => {
                options.check_invariants =
                    Some(value()?.parse().map_err(|_| "bad --check-invariants".to_string())?)
            }
            "--fault" => {
                let kind = FaultKind::parse(&value()?).map_err(|e| format!("bad --fault: {e}"))?;
                options.faults = options.faults.clone().with(kind);
            }
            "--fault-seed" => {
                let seed = value()?.parse().map_err(|_| "bad --fault-seed".to_string())?;
                options.faults = options.faults.clone().seeded(seed);
            }
            "--recover" => options.recover = true,
            "--retry-budget" => {
                options.recovery_retry_budget =
                    Some(value()?.parse().map_err(|_| "bad --retry-budget".to_string())?)
            }
            "--recovery-timeout" => {
                options.recovery_timeout =
                    Some(value()?.parse().map_err(|_| "bad --recovery-timeout".to_string())?)
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(options)
}

fn build(benchmark: &str, options: &Options) -> Experiment {
    let mut e = Experiment::benchmark(benchmark)
        .mechanism(options.mechanism)
        .primitive(options.primitive)
        .mesh(options.mesh.0, options.mesh.1)
        .barrier_entries(options.barrier_entries)
        .scale(options.scale);
    if let Some(count) = options.big_routers {
        e = e.big_routers(count);
    }
    if let Some(seed) = options.seed {
        e = e.seed(seed);
    }
    if let Some(window) = options.watchdog_cycles {
        e = e.watchdog_cycles(window);
    }
    if let Some(interval) = options.check_invariants {
        e = e.check_invariants(interval);
    }
    if !options.faults.is_empty() {
        e = e.faults(options.faults.clone());
    }
    if options.recover {
        e = e.recover(true);
    }
    if let Some(budget) = options.recovery_retry_budget {
        e = e.recovery_retry_budget(budget);
    }
    if let Some(cycles) = options.recovery_timeout {
        e = e.recovery_timeout(cycles);
    }
    e
}

fn summarize(r: &ExperimentResult) {
    let (p, c, s) = r.phase_shares();
    println!("workload:        {} ({} / {})", r.name, r.mechanism, r.primitive);
    println!("ROI finish time: {} cycles ({} critical sections)", r.roi_cycles, r.cs_count);
    println!(
        "phases:          {} parallel, {} COH, {} CSE",
        pct(p),
        pct(c),
        pct(s)
    );
    println!(
        "per CS:          {:.0} COH + {:.0} CSE cycles",
        r.avg_cs_coh, r.avg_cs_cse
    );
    println!(
        "Inv-Ack:         mean {:.1}, max {} cycles over {} round trips",
        r.invack.mean, r.invack.max, r.invack.count
    );
    if r.barrier.requests_stopped > 0 {
        println!(
            "iNPG:            {} requests stopped, {} acks relayed, {} home invalidations saved",
            r.barrier.requests_stopped, r.barrier.acks_relayed, r.home_invs_saved
        );
    }
}

fn cmd_list() {
    let mut table = Table::new(vec!["name", "suite", "total CS", "cycles/CS", "locks", "group"]);
    for spec in &inpg::workloads::BENCHMARKS {
        table.add_row(vec![
            spec.name.to_string(),
            spec.suite.to_string(),
            spec.total_cs.to_string(),
            spec.avg_cs_cycles.to_string(),
            spec.locks.to_string(),
            inpg::workloads::group_of(spec).to_string(),
        ]);
    }
    println!("{table}");
}

fn cmd_run(benchmark: &str, options: &Options) -> Result<(), CliError> {
    let result = build(benchmark, options).run()?;
    if !result.completed {
        return Err(CliError::Incomplete(
            "run hit the cycle bound before completing".into(),
        ));
    }
    summarize(&result);
    Ok(())
}

fn cmd_compare(benchmark: &str, options: &Options) -> Result<(), CliError> {
    let mut table = Table::new(vec![
        "mechanism",
        "ROI cycles",
        "rel. ROI",
        "CS expedition",
        "Inv-Ack mean",
    ]);
    let mut base: Option<ExperimentResult> = None;
    for mechanism in Mechanism::ALL {
        let mut options = options.clone();
        options.mechanism = mechanism;
        let r = build(benchmark, &options).run()?;
        if !r.completed {
            return Err(CliError::Incomplete(format!("{mechanism} hit the cycle bound")));
        }
        let (rel, exp) = match &base {
            None => (1.0, 1.0),
            Some(b) => {
                (r.roi_cycles as f64 / b.roi_cycles as f64, b.cs_access_time() / r.cs_access_time())
            }
        };
        table.add_row(vec![
            mechanism.to_string(),
            r.roi_cycles.to_string(),
            pct(rel),
            speedup(exp),
            format!("{:.1}", r.invack.mean),
        ]);
        if base.is_none() {
            base = Some(r);
        }
    }
    println!("{table}");
    Ok(())
}

fn cmd_sweep_primitives(benchmark: &str, options: &Options) -> Result<(), CliError> {
    let mut table =
        Table::new(vec!["primitive", "Original ROI", "iNPG ROI", "iNPG reduction"]);
    for primitive in LockPrimitive::ALL {
        let mut opts = options.clone();
        opts.primitive = primitive;
        opts.mechanism = Mechanism::Original;
        let base = build(benchmark, &opts).run()?;
        opts.mechanism = Mechanism::Inpg;
        let inpg = build(benchmark, &opts).run()?;
        if !base.completed || !inpg.completed {
            return Err(CliError::Incomplete(format!("{primitive} hit the cycle bound")));
        }
        table.add_row(vec![
            primitive.to_string(),
            base.roi_cycles.to_string(),
            inpg.roi_cycles.to_string(),
            pct(1.0 - inpg.roi_cycles as f64 / base.roi_cycles as f64),
        ]);
    }
    println!("{table}");
    Ok(())
}

/// Sequential-analysis knobs shared by `inpg campaign` and
/// `inpg submit`. Passing any value flag implies `--adaptive`.
#[derive(Debug, Clone, Copy)]
struct AdaptiveCli {
    enabled: bool,
    ci_target: f64,
    min_seeds: u64,
    seed_budget: u64,
}

impl Default for AdaptiveCli {
    fn default() -> Self {
        AdaptiveCli { enabled: false, ci_target: 0.05, min_seeds: 3, seed_budget: 16 }
    }
}

fn parse_ci_target(s: &str) -> Result<f64, String> {
    s.parse()
        .ok()
        .filter(|&t: &f64| t.is_finite() && t > 0.0)
        .ok_or_else(|| "bad --ci-target (want a finite value > 0)".to_string())
}

fn parse_replica_count(flag: &str, s: &str) -> Result<u64, String> {
    s.parse()
        .ok()
        .filter(|&n: &u64| n >= 2)
        .ok_or_else(|| format!("bad {flag} (want an integer >= 2)"))
}

fn adaptive_suite_names() -> Vec<&'static str> {
    suites::ADAPTIVE_SUITES.iter().map(|s| s.name).collect()
}

/// The adaptive campaign path, shared by `inpg campaign --adaptive`
/// (engine runner) and `inpg submit --adaptive` (daemon runner).
#[allow(clippy::too_many_arguments)]
fn cmd_adaptive(
    suite: &str,
    scale: Option<f64>,
    filter: Option<&str>,
    cli: &AdaptiveCli,
    merged_out: Option<PathBuf>,
    progress: bool,
    bench_path: &Path,
    runner: &dyn ReplicaRunner,
    backend: &str,
) -> Result<(), CliError> {
    let campaign = suites::build_adaptive(suite, scale).ok_or_else(|| {
        CliError::Usage(format!(
            "suite `{suite}` has no adaptive form; one of: {}",
            adaptive_suite_names().join(", ")
        ))
    })?;
    let campaign = campaign.matching(filter);
    if campaign.groups.is_empty() {
        return Err(CliError::Usage(format!(
            "--filter matched no cells in suite `{suite}`"
        )));
    }
    let opts = AdaptiveOptions {
        ci_target: cli.ci_target,
        min_seeds: cli.min_seeds,
        seed_budget: cli.seed_budget,
        merged_out,
        progress,
    };
    let report = run_adaptive(&campaign, &opts, runner)
        .map_err(|e| CliError::Usage(format!("adaptive campaign failed: {e}")))?;
    bench_out::write_adaptive_bench_json(bench_path, &report, backend)
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", bench_path.display())))?;
    println!("{}", report.summary_line());
    let mut table = Table::new(vec!["group", "metric", "mean", "ci95", "seeds", "converged"]);
    for g in &report.groups {
        table.add_row(vec![
            g.label.clone(),
            g.metric.to_string(),
            format!("{:.4}", g.mean),
            g.ci95.map_or_else(|| "-".to_string(), |ci| format!("±{ci:.4}")),
            g.n_seeds.to_string(),
            if g.converged { "yes".to_string() } else { "budget".to_string() },
        ]);
    }
    println!("{table}");
    if let Some(path) = &opts.merged_out {
        println!("merged artifact: {}", path.display());
    }
    println!("perf trajectory: {}", bench_path.display());
    let unconverged: Vec<&str> =
        report.groups.iter().filter(|g| !g.converged).map(|g| g.label.as_str()).collect();
    if !unconverged.is_empty() {
        eprintln!(
            "note: {} group(s) exhausted --seed-budget {} before reaching the CI target: {}",
            unconverged.len(),
            cli.seed_budget,
            unconverged.join(", ")
        );
    }
    Ok(())
}

/// Parsed `inpg campaign` command line.
struct CampaignArgs {
    suite: String,
    exec: ExecOptions,
    scale: Option<f64>,
    seed_count: u64,
    adaptive: AdaptiveCli,
    bench_out: PathBuf,
}

fn parse_campaign_args(args: &[String]) -> Result<Option<CampaignArgs>, String> {
    let mut suite: Option<String> = None;
    let mut exec = ExecOptions::quiet();
    exec.progress = true;
    exec.cache = Some(PathBuf::from("results/cache"));
    let mut scale: Option<f64> = None;
    let mut seed_count: u64 = 1;
    let mut seeds_given = false;
    let mut adaptive = AdaptiveCli::default();
    let mut out: Option<PathBuf> = None;
    let mut bench_out = PathBuf::from("BENCH_campaign.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--list" => return Ok(None),
            "--adaptive" => adaptive.enabled = true,
            "--ci-target" => {
                adaptive.ci_target = parse_ci_target(&value()?)?;
                adaptive.enabled = true;
            }
            "--seed-budget" => {
                adaptive.seed_budget = parse_replica_count("--seed-budget", &value()?)?;
                adaptive.enabled = true;
            }
            "--min-seeds" => {
                adaptive.min_seeds = parse_replica_count("--min-seeds", &value()?)?;
                adaptive.enabled = true;
            }
            "--workers" => {
                exec.workers = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("bad --workers")?
            }
            "--no-resume" => exec.resume = false,
            "--no-cache" => exec.cache = None,
            "--cache-dir" => exec.cache = Some(PathBuf::from(value()?)),
            "--filter" => exec.filter = Some(value()?),
            "--scale" => {
                scale = Some(
                    value()?
                        .parse()
                        .ok()
                        .filter(|&s: &f64| s > 0.0)
                        .ok_or("bad --scale")?,
                )
            }
            "--seeds" => {
                seed_count = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .ok_or("bad --seeds")?;
                seeds_given = true;
            }
            "--out" => out = Some(PathBuf::from(value()?)),
            "--bench-out" => bench_out = PathBuf::from(value()?),
            "--jsonl" => exec.cell_jsonl = true,
            "--quiet" => exec.progress = false,
            other if !other.starts_with("--") && suite.is_none() => {
                suite = Some(other.to_string())
            }
            other => return Err(format!("unknown campaign option `{other}`")),
        }
    }
    let suite = suite.ok_or_else(|| {
        format!("missing suite name; one of: {}", suite_names().join(", "))
    })?;
    if adaptive.enabled {
        if seeds_given {
            return Err("--seeds picks a fixed count; --adaptive draws its own \
                        per-cell seed streams (use --seed-budget / --min-seeds)"
                .to_string());
        }
        if exec.cell_jsonl {
            return Err("--jsonl is not supported with --adaptive".to_string());
        }
    }
    exec.merged_out = Some(out.unwrap_or_else(|| {
        if adaptive.enabled {
            PathBuf::from(format!("results/campaign/{suite}-adaptive.jsonl"))
        } else {
            PathBuf::from(format!("results/campaign/{suite}.jsonl"))
        }
    }));
    Ok(Some(CampaignArgs { suite, exec, scale, seed_count, adaptive, bench_out }))
}

fn suite_names() -> Vec<&'static str> {
    suites::SUITES.iter().map(|s| s.name).collect()
}

fn cmd_campaign_list() {
    let mut table = Table::new(vec!["suite", "default scale", "seeds", "about"]);
    for info in suites::SUITES {
        table.add_row(vec![
            info.name.to_string(),
            if info.name == "all" { "per-suite".into() } else { info.default_scale.to_string() },
            if info.uses_seeds { "yes".into() } else { "-".into() },
            info.about.to_string(),
        ]);
    }
    println!("{table}");
}

fn cmd_campaign(args: &[String]) -> Result<(), CliError> {
    let parsed = match parse_campaign_args(args) {
        Err(e) => return Err(CliError::Usage(e)),
        Ok(None) => {
            cmd_campaign_list();
            return Ok(());
        }
        Ok(Some(parsed)) => parsed,
    };
    if parsed.adaptive.enabled {
        let mut exec = parsed.exec.clone();
        let merged_out = exec.merged_out.take();
        let progress = exec.progress;
        let filter = exec.filter.take();
        return cmd_adaptive(
            &parsed.suite,
            parsed.scale,
            filter.as_deref(),
            &parsed.adaptive,
            merged_out,
            progress,
            &parsed.bench_out,
            &EngineRunner { exec },
            "engine",
        );
    }
    // The same seed derivation the fig binaries use for INPG_SEEDS.
    let seeds: Vec<u64> =
        (0..parsed.seed_count).map(|i| 0x1a9e_4711 + i * 0x9e37).collect();
    let campaign =
        suites::build(&parsed.suite, parsed.scale, &seeds).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown suite `{}`; one of: {}",
                parsed.suite,
                suite_names().join(", ")
            ))
        })?;
    let report = engine::execute(&campaign, &parsed.exec)
        .map_err(|e| CliError::Usage(format!("campaign failed: {e}")))?;
    let entry = bench_out::write_bench_json(&parsed.bench_out, &report)
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", parsed.bench_out.display())))?;
    println!("{}", report.summary_line());
    if let Some(speedup) = entry
        .get("speedup_vs_workers_1")
        .and_then(inpg_campaign::json::Json::as_f64)
        .filter(|s| s.is_finite())
    {
        println!("speedup vs --workers 1: {speedup:.2}x");
    }
    if let Some(path) = &parsed.exec.merged_out {
        println!("merged artifact: {}", path.display());
    }
    println!("perf trajectory: {}", parsed.bench_out.display());
    if !report.failed.is_empty() {
        for cell in &report.failed {
            eprintln!("failed cell `{}`: {}", cell.label, cell.reason);
        }
        return Err(CliError::Incomplete(format!(
            "{} cells failed (excluded from the merged artifact): {}",
            report.failed.len(),
            report.failed.iter().map(|c| c.label.as_str()).collect::<Vec<_>>().join(", ")
        )));
    }
    let incomplete = report.incomplete();
    if !incomplete.is_empty() {
        return Err(CliError::Incomplete(format!(
            "{} cells hit the cycle bound: {}",
            incomplete.len(),
            incomplete.join(", ")
        )));
    }
    Ok(())
}

fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value()?,
            "--addr-file" => opts.addr_file = Some(PathBuf::from(value()?)),
            "--cache-dir" => opts.cache = Some(PathBuf::from(value()?)),
            "--no-cache" => opts.cache = None,
            "--workers" => {
                opts.workers = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("bad --workers")?
            }
            "--queue-capacity" => {
                opts.queue_capacity = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("bad --queue-capacity")?
            }
            "--default-deadline-ms" => {
                opts.default_deadline_ms =
                    Some(value()?.parse().map_err(|_| "bad --default-deadline-ms".to_string())?)
            }
            "--journal" => opts.journal = Some(PathBuf::from(value()?)),
            "--no-journal" => opts.journal = None,
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    Ok(opts)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let opts = parse_serve_args(args).map_err(CliError::Usage)?;
    serve::serve(opts).map_err(|e| CliError::Usage(format!("serve failed: {e}")))
}

/// Parsed `inpg submit` command line.
struct SubmitArgs {
    suite: String,
    opts: SubmitOptions,
    filter: Option<String>,
    scale: Option<f64>,
    seed_count: u64,
    adaptive: AdaptiveCli,
    out: Option<PathBuf>,
    bench_out: PathBuf,
}

fn parse_submit_args(args: &[String]) -> Result<SubmitArgs, String> {
    let mut suite: Option<String> = None;
    let mut opts = SubmitOptions { progress: true, ..SubmitOptions::default() };
    let mut filter = None;
    let mut scale = None;
    let mut seed_count: u64 = 1;
    let mut seeds_given = false;
    let mut adaptive = AdaptiveCli::default();
    let mut out = None;
    let mut bench_out = PathBuf::from("BENCH_campaign.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--daemon" => opts.daemons.push(AddrSource::Direct(value()?)),
            "--addr-file" => opts.daemons.push(AddrSource::File(PathBuf::from(value()?))),
            "--workers" => {
                opts.workers = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or("bad --workers")?
            }
            "--deadline-ms" => {
                opts.deadline_ms =
                    Some(value()?.parse().map_err(|_| "bad --deadline-ms".to_string())?)
            }
            "--max-attempts" => {
                opts.max_attempts = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &u32| n > 0)
                    .ok_or("bad --max-attempts")?
            }
            "--filter" => filter = Some(value()?),
            "--scale" => {
                scale = Some(
                    value()?
                        .parse()
                        .ok()
                        .filter(|&s: &f64| s > 0.0)
                        .ok_or("bad --scale")?,
                )
            }
            "--seeds" => {
                seed_count = value()?
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .ok_or("bad --seeds")?;
                seeds_given = true;
            }
            "--adaptive" => adaptive.enabled = true,
            "--ci-target" => {
                adaptive.ci_target = parse_ci_target(&value()?)?;
                adaptive.enabled = true;
            }
            "--seed-budget" => {
                adaptive.seed_budget = parse_replica_count("--seed-budget", &value()?)?;
                adaptive.enabled = true;
            }
            "--min-seeds" => {
                adaptive.min_seeds = parse_replica_count("--min-seeds", &value()?)?;
                adaptive.enabled = true;
            }
            "--out" => out = Some(PathBuf::from(value()?)),
            "--bench-out" => bench_out = PathBuf::from(value()?),
            "--quiet" => opts.progress = false,
            other if !other.starts_with("--") && suite.is_none() => {
                suite = Some(other.to_string())
            }
            other => return Err(format!("unknown submit option `{other}`")),
        }
    }
    let suite = suite.ok_or_else(|| {
        format!("missing suite name; one of: {}", suite_names().join(", "))
    })?;
    if adaptive.enabled && seeds_given {
        return Err("--seeds picks a fixed count; --adaptive draws its own \
                    per-cell seed streams (use --seed-budget / --min-seeds)"
            .to_string());
    }
    Ok(SubmitArgs { suite, opts, filter, scale, seed_count, adaptive, out, bench_out })
}

fn cmd_submit(args: &[String]) -> Result<(), CliError> {
    let mut parsed = parse_submit_args(args).map_err(CliError::Usage)?;
    if parsed.adaptive.enabled {
        let merged_out = parsed.out.clone().unwrap_or_else(|| {
            PathBuf::from(format!("results/campaign/{}-adaptive.jsonl", parsed.suite))
        });
        let progress = parsed.opts.progress;
        let mut opts = parsed.opts.clone();
        opts.merged_out = None;
        return cmd_adaptive(
            &parsed.suite,
            parsed.scale,
            parsed.filter.as_deref(),
            &parsed.adaptive,
            Some(merged_out),
            progress,
            &parsed.bench_out,
            &ServiceRunner { opts },
            "serve",
        );
    }
    let seeds: Vec<u64> =
        (0..parsed.seed_count).map(|i| 0x1a9e_4711 + i * 0x9e37).collect();
    let campaign =
        suites::build(&parsed.suite, parsed.scale, &seeds).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown suite `{}`; one of: {}",
                parsed.suite,
                suite_names().join(", ")
            ))
        })?;
    parsed.opts.merged_out = Some(parsed.out.unwrap_or_else(|| {
        PathBuf::from(format!("results/campaign/{}.jsonl", parsed.suite))
    }));
    let report = submit::run_campaign(&campaign, parsed.filter.as_deref(), &parsed.opts)
        .map_err(|e| CliError::Usage(format!("submit failed: {e}")))?;
    bench_out::write_serve_bench_json(&parsed.bench_out, &report)
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", parsed.bench_out.display())))?;
    println!("{}", report.summary_line());
    if let Some(path) = &parsed.opts.merged_out {
        println!("merged artifact: {}", path.display());
    }
    println!("perf trajectory: {}", parsed.bench_out.display());
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), CliError> {
    let mut sources: Vec<AddrSource> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next().cloned().ok_or_else(|| format!("missing value for {arg}"))
        };
        match arg.as_str() {
            "--daemon" => sources.push(AddrSource::Direct(value().map_err(CliError::Usage)?)),
            "--addr-file" => {
                sources.push(AddrSource::File(PathBuf::from(value().map_err(CliError::Usage)?)))
            }
            other => return Err(CliError::Usage(format!("unknown shutdown option `{other}`"))),
        }
    }
    if sources.is_empty() {
        return Err(CliError::Usage(
            "shutdown needs at least one --daemon or --addr-file".into(),
        ));
    }
    for source in &sources {
        match submit::shutdown(source) {
            Ok(journaled) => println!("daemon draining ({journaled} queued cell(s) journaled)"),
            Err(e) => return Err(CliError::Usage(format!("shutdown failed: {e}"))),
        }
    }
    Ok(())
}

fn usage() -> String {
    "usage: inpg <list|run|compare|sweep-primitives|campaign|serve|submit|shutdown> [operand] [options]\n\
     try `inpg list` to see the modelled benchmarks, `inpg campaign --list` for the suites"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, _)) if cmd == "list" => {
            cmd_list();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "campaign" => cmd_campaign(rest),
        Some((cmd, rest)) if cmd == "serve" => cmd_serve(rest),
        Some((cmd, rest)) if cmd == "submit" => cmd_submit(rest),
        Some((cmd, rest)) if cmd == "shutdown" => cmd_shutdown(rest),
        Some((cmd, rest)) => {
            let (benchmark, rest) = match rest.split_first() {
                Some((b, r)) if !b.starts_with("--") => (b.clone(), r),
                _ => return err_exit(&CliError::Usage("missing benchmark name".into())),
            };
            if inpg::workloads::benchmark(&benchmark).is_none() {
                return err_exit(&CliError::Usage(format!(
                    "unknown benchmark `{benchmark}` (see `inpg list`)"
                )));
            }
            match parse_options(rest) {
                Err(e) => return err_exit(&CliError::Usage(e)),
                Ok(options) => match cmd.as_str() {
                    "run" => cmd_run(&benchmark, &options),
                    "compare" => cmd_compare(&benchmark, &options),
                    "sweep-primitives" => cmd_sweep_primitives(&benchmark, &options),
                    other => {
                        Err(CliError::Usage(format!("unknown command `{other}`\n{}", usage())))
                    }
                },
            }
        }
        None => Err(CliError::Usage(usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => err_exit(&e),
    }
}

fn err_exit(err: &CliError) -> ExitCode {
    eprintln!("error: {err}");
    ExitCode::FAILURE
}
