//! The adaptive campaign controller: sequential analysis over seed
//! replicas — run each cell's seed stream until the headline metric's
//! confidence interval is tight enough, not until a fixed count runs
//! out.
//!
//! # The stopping rule is a pure function of the campaign definition
//!
//! The *schedule* is adaptive (replicas are issued in growing batches,
//! and batches from different groups interleave freely on the pool or
//! across daemons), but the *result* is not allowed to depend on any of
//! that. The rule: a group's stopping count is the smallest `n` in
//! `min_seeds..=seed_budget` such that the 95% CI half-width of the
//! metric over replicas `0..n` — folded in replica-index order — meets
//! the relative target; if no `n` does, the group stops unconverged at
//! `seed_budget`. Because each replica's record is a pure function of
//! its config (seed included), and the seed stream is a pure function
//! of the group label and replica index ([`replica_seed`]), the
//! stopping count — and therefore the merged artifact, byte for byte —
//! is identical across worker counts, daemon counts, cold/warm caches,
//! and however the controller happened to batch the work. Replicas the
//! controller scheduled speculatively past the stopping point are
//! simply dropped from the artifact; their cache entries remain and
//! make reruns cheaper.
//!
//! Per-seed records keep the exact hash scheme and cache entries of the
//! fixed-count engine: an adaptive run and a fixed `--seeds` run that
//! happen to visit the same `(config, seed)` share cache entries.

use crate::cell::{fnv1a64, CellConfig, CellRecord, CellSpec};
use crate::clock::HarnessClock;
use crate::engine::{self, ExecOptions};
use crate::json::Json;
use crate::submit::{self, SubmitOptions};
use inpg::stats::estimator::{Estimate, Welford};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// The per-group quantity whose CI the controller drives to target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadlineMetric {
    /// [`CellRecord::lco_share`] — Figure 2's metric.
    LcoShare,
    /// [`CellRecord::cs_access_time`] — Figure 11's metric.
    CsAccessTime,
    /// ROI finish time in cycles — Figure 12's metric.
    RoiCycles,
}

impl HeadlineMetric {
    /// The stable name used in artifacts and progress lines.
    pub fn name(self) -> &'static str {
        match self {
            HeadlineMetric::LcoShare => "lco_share",
            HeadlineMetric::CsAccessTime => "cs_access_time",
            HeadlineMetric::RoiCycles => "roi_cycles",
        }
    }

    /// Extracts the metric from one replica's record.
    pub fn of(self, record: &CellRecord) -> f64 {
        match self {
            HeadlineMetric::LcoShare => record.lco_share(),
            HeadlineMetric::CsAccessTime => record.cs_access_time(),
            HeadlineMetric::RoiCycles => record.roi_cycles as f64,
        }
    }
}

impl fmt::Display for HeadlineMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cell family to estimate: a config template (its `seed` field is
/// overwritten per replica) and the metric driven to confidence.
#[derive(Debug, Clone)]
pub struct AdaptiveGroup {
    pub label: String,
    pub config: CellConfig,
    pub metric: HeadlineMetric,
}

/// An adaptive campaign: named groups in canonical order.
#[derive(Debug, Clone)]
pub struct AdaptiveCampaign {
    pub name: String,
    pub groups: Vec<AdaptiveGroup>,
}

impl AdaptiveCampaign {
    pub fn new(name: impl Into<String>) -> Self {
        AdaptiveCampaign { name: name.into(), groups: Vec::new() }
    }

    /// Appends a group.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate label — a campaign-definition bug.
    pub fn push(&mut self, label: impl Into<String>, config: CellConfig, metric: HeadlineMetric) {
        let label = label.into();
        assert!(
            self.groups.iter().all(|g| g.label != label),
            "duplicate adaptive group label `{label}`"
        );
        self.groups.push(AdaptiveGroup { label, config, metric });
    }

    /// Only the groups whose label contains `filter` (all when `None`).
    pub fn matching(&self, filter: Option<&str>) -> AdaptiveCampaign {
        AdaptiveCampaign {
            name: self.name.clone(),
            groups: self
                .groups
                .iter()
                .filter(|g| filter.is_none_or(|f| g.label.contains(f)))
                .cloned()
                .collect(),
        }
    }
}

/// How to run an adaptive campaign.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Relative 95% CI half-width target (`ci95 / |mean|`).
    pub ci_target: f64,
    /// Replicas every group runs before the CI is consulted (≥ 2; a CI
    /// needs two samples, and tiny prefixes convert t-table noise into
    /// premature stops).
    pub min_seeds: u64,
    /// Hard per-group replica cap; a group that never meets the target
    /// stops here, flagged unconverged.
    pub seed_budget: u64,
    /// Merged-artifact path (canonical order, deterministic bytes).
    pub merged_out: Option<PathBuf>,
    /// Per-round and per-group progress lines on stderr.
    pub progress: bool,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            ci_target: 0.05,
            min_seeds: 3,
            seed_budget: 16,
            merged_out: None,
            progress: false,
        }
    }
}

/// The deterministic seed of replica `index` of the group labelled
/// `group_label`: an FNV-keyed SplitMix64 stream, so every group draws
/// an independent, reproducible seed sequence with no state to carry.
pub fn replica_seed(group_label: &str, index: u64) -> u64 {
    let mut z = fnv1a64(group_label.as_bytes())
        .wrapping_add((index + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The label of replica `index` within a group (also its artifact key).
pub fn replica_label(group_label: &str, index: u64) -> String {
    format!("{group_label}/r{index:03}")
}

/// The full cell spec of replica `index` of `group`.
pub fn replica_spec(group: &AdaptiveGroup, index: u64) -> CellSpec {
    let mut config = group.config.clone();
    config.seed = replica_seed(&group.label, index);
    CellSpec { label: replica_label(&group.label, index), config }
}

/// Why an adaptive run failed.
#[derive(Debug)]
pub enum AdaptiveError {
    /// The options are unusable (budget below two, non-finite target).
    Config(String),
    /// Artifact or cache I/O failed.
    Io(io::Error),
    /// A replica could not be completed.
    Replica { label: String, detail: String },
}

impl fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdaptiveError::Config(msg) => write!(f, "adaptive config: {msg}"),
            AdaptiveError::Io(e) => write!(f, "adaptive i/o: {e}"),
            AdaptiveError::Replica { label, detail } => {
                write!(f, "replica `{label}`: {detail}")
            }
        }
    }
}

impl std::error::Error for AdaptiveError {}

impl From<io::Error> for AdaptiveError {
    fn from(e: io::Error) -> Self {
        AdaptiveError::Io(e)
    }
}

/// One resolved replica, as the controller sees it: the deterministic
/// record plus whether anything actually executed for it this run.
#[derive(Debug)]
pub struct ResolvedReplica {
    pub record: CellRecord,
    /// Served without running a simulator (cache hit or dedup sibling).
    pub cached: bool,
}

/// Where replica batches execute. The controller is backend-agnostic:
/// the in-process engine and the daemon fleet implement the same
/// contract — resolve every cell of a batch, in input order.
pub trait ReplicaRunner {
    /// Resolves `cells` (all labels distinct), returning one replica
    /// per cell in the same order.
    fn run_batch(
        &self,
        campaign_name: &str,
        cells: &[CellSpec],
    ) -> Result<Vec<ResolvedReplica>, AdaptiveError>;
}

/// Runs batches through the in-process engine (cache + pool).
pub struct EngineRunner {
    pub exec: ExecOptions,
}

impl ReplicaRunner for EngineRunner {
    fn run_batch(
        &self,
        campaign_name: &str,
        cells: &[CellSpec],
    ) -> Result<Vec<ResolvedReplica>, AdaptiveError> {
        let mut batch = crate::cell::Campaign::new(campaign_name);
        for cell in cells {
            batch.push(cell.label.clone(), cell.config.clone());
        }
        let mut exec = self.exec.clone();
        // The controller owns the artifact and the progress stream; the
        // engine only resolves records.
        exec.merged_out = None;
        exec.filter = None;
        exec.progress = false;
        exec.cell_jsonl = false;
        let report = engine::execute(&batch, &exec).map_err(|e| match e {
            engine::CampaignError::Io(e) => AdaptiveError::Io(e),
            engine::CampaignError::Cell { label, error } => {
                AdaptiveError::Replica { label, detail: error.to_string() }
            }
        })?;
        if let Some(failed) = report.failed.first() {
            return Err(AdaptiveError::Replica {
                label: failed.label.clone(),
                detail: format!("panicked: {}", failed.reason),
            });
        }
        // Labels are unique within a batch, so outcomes come back in
        // canonical order — the input order.
        Ok(report
            .outcomes
            .into_iter()
            .map(|o| ResolvedReplica { record: o.record, cached: o.cached })
            .collect())
    }
}

/// Runs batches through `inpg serve` daemons, sharded by content hash.
pub struct ServiceRunner {
    pub opts: SubmitOptions,
}

impl ReplicaRunner for ServiceRunner {
    fn run_batch(
        &self,
        _campaign_name: &str,
        cells: &[CellSpec],
    ) -> Result<Vec<ResolvedReplica>, AdaptiveError> {
        let resolutions = submit::run_cells(cells, &self.opts).map_err(|e| match e {
            submit::SubmitError::Io(e) => AdaptiveError::Io(e),
            submit::SubmitError::Cell { label, detail } => {
                AdaptiveError::Replica { label, detail }
            }
        })?;
        Ok(resolutions
            .into_iter()
            .map(|r| ResolvedReplica { record: r.record, cached: r.cached })
            .collect())
    }
}

/// One replica kept in the artifact.
#[derive(Debug)]
pub struct ReplicaOutcome {
    pub label: String,
    pub config: CellConfig,
    /// The config's content hash (its cache address).
    pub hash: String,
    pub record: CellRecord,
    /// Whether this run served it without executing a simulator.
    pub cached: bool,
}

/// One group's final estimate.
#[derive(Debug)]
pub struct GroupSummary {
    pub label: String,
    pub metric: HeadlineMetric,
    /// Mean of the metric over the kept replicas (index order).
    pub mean: f64,
    /// 95% CI half-width (`None` below two replicas — only possible
    /// with a degenerate budget).
    pub ci95: Option<f64>,
    /// Replicas kept: the deterministic stopping count.
    pub n_seeds: u64,
    /// Whether the CI target was met within the budget.
    pub converged: bool,
    /// The kept replicas, index order.
    pub replicas: Vec<ReplicaOutcome>,
}

impl GroupSummary {
    /// The relative CI half-width (`None` below two replicas).
    pub fn rel_ci95(&self) -> Option<f64> {
        self.ci95
            .map(|ci95| Estimate { mean: self.mean, ci95, n: self.n_seeds }.relative_half_width())
    }
}

/// Everything one adaptive run produced, in canonical group order.
#[derive(Debug)]
pub struct AdaptiveReport {
    pub name: String,
    pub groups: Vec<GroupSummary>,
    pub ci_target: f64,
    pub seed_budget: u64,
    /// Replicas resolved through the runner (speculative ones included).
    pub scheduled: usize,
    /// Of those, replicas that executed a simulator this run.
    pub executed: usize,
    /// Of those, replicas served from cache or by dedup.
    pub cached: usize,
    /// Suite wall time, nanoseconds (harness boundary).
    pub wall_nanos: u64,
}

impl AdaptiveReport {
    /// Replicas kept in the artifact (the sum of stopping counts).
    pub fn kept(&self) -> usize {
        self.groups.iter().map(|g| g.n_seeds as usize).sum()
    }

    /// Groups that met the CI target within the budget.
    pub fn converged(&self) -> usize {
        self.groups.iter().filter(|g| g.converged).count()
    }

    /// One stable summary line (the CI smoke job greps the
    /// `(N executed` fragment, like the engine's).
    pub fn summary_line(&self) -> String {
        format!(
            "adaptive {}: {} groups ({} converged), kept {} of {} replicas ({} executed, {} cached) in {:.2}s",
            self.name,
            self.groups.len(),
            self.converged(),
            self.kept(),
            self.scheduled,
            self.executed,
            self.cached,
            self.wall_nanos as f64 / 1e9,
        )
    }
}

/// Tracks one group across scheduling rounds.
struct GroupState {
    /// Resolved replicas, replica-index order (index = position).
    resolved: Vec<ReplicaOutcome>,
    /// `Some((n, converged))` once the stopping rule has fired.
    closed: Option<(u64, bool)>,
}

/// The deterministic stopping rule: the smallest `n` in
/// `min_n..=budget` whose index-ordered record prefix meets the
/// relative CI target, else `budget` once `budget` records exist.
/// `None` means more replicas are needed to decide.
fn stopping_point(
    metric: HeadlineMetric,
    records: &[ReplicaOutcome],
    min_n: u64,
    budget: u64,
    ci_target: f64,
) -> Option<(u64, bool)> {
    let mut w = Welford::new();
    for (i, replica) in records.iter().enumerate() {
        w.push(metric.of(&replica.record));
        let n = i as u64 + 1;
        if n >= min_n {
            if let Some(est) = w.estimate() {
                if est.meets(ci_target) {
                    return Some((n, true));
                }
            }
        }
    }
    if records.len() as u64 >= budget {
        return Some((budget, false));
    }
    None
}

/// Runs `campaign` to confidence on `runner`.
///
/// # Errors
///
/// Fails on unusable options, on the first replica (canonical order)
/// that could not be completed, and on artifact I/O failures.
pub fn run_adaptive(
    campaign: &AdaptiveCampaign,
    opts: &AdaptiveOptions,
    runner: &dyn ReplicaRunner,
) -> Result<AdaptiveReport, AdaptiveError> {
    if opts.seed_budget < 2 {
        return Err(AdaptiveError::Config(format!(
            "seed budget {} is below 2; a CI needs two samples",
            opts.seed_budget
        )));
    }
    if !opts.ci_target.is_finite() {
        return Err(AdaptiveError::Config("ci target must be finite".into()));
    }
    let clock = HarnessClock::start();
    let min_n = opts.min_seeds.max(2).min(opts.seed_budget);

    let mut states: Vec<GroupState> = campaign
        .groups
        .iter()
        .map(|_| GroupState { resolved: Vec::new(), closed: None })
        .collect();
    let mut scheduled = 0usize;
    let mut executed = 0usize;
    let mut cached = 0usize;
    let mut round = 0u32;

    loop {
        // Close every group the rule has decided.
        for (group, state) in campaign.groups.iter().zip(&mut states) {
            if state.closed.is_some() {
                continue;
            }
            state.closed = stopping_point(
                group.metric,
                &state.resolved,
                min_n,
                opts.seed_budget,
                opts.ci_target,
            );
            if opts.progress {
                if let Some((n, converged)) = state.closed {
                    eprintln!(
                        "adaptive {}: {} {} at n={n}",
                        campaign.name,
                        group.label,
                        if converged { "converged" } else { "exhausted its budget" },
                    );
                }
            }
        }

        // Schedule the next batch: the first round seeds every open
        // group to `min_n`; later rounds grow each open group ~1.5x,
        // capped at the budget. One batch spans all open groups, so the
        // pool (or daemon fleet) sees wide, mixed work.
        let mut owners: Vec<usize> = Vec::new();
        let mut batch: Vec<CellSpec> = Vec::new();
        for (gi, (group, state)) in campaign.groups.iter().zip(&states).enumerate() {
            if state.closed.is_some() {
                continue;
            }
            let have = state.resolved.len() as u64;
            let target =
                if have == 0 { min_n } else { (have + have.div_ceil(2)).min(opts.seed_budget) };
            for index in have..target {
                owners.push(gi);
                batch.push(replica_spec(group, index));
            }
        }
        if batch.is_empty() {
            break; // every group is closed
        }
        round += 1;
        if opts.progress {
            eprintln!(
                "adaptive {}: round {round}: {} replica(s) across {} open group(s)",
                campaign.name,
                batch.len(),
                owners.iter().collect::<std::collections::BTreeSet<_>>().len(),
            );
        }
        let resolved = runner.run_batch(&campaign.name, &batch)?;
        debug_assert_eq!(resolved.len(), batch.len(), "runner resolves every cell");
        scheduled += resolved.len();
        for ((gi, spec), replica) in owners.iter().zip(batch).zip(resolved) {
            if replica.cached {
                cached += 1;
            } else {
                executed += 1;
            }
            states[*gi].resolved.push(ReplicaOutcome {
                hash: spec.config.content_hash(),
                label: spec.label,
                config: spec.config,
                record: replica.record,
                cached: replica.cached,
            });
        }
    }

    // Summaries: fold the kept prefix in index order (never merged
    // partials — bit-stable means one canonical fold order).
    let groups: Vec<GroupSummary> = campaign
        .groups
        .iter()
        .zip(states)
        .map(|(group, mut state)| {
            let (n, converged) = state.closed.unwrap_or_else(|| {
                unreachable!("the scheduling loop only exits with every group closed")
            });
            state.resolved.truncate(n as usize);
            let mut w = Welford::new();
            for replica in &state.resolved {
                w.push(group.metric.of(&replica.record));
            }
            GroupSummary {
                label: group.label.clone(),
                metric: group.metric,
                mean: w.mean(),
                ci95: w.ci95_half_width(),
                n_seeds: n,
                converged,
                replicas: state.resolved,
            }
        })
        .collect();

    let report = AdaptiveReport {
        name: campaign.name.clone(),
        groups,
        ci_target: opts.ci_target,
        seed_budget: opts.seed_budget,
        scheduled,
        executed,
        cached,
        wall_nanos: clock.elapsed_nanos(),
    };

    if let Some(path) = &opts.merged_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, artifact_text(&report))?;
    }

    Ok(report)
}

/// One group's artifact summary line: the statistically settled numbers
/// downstream figure tables consume.
fn group_summary_line(group: &GroupSummary) -> Json {
    Json::obj(vec![
        ("group", Json::Str(group.label.clone())),
        ("metric", Json::Str(group.metric.name().to_string())),
        ("mean", Json::num(group.mean)),
        ("ci95", group.ci95.map_or(Json::Null, Json::num)),
        ("rel_ci95", group.rel_ci95().map_or(Json::Null, Json::num)),
        ("n_seeds", Json::UInt(group.n_seeds)),
        ("converged", Json::Bool(group.converged)),
    ])
}

/// The merged artifact: per group, the kept replica lines (the engine's
/// exact entry encoding — label, hash, config, record) followed by the
/// group's summary line, then a trailing adaptive footer. Everything is
/// a pure function of the campaign definition and the options.
fn artifact_text(report: &AdaptiveReport) -> String {
    let mut text = String::new();
    for group in &report.groups {
        for replica in &group.replicas {
            let line = engine::merged_entry_line(
                &replica.label,
                &replica.hash,
                &replica.config,
                &replica.record,
            );
            text.push_str(&line.to_string_compact());
            text.push('\n');
        }
        text.push_str(&group_summary_line(group).to_string_compact());
        text.push('\n');
    }
    let footer = Json::obj(vec![
        ("footer", Json::Bool(true)),
        ("campaign", Json::Str(report.name.clone())),
        ("mode", Json::Str("adaptive".into())),
        ("groups", Json::UInt(report.groups.len() as u64)),
        ("replicas", Json::UInt(report.kept() as u64)),
        ("ci_target", Json::num(report.ci_target)),
        ("seed_budget", Json::UInt(report.seed_budget)),
    ]);
    text.push_str(&footer.to_string_compact());
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with(roi_cycles: u64) -> CellRecord {
        let mut c = CellConfig::hot_lock(1, 40, 20);
        c.width = 2;
        c.height = 2;
        c.max_cycles = 1_000_000;
        let result = c.to_experiment().run().expect("valid experiment");
        let mut record = CellRecord::from_result(&result);
        record.roi_cycles = roi_cycles;
        record
    }

    fn outcome(i: u64, roi_cycles: u64) -> ReplicaOutcome {
        let config = CellConfig::benchmark("freq");
        ReplicaOutcome {
            label: replica_label("g", i),
            hash: config.content_hash(),
            config,
            record: record_with(roi_cycles),
            cached: false,
        }
    }

    #[test]
    fn seed_streams_are_deterministic_and_group_keyed() {
        assert_eq!(replica_seed("a", 0), replica_seed("a", 0));
        assert_ne!(replica_seed("a", 0), replica_seed("a", 1));
        assert_ne!(replica_seed("a", 0), replica_seed("b", 0));
        let mut seeds: Vec<u64> = (0..64).map(|i| replica_seed("fig11/kdtree", i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "no collisions in a 64-deep stream");
    }

    #[test]
    fn metrics_read_the_documented_record_fields() {
        let record = record_with(1000);
        assert_eq!(HeadlineMetric::RoiCycles.of(&record), 1000.0);
        assert_eq!(
            HeadlineMetric::CsAccessTime.of(&record),
            record.avg_cs_coh + record.avg_cs_cse
        );
        let expected =
            record.lco_cycles as f64 / (record.roi_cycles as f64 * record.threads as f64);
        assert_eq!(HeadlineMetric::LcoShare.of(&record), expected);
    }

    #[test]
    fn stopping_rule_takes_the_smallest_satisfying_prefix() {
        // Identical values: zero variance, converges exactly at min_n.
        let identical: Vec<ReplicaOutcome> = (0..5).map(|i| outcome(i, 500)).collect();
        assert_eq!(
            stopping_point(HeadlineMetric::RoiCycles, &identical, 3, 8, 0.05),
            Some((3, true))
        );
        // A spread prefix that tightens later: undecided until enough
        // records exist, then converges at the first satisfying n.
        let spread: Vec<ReplicaOutcome> =
            [100u64, 200, 150, 150, 150, 150, 150, 150, 150, 150, 150, 150]
                .iter()
                .enumerate()
                .map(|(i, &v)| outcome(i as u64, v))
                .collect();
        let undecided = stopping_point(HeadlineMetric::RoiCycles, &spread[..3], 3, 40, 0.05);
        assert_eq!(undecided, None, "a loose CI with budget headroom keeps going");
        let (n, converged) =
            stopping_point(HeadlineMetric::RoiCycles, &spread, 3, 40, 0.30).expect("decided");
        assert!(converged);
        assert!(n >= 3 && n <= spread.len() as u64, "n={n}");
        // The same records with an unmeetable target exhaust the budget.
        assert_eq!(
            stopping_point(HeadlineMetric::RoiCycles, &spread, 3, 12, -1.0),
            Some((12, false))
        );
    }

    #[test]
    fn stopping_rule_is_prefix_stable() {
        // Extending the record list past a satisfying prefix must not
        // change the stopping point — this is what makes speculative
        // over-scheduling harmless.
        let records: Vec<ReplicaOutcome> = (0..10).map(|i| outcome(i, 700)).collect();
        let early = stopping_point(HeadlineMetric::RoiCycles, &records[..4], 3, 10, 0.05);
        let late = stopping_point(HeadlineMetric::RoiCycles, &records, 3, 10, 0.05);
        assert_eq!(early, late);
        assert_eq!(early, Some((3, true)));
    }

    #[test]
    fn degenerate_options_are_refused() {
        let campaign = AdaptiveCampaign::new("t");
        let runner = EngineRunner { exec: ExecOptions::quiet() };
        let opts = AdaptiveOptions { seed_budget: 1, ..AdaptiveOptions::default() };
        assert!(matches!(
            run_adaptive(&campaign, &opts, &runner),
            Err(AdaptiveError::Config(_))
        ));
        let opts = AdaptiveOptions { ci_target: f64::NAN, ..AdaptiveOptions::default() };
        assert!(matches!(
            run_adaptive(&campaign, &opts, &runner),
            Err(AdaptiveError::Config(_))
        ));
    }

    #[test]
    fn group_labels_must_be_unique() {
        let mut campaign = AdaptiveCampaign::new("t");
        campaign.push("g", CellConfig::benchmark("freq"), HeadlineMetric::RoiCycles);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            campaign.push("g", CellConfig::benchmark("freq"), HeadlineMetric::RoiCycles);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn filtering_keeps_matching_groups_only() {
        let mut campaign = AdaptiveCampaign::new("t");
        campaign.push("freq/a", CellConfig::benchmark("freq"), HeadlineMetric::RoiCycles);
        campaign.push("kdtree/b", CellConfig::benchmark("kdtree"), HeadlineMetric::RoiCycles);
        assert_eq!(campaign.matching(Some("freq")).groups.len(), 1);
        assert_eq!(campaign.matching(None).groups.len(), 2);
    }
}
