//! `inpg submit` — the campaign-service client.
//!
//! Drives a whole campaign through one or more `inpg serve` daemons and
//! reassembles the merged artifact locally, byte-identical to what the
//! in-process engine would write: the daemons return canonical
//! [`CellRecord`]s, the client merges them in canonical (definition)
//! order through the exact helpers the engine uses
//! ([`engine::merged_entry_line`], [`engine::merged_footer`]), and no
//! wall-clock reading ever reaches the artifact.
//!
//! Fault handling mirrors the daemon's robustness contract:
//!
//! * a daemon that is unreachable or [`Reply::Draining`] → fail over to
//!   the next daemon (addresses are re-resolved from their addr-files
//!   on every attempt, so a *restarted* daemon on a fresh ephemeral
//!   port is picked up transparently);
//! * [`Reply::Overloaded`] → honor `retry_after_ms`, then retry;
//! * [`Reply::Timeout`] / [`Reply::Failed`] → a typed per-cell error —
//!   deadlines are a promise to the caller, not a retry hint.
//!
//! With several daemons sharing one cache directory, cells are sharded
//! across them by content hash, so the daemons fill disjoint slices of
//! the same cache and any of them can answer for any cell afterwards.

use crate::cell::{Campaign, CellRecord, CellSpec};
use crate::clock::HarnessClock;
use crate::engine;
use crate::pool;
use crate::protocol::{Notification, Reply, Request, ServerLine, ServiceStatus};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Where a daemon lives. A [`File`](AddrSource::File) source is re-read
/// on every attempt — that is the failover path for daemons restarted
/// on a fresh ephemeral port.
#[derive(Debug, Clone)]
pub enum AddrSource {
    /// A literal `host:port`.
    Direct(String),
    /// A file holding `host:port` (written by `inpg serve --addr-file`).
    File(PathBuf),
}

impl AddrSource {
    /// The current `host:port` for this daemon.
    pub fn resolve(&self) -> io::Result<String> {
        match self {
            AddrSource::Direct(addr) => Ok(addr.clone()),
            AddrSource::File(path) => {
                let text = std::fs::read_to_string(path)?;
                let addr = text.trim();
                if addr.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("addr file {} is empty", path.display()),
                    ));
                }
                Ok(addr.to_string())
            }
        }
    }
}

/// How to drive the service.
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// The daemons to shard cells across (at least one).
    pub daemons: Vec<AddrSource>,
    /// Concurrent in-flight requests from this client.
    pub workers: usize,
    /// Per-request deadline forwarded to the daemon (`None` defers to
    /// the daemon's default).
    pub deadline_ms: Option<u64>,
    /// Attempts per cell before giving up (connect failures, draining
    /// daemons, and overload backoffs all consume attempts).
    pub max_attempts: u32,
    /// Merged-artifact path (canonical order, deterministic bytes).
    pub merged_out: Option<PathBuf>,
    /// Per-cell progress lines on stderr.
    pub progress: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        SubmitOptions {
            daemons: Vec::new(),
            workers: engine::default_workers(),
            deadline_ms: None,
            max_attempts: 40,
            merged_out: None,
            progress: false,
        }
    }
}

/// What one service-driven campaign produced.
#[derive(Debug)]
pub struct SubmitReport {
    pub name: String,
    /// Total cells (after filtering), canonical order.
    pub cells: usize,
    /// Requests answered from the daemons' verified cache.
    pub hits: usize,
    /// Requests that executed a simulator on a daemon.
    pub executed: usize,
    /// Daemons configured for the run.
    pub daemons: usize,
    /// Corrupt cache entries the daemons quarantined (summed from their
    /// status counters after the run; unreachable daemons contribute 0).
    pub quarantined: u64,
    /// Suite wall time, nanoseconds (harness boundary).
    pub wall_nanos: u64,
    /// Client-measured service latency of every request, nanoseconds.
    pub latencies_nanos: Vec<u64>,
    /// The subset of latencies answered from cache (warm service time).
    pub hit_latencies_nanos: Vec<u64>,
}

impl SubmitReport {
    /// The `q`-quantile (0..=1) of warm-hit service latency, in
    /// milliseconds. `None` until at least one request was a hit.
    pub fn hit_latency_ms(&self, q: f64) -> Option<f64> {
        percentile_nanos(&self.hit_latencies_nanos, q).map(|n| n as f64 / 1e6)
    }

    /// One stable summary line.
    pub fn summary_line(&self) -> String {
        let p50 = self.hit_latency_ms(0.5);
        let p99 = self.hit_latency_ms(0.99);
        let warm = match (p50, p99) {
            (Some(p50), Some(p99)) => {
                format!(", warm p50 {p50:.3}ms p99 {p99:.3}ms")
            }
            _ => String::new(),
        };
        format!(
            "submit {}: {} cells ({} executed, {} hits) via {} daemon(s) in {:.2}s{warm}",
            self.name,
            self.cells,
            self.executed,
            self.hits,
            self.daemons,
            self.wall_nanos as f64 / 1e9,
        )
    }
}

/// The `q`-quantile of a latency sample (nearest-rank on the sorted
/// sample). `None` on an empty sample.
pub fn percentile_nanos(sample: &[u64], q: f64) -> Option<u64> {
    if sample.is_empty() {
        return None;
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[rank])
}

/// Why a service-driven campaign failed.
#[derive(Debug)]
pub enum SubmitError {
    /// Artifact I/O failed.
    Io(io::Error),
    /// A cell could not be completed (reported in canonical order).
    Cell { label: String, detail: String },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Io(e) => write!(f, "submit i/o: {e}"),
            SubmitError::Cell { label, detail } => write!(f, "cell `{label}`: {detail}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<io::Error> for SubmitError {
    fn from(e: io::Error) -> Self {
        SubmitError::Io(e)
    }
}

/// One request over a fresh connection, streaming any progress notes
/// the daemon pushes to `on_note` and returning the terminal reply.
pub fn request_streaming(
    addr: &str,
    req: &Request,
    mut on_note: impl FnMut(&Notification),
) -> io::Result<Reply> {
    let mut stream = TcpStream::connect(addr)?;
    let line = req.to_json().to_string_compact() + "\n";
    stream.write_all(line.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without replying",
            ));
        }
        match ServerLine::from_line(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        {
            ServerLine::Note(note) => on_note(&note),
            ServerLine::Reply(reply) => return Ok(reply),
        }
    }
}

/// One request/one terminal reply over a fresh connection; progress
/// notes, if any, are discarded.
pub fn request(addr: &str, req: &Request) -> io::Result<Reply> {
    request_streaming(addr, req, |_| {})
}

/// Asks the daemon at `source` for its status.
pub fn status(source: &AddrSource) -> io::Result<ServiceStatus> {
    match request(&source.resolve()?, &Request::Status)? {
        Reply::Status(status) => Ok(status),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a status reply, got {other:?}"),
        )),
    }
}

/// Asks the daemon at `source` to drain. Returns how many queued cells
/// it journaled.
pub fn shutdown(source: &AddrSource) -> io::Result<u64> {
    match request(&source.resolve()?, &Request::Shutdown)? {
        Reply::ShuttingDown { journaled } => Ok(journaled),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected a shutting-down reply, got {other:?}"),
        )),
    }
}

/// What one cell's service round produced: the record, whether the
/// *answering request* was a cache hit, and the client-measured latency.
struct CellReply {
    record: CellRecord,
    cached: bool,
    latency_nanos: u64,
}

/// Renders one daemon progress note on stderr, labelled with the cell
/// it is about.
fn render_note(label: &str, note: &Notification) {
    match note {
        Notification::Queued { ahead, .. } => {
            eprintln!("      {label} queued ({ahead} ahead)");
        }
        Notification::Running { .. } => eprintln!("      {label} running"),
        Notification::Done { wall_nanos, .. } => {
            eprintln!("      {label} done in {:.3}ms", *wall_nanos as f64 / 1e6);
        }
    }
}

/// Submits one cell, with failover, overload backoff, and typed errors.
fn submit_cell(
    opts: &SubmitOptions,
    spec: &CellSpec,
    shard: usize,
) -> Result<CellReply, String> {
    let mut failovers = 0usize;
    for attempt in 0..opts.max_attempts.max(1) {
        let source = &opts.daemons[(shard + failovers) % opts.daemons.len()];
        let clock = HarnessClock::start();
        let outcome = source.resolve().and_then(|addr| {
            request_streaming(
                &addr,
                &Request::Submit {
                    config: spec.config.clone(),
                    deadline_ms: opts.deadline_ms,
                },
                |note| {
                    if opts.progress {
                        render_note(&spec.label, note);
                    }
                },
            )
        });
        match outcome {
            Ok(Reply::Result { record, cached, .. }) => {
                return Ok(CellReply {
                    record: *record,
                    cached,
                    latency_nanos: clock.elapsed_nanos(),
                })
            }
            Ok(Reply::Timeout { detail }) => return Err(format!("timeout: {detail}")),
            Ok(Reply::Failed { detail }) => return Err(format!("failed: {detail}")),
            Ok(Reply::Invalid { detail }) => return Err(format!("rejected: {detail}")),
            Ok(Reply::Overloaded { retry_after_ms }) => {
                // The daemon shed us honestly; honor its backoff.
                std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(1, 2_000)));
            }
            Ok(Reply::Draining) | Err(_) => {
                // Gone, restarting, or refusing new work: try the next
                // daemon, with a small growing pause so a lone daemon
                // mid-restart gets a window to come back.
                failovers += 1;
                std::thread::sleep(Duration::from_millis(
                    (10 * (u64::from(attempt) + 1)).min(250),
                ));
            }
            Ok(other) => return Err(format!("unexpected reply {other:?}")),
        }
    }
    Err(format!(
        "gave up after {} attempts across {} daemon(s)",
        opts.max_attempts.max(1),
        opts.daemons.len()
    ))
}

/// One cell resolved through the daemons.
#[derive(Debug)]
pub struct CellResolution {
    pub record: CellRecord,
    /// Whether this run served the cell without executing a simulator:
    /// the answering request was a cache hit, or the cell was a dedup
    /// sibling of an identical one.
    pub cached: bool,
    /// Client-measured round-trip latency; `None` for dedup siblings
    /// (served by the owner's round trip, no wire traffic of their own).
    pub latency_nanos: Option<u64>,
}

/// Resolves `cells` through the configured daemons, returning one
/// resolution per cell in input order — the service-backed counterpart
/// of [`engine::execute`]'s outcome list, shared by `run_campaign` and
/// the adaptive controller's `ServiceRunner`.
///
/// # Errors
///
/// Fails when no daemon is configured and on the first cell (input
/// order) that could not be completed.
pub fn run_cells(
    cells: &[CellSpec],
    opts: &SubmitOptions,
) -> Result<Vec<CellResolution>, SubmitError> {
    if opts.daemons.is_empty() {
        return Err(SubmitError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no daemons configured (pass --daemon or --addr-file)",
        )));
    }

    // The engine's dedup scheme: identical configs round-trip once and
    // share the reply (the daemon's cache would dedupe them anyway, but
    // not the wire round-trips). Non-cacheable cells each submit.
    let mut owner_of: BTreeMap<String, usize> = BTreeMap::new();
    let mut exec_slot: BTreeMap<usize, usize> = BTreeMap::new();
    let mut unique: Vec<usize> = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        if cell.config.cacheable() {
            let hash = cell.config.content_hash();
            if let Some(&slot) = owner_of.get(&hash) {
                exec_slot.insert(i, slot);
                continue;
            }
            owner_of.insert(hash, unique.len());
        }
        exec_slot.insert(i, unique.len());
        unique.push(i);
    }

    let done = AtomicUsize::new(0); // sync: monotone progress count, see fetch_add below
    let replies: Vec<Result<CellReply, String>> =
        pool::run_indexed(unique.len(), opts.workers, |k| {
            let spec = &cells[unique[k]];
            // Shard by content hash so co-operating daemons fill
            // disjoint slices of the shared cache.
            let shard = u64::from_str_radix(&spec.config.content_hash(), 16)
                .unwrap_or(0) as usize;
            let reply = submit_cell(opts, spec, shard);
            if opts.progress {
                // sync: SeqCst — progress numbering must be the claim
                // order across workers; per-cell frequency, cost moot.
                let n = done.fetch_add(1, Ordering::SeqCst) + 1;
                match &reply {
                    Ok(r) => eprintln!(
                        "[{n}/{}] {} {} {:.3}ms",
                        unique.len(),
                        spec.label,
                        if r.cached { "hit" } else { "ran" },
                        r.latency_nanos as f64 / 1e6,
                    ),
                    Err(e) => eprintln!("[{n}/{}] {} ERROR {e}", unique.len(), spec.label),
                }
            }
            reply
        });

    // Reassemble in input order; fail on the first error in that order.
    let mut resolutions = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let slot = *exec_slot.get(&i).unwrap_or_else(|| {
            unreachable!("cell {i} was never given an execution slot")
        });
        let reply = match &replies[slot] {
            Ok(reply) => reply,
            Err(detail) => {
                return Err(SubmitError::Cell {
                    label: cell.label.clone(),
                    detail: detail.clone(),
                })
            }
        };
        let is_owner = unique[slot] == i;
        resolutions.push(CellResolution {
            record: reply.record.clone(),
            // A dedup sibling is served by the owner's round trip.
            cached: reply.cached || !is_owner,
            latency_nanos: is_owner.then_some(reply.latency_nanos),
        });
    }
    Ok(resolutions)
}

/// Drives `campaign` through the configured daemons and reassembles the
/// merged artifact in canonical order.
///
/// # Errors
///
/// Fails when no daemon is configured, on the first cell (canonical
/// order) that could not be completed, and on artifact I/O failures.
pub fn run_campaign(
    campaign: &Campaign,
    filter: Option<&str>,
    opts: &SubmitOptions,
) -> Result<SubmitReport, SubmitError> {
    let clock = HarnessClock::start();
    let cells: Vec<CellSpec> = campaign.matching(filter).into_iter().cloned().collect();
    let resolutions = run_cells(&cells, opts)?;

    let mut lines = Vec::with_capacity(cells.len());
    let mut hits = 0usize;
    let mut executed = 0usize;
    let mut latencies = Vec::new();
    let mut hit_latencies = Vec::new();
    for (cell, resolution) in cells.iter().zip(&resolutions) {
        match resolution.latency_nanos {
            Some(latency) => {
                latencies.push(latency);
                if resolution.cached {
                    hits += 1;
                    hit_latencies.push(latency);
                } else {
                    executed += 1;
                }
            }
            // A dedup sibling: served by the owner's round trip.
            None => hits += 1,
        }
        lines.push(engine::merged_entry_line(
            &cell.label,
            &cell.config.content_hash(),
            &cell.config,
            &resolution.record,
        ));
    }

    // The daemons' corruption tally, for the artifact footer. A daemon
    // that drained away since its last answer simply contributes 0.
    let quarantined: u64 = opts
        .daemons
        .iter()
        .filter_map(|source| status(source).ok())
        .map(|s| s.quarantined)
        .sum();

    let report = SubmitReport {
        name: campaign.name.clone(),
        cells: cells.len(),
        hits,
        executed,
        daemons: opts.daemons.len(),
        quarantined,
        wall_nanos: clock.elapsed_nanos(),
        latencies_nanos: latencies,
        hit_latencies_nanos: hit_latencies,
    };

    if let Some(path) = &opts.merged_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = String::new();
        for line in &lines {
            text.push_str(&line.to_string_compact());
            text.push('\n');
        }
        text.push_str(
            &engine::merged_footer(&report.name, report.cells, report.quarantined as usize)
                .to_string_compact(),
        );
        text.push('\n');
        std::fs::write(path, text)?;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile_nanos(&[], 0.5), None);
        assert_eq!(percentile_nanos(&[7], 0.99), Some(7));
        let sample: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nanos(&sample, 0.0), Some(1));
        assert_eq!(percentile_nanos(&sample, 0.5), Some(51), "round(99*0.5)=50 → 51");
        assert_eq!(percentile_nanos(&sample, 0.99), Some(99));
        assert_eq!(percentile_nanos(&sample, 1.0), Some(100));
    }

    #[test]
    fn addr_files_resolve_and_report_emptiness() {
        let path = std::env::temp_dir().join(format!(
            "inpg-submit-test-addr-{}.txt",
            std::process::id()
        ));
        std::fs::write(&path, "127.0.0.1:4455\n").expect("write addr");
        let source = AddrSource::File(path.clone());
        assert_eq!(source.resolve().expect("resolves"), "127.0.0.1:4455");
        std::fs::write(&path, "\n").expect("truncate");
        assert!(source.resolve().is_err(), "empty addr file must error");
        let _ = std::fs::remove_file(&path);
        assert!(source.resolve().is_err(), "missing addr file must error");
        assert_eq!(
            AddrSource::Direct("h:1".into()).resolve().expect("direct"),
            "h:1"
        );
    }

    #[test]
    fn a_submit_without_daemons_is_refused() {
        let campaign = Campaign::new("t");
        let err = run_campaign(&campaign, None, &SubmitOptions::default())
            .expect_err("no daemons must fail");
        assert!(err.to_string().contains("no daemons"), "{err}");
    }
}
