//! The drain journal: cells that were admitted but not yet executed
//! when a daemon drained, persisted so the next daemon can replay them.
//!
//! Format: one canonical [`CellConfig`] encoding per line, written as a
//! whole file through tmp+fsync+rename (the same crash-safety discipline
//! as the result cache). A journal is therefore either fully present or
//! absent — a daemon killed *while* draining leaves at worst the old
//! journal, never a torn one. Replay is idempotent: executing a
//! journaled cell stores its record at the cell's content address, so a
//! cell journaled twice (or already completed by a sibling daemon) costs
//! one verified cache hit, not a re-run.

use crate::cell::CellConfig;
use crate::json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Atomically replaces the journal at `path` with `cells` (parent
/// directories are created). An empty slice removes the journal
/// instead: no pending work means no file.
pub fn write(path: &Path, cells: &[CellConfig]) -> io::Result<()> {
    if cells.is_empty() {
        return clear(path);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut text = String::new();
    for cell in cells {
        text.push_str(&cell.canonical());
        text.push('\n');
    }
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, text.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Loads the journal at `path`. A missing journal is an empty one; a
/// line that does not parse as a cell config is reported, not silently
/// dropped.
pub fn load(path: &Path) -> io::Result<Vec<CellConfig>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut cells = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line)
            .map_err(|e| corrupt(path, n + 1, &e.to_string()))
            .and_then(|v| {
                CellConfig::from_json(&v).map_err(|e| corrupt(path, n + 1, &e.to_string()))
            })?;
        cells.push(parsed);
    }
    Ok(cells)
}

/// Removes the journal (idempotent).
pub fn clear(path: &Path) -> io::Result<()> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("journal"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(format!(".{}.tmp", std::process::id()));
    path.with_file_name(name)
}

fn corrupt(path: &Path, line: usize, why: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("journal {}:{line}: {why}", path.display()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellConfig;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir()
            .join(format!("inpg-journal-test-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn roundtrips_and_clears() {
        let path = tmp("roundtrip");
        let cells = vec![
            CellConfig::benchmark("freq"),
            CellConfig::hot_lock(4, 100, 50),
        ];
        write(&path, &cells).unwrap();
        assert_eq!(load(&path).unwrap(), cells);

        // Rewriting replaces, never appends.
        write(&path, &cells[..1]).unwrap();
        assert_eq!(load(&path).unwrap(), cells[..1]);

        // An empty write removes the file entirely.
        write(&path, &[]).unwrap();
        assert!(!path.exists());
        assert_eq!(load(&path).unwrap(), Vec::<CellConfig>::new());
        clear(&path).unwrap();
    }

    #[test]
    fn a_corrupt_line_is_an_error_not_a_skip() {
        let path = tmp("corrupt");
        fs::write(&path, "{\"schema\":1, nope\n").unwrap();
        let err = load(&path).expect_err("corrupt journal must error");
        assert!(err.to_string().contains(":1:"), "{err}");
        let _ = fs::remove_file(&path);
    }
}
