//! The named cell sets of the evaluation: one builder per figure plus
//! the CI smoke set and the `all` union.
//!
//! Both the `inpg campaign` subcommand and the `fig*` binaries build
//! their cells here, so a figure regenerated standalone and the same
//! figure regenerated inside a campaign hash to the same cache entries
//! and share results. Labels are the formatting keys the binaries use
//! to pull records back out of a [`CampaignReport`]; they must stay in
//! sync with the builders below.
//!
//! [`CampaignReport`]: crate::engine::CampaignReport

use crate::adaptive::{AdaptiveCampaign, HeadlineMetric};
use crate::cell::{Campaign, CellConfig};
use inpg::{LockPrimitive, Mechanism};
use inpg_workloads::{group_of, CsGroup, BENCHMARKS};

/// Tile (x=5, y=6) on the 8×8 mesh: the Figure-10 lock home.
pub const HOT_LOCK_HOME: usize = 6 * 8 + 5;

/// Big-router deployments swept by Figure 14.
pub const FIG14_DEPLOYMENTS: [usize; 5] = [0, 4, 16, 32, 64];

/// Mesh dimensions swept by Figure 15.
pub const FIG15_MESHES: [(u8, u8); 4] = [(2, 2), (4, 4), (8, 8), (16, 16)];

/// Barrier-table sizes swept by Figure 15.
pub const FIG15_TABLES: [usize; 3] = [4, 16, 64];

/// QSL retry budgets swept by the ablation harness.
pub const ABLATION_BUDGETS: [u32; 4] = [16, 64, 128, 512];

/// Barrier-table sizes swept by the ablation harness.
pub const ABLATION_ENTRIES: [usize; 5] = [1, 2, 8, 16, 32];

/// Ablation subjects (one per benchmark group).
pub const ABLATION_SUBJECTS: [&str; 3] = ["kdtree", "fluid", "dedup"];

/// One suite the CLI can run by name.
#[derive(Debug, Clone, Copy)]
pub struct SuiteInfo {
    pub name: &'static str,
    /// Scale used when the caller does not override it (matches the
    /// standalone fig binary's default).
    pub default_scale: f64,
    /// Whether the suite averages over workload seeds.
    pub uses_seeds: bool,
    pub about: &'static str,
}

/// Every suite `build` understands, in canonical order.
pub const SUITES: &[SuiteInfo] = &[
    SuiteInfo { name: "smoke", default_scale: 0.02, uses_seeds: false, about: "tiny CI set (4x4 mesh + hot-lock)" },
    SuiteInfo { name: "fig02", default_scale: 0.2, uses_seeds: false, about: "LCO share per primitive" },
    SuiteInfo { name: "fig08", default_scale: 0.2, uses_seeds: false, about: "CS characteristics, 24 programs" },
    SuiteInfo { name: "fig09", default_scale: 0.2, uses_seeds: false, about: "freqmine timing profile (uncacheable)" },
    SuiteInfo { name: "fig10", default_scale: 0.1, uses_seeds: false, about: "Inv-Ack delay, hot lock" },
    SuiteInfo { name: "fig11", default_scale: 0.2, uses_seeds: true, about: "CS expedition, 4 mechanisms" },
    SuiteInfo { name: "fig12", default_scale: 0.2, uses_seeds: true, about: "ROI finish time (same cells as fig11)" },
    SuiteInfo { name: "fig13", default_scale: 0.05, uses_seeds: false, about: "iNPG per locking primitive" },
    SuiteInfo { name: "fig14", default_scale: 0.05, uses_seeds: false, about: "big-router deployment sweep" },
    SuiteInfo { name: "fig15", default_scale: 0.02, uses_seeds: false, about: "mesh x table-size sensitivity" },
    SuiteInfo { name: "ablation", default_scale: 0.1, uses_seeds: false, about: "retry budget / deployment / table knobs" },
    SuiteInfo { name: "all", default_scale: 0.0, uses_seeds: true, about: "union of every figure suite (per-suite scales)" },
];

/// Looks up a suite's metadata.
pub fn suite_info(name: &str) -> Option<&'static SuiteInfo> {
    SUITES.iter().find(|s| s.name == name)
}

/// Builds a suite by name. `scale` overrides the suite default (ignored
/// by `all`, which keeps each member suite at its own default); `seeds`
/// feeds the seed-averaging suites and must be nonempty.
pub fn build(name: &str, scale: Option<f64>, seeds: &[u64]) -> Option<Campaign> {
    assert!(!seeds.is_empty(), "at least one workload seed");
    let info = suite_info(name)?;
    let scale_for = |default: f64| scale.unwrap_or(default);
    Some(match info.name {
        "smoke" => smoke(scale_for(0.02)),
        "fig02" => fig02(scale_for(0.2)),
        "fig08" => fig08(scale_for(0.2)),
        "fig09" => fig09(scale_for(0.2)),
        "fig10" => fig10(scale_for(0.1)),
        "fig11" => fig11(scale_for(0.2), seeds),
        "fig12" => fig12(scale_for(0.2), seeds),
        "fig13" => fig13(scale_for(0.05)),
        "fig14" => fig14(scale_for(0.05)),
        "fig15" => fig15(scale_for(0.02)),
        "ablation" => ablation(scale_for(0.1)),
        "all" => all(seeds),
        _ => unreachable!("suite_info and build agree on names"),
    })
}

/// Label for a seed-averaged cell component.
pub fn seed_label(seed: u64) -> String {
    format!("s{seed:08x}")
}

/// One adaptive suite the CLI can run by name: the fixed suite it is
/// derived from, and the headline metric driven to confidence.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSuiteInfo {
    pub name: &'static str,
    pub metric: HeadlineMetric,
    pub about: &'static str,
}

/// Every suite `build_adaptive` understands. Each fixed cell (seed
/// dimension removed) becomes one adaptive *group* whose seed replicas
/// are drawn from the group's own deterministic stream — the suites
/// that already sweep seeds (fig11/fig12) sweep confidence instead.
pub const ADAPTIVE_SUITES: &[AdaptiveSuiteInfo] = &[
    AdaptiveSuiteInfo { name: "smoke", metric: HeadlineMetric::CsAccessTime, about: "tiny CI set, CS access time to confidence" },
    AdaptiveSuiteInfo { name: "fig02", metric: HeadlineMetric::LcoShare, about: "LCO share per primitive, to confidence" },
    AdaptiveSuiteInfo { name: "fig11", metric: HeadlineMetric::CsAccessTime, about: "CS expedition, seeds to confidence" },
    AdaptiveSuiteInfo { name: "fig12", metric: HeadlineMetric::RoiCycles, about: "ROI finish time, seeds to confidence" },
];

/// Looks up an adaptive suite's metadata.
pub fn adaptive_suite_info(name: &str) -> Option<&'static AdaptiveSuiteInfo> {
    ADAPTIVE_SUITES.iter().find(|s| s.name == name)
}

/// Wraps a fixed campaign: every cell becomes one adaptive group with
/// the given headline metric (the cell's `seed` field is a template the
/// controller overwrites per replica).
fn adaptive_from(campaign: Campaign, metric: HeadlineMetric) -> AdaptiveCampaign {
    let mut a = AdaptiveCampaign::new(campaign.name);
    for cell in campaign.cells {
        a.push(cell.label, cell.config, metric);
    }
    a
}

/// The fig11/fig12 cell matrix without the seed dimension: one group
/// per program × mechanism, labelled `{bench}/{mechanism}`.
fn adaptive_mechanism_sweep(
    name: &'static str,
    scale: f64,
    metric: HeadlineMetric,
) -> AdaptiveCampaign {
    let mut a = AdaptiveCampaign::new(name);
    for spec in &BENCHMARKS {
        for mechanism in Mechanism::ALL {
            a.push(
                format!("{}/{mechanism}", spec.name),
                qsl_bench(spec.name, mechanism, scale),
                metric,
            );
        }
    }
    a
}

/// Builds an adaptive suite by name. `scale` overrides the fixed
/// suite's default.
pub fn build_adaptive(name: &str, scale: Option<f64>) -> Option<AdaptiveCampaign> {
    let info = adaptive_suite_info(name)?;
    Some(match info.name {
        "smoke" => adaptive_from(smoke(scale.unwrap_or(0.02)), info.metric),
        "fig02" => adaptive_from(fig02(scale.unwrap_or(0.2)), info.metric),
        "fig11" => adaptive_mechanism_sweep("fig11", scale.unwrap_or(0.2), info.metric),
        "fig12" => adaptive_mechanism_sweep("fig12", scale.unwrap_or(0.2), info.metric),
        _ => unreachable!("adaptive_suite_info and build_adaptive agree on names"),
    })
}

fn qsl_bench(name: &str, mechanism: Mechanism, scale: f64) -> CellConfig {
    let mut c = CellConfig::benchmark(name);
    c.mechanism = mechanism;
    c.primitive = LockPrimitive::Qsl;
    c.scale = scale;
    c
}

/// Group-3 (high CS time) benchmarks — the sensitivity-study subjects.
fn high_group() -> Vec<&'static str> {
    BENCHMARKS
        .iter()
        .filter(|b| group_of(b) == CsGroup::High)
        .map(|b| b.name)
        .collect()
}

/// Tiny CI set: two small benchmarks and the hot-lock micro on a 4×4
/// mesh, Original vs iNPG. Seconds, not minutes.
pub fn smoke(scale: f64) -> Campaign {
    let mut c = Campaign::new("smoke");
    for bench in ["freq", "kdtree"] {
        for mechanism in [Mechanism::Original, Mechanism::Inpg] {
            let mut cfg = qsl_bench(bench, mechanism, scale);
            cfg.width = 4;
            cfg.height = 4;
            c.push(format!("{bench}/{mechanism}"), cfg);
        }
    }
    for mechanism in [Mechanism::Original, Mechanism::Inpg] {
        let mut cfg = CellConfig::hot_lock(4, 500, 100);
        cfg.mechanism = mechanism;
        cfg.width = 4;
        cfg.height = 4;
        cfg.lock_home = Some(5);
        c.push(format!("hot/{mechanism}"), cfg);
    }
    c
}

/// Figure 2: LCO share under the five primitives, Original mechanism.
pub fn fig02(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig02");
    for bench in ["kdtree", "face", "fluid"] {
        for primitive in LockPrimitive::ALL {
            let mut cfg = CellConfig::benchmark(bench);
            cfg.primitive = primitive;
            cfg.scale = scale;
            c.push(format!("{bench}/{primitive}"), cfg);
        }
    }
    c
}

/// Figure 8b: COH/CSE breakdown, Original + QSL, all 24 programs.
pub fn fig08(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig08");
    for spec in &BENCHMARKS {
        c.push(spec.name, qsl_bench(spec.name, Mechanism::Original, scale));
    }
    c
}

/// Figure 9: freqmine timeline under the four mechanisms. Timeline
/// cells are uncacheable and always execute fresh.
pub fn fig09(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig09");
    for mechanism in Mechanism::ALL {
        let mut cfg = qsl_bench("freq", mechanism, scale);
        cfg.record_timeline = true;
        c.push(format!("{mechanism}"), cfg);
    }
    c
}

/// Rounds of the Figure-10 hot-lock micro at `scale`.
pub fn fig10_rounds(scale: f64) -> u64 {
    (scale * 160.0).ceil().max(4.0) as u64
}

/// Figure 10: 64 threads hammering one TAS lock homed at (5, 6).
pub fn fig10(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig10");
    for mechanism in [Mechanism::Original, Mechanism::Inpg] {
        let mut cfg = CellConfig::hot_lock(fig10_rounds(scale), 500, 100);
        cfg.mechanism = mechanism;
        cfg.lock_home = Some(HOT_LOCK_HOME);
        c.push(format!("{mechanism}"), cfg);
    }
    c
}

fn mechanism_sweep(name: &'static str, scale: f64, seeds: &[u64]) -> Campaign {
    let mut c = Campaign::new(name);
    for spec in &BENCHMARKS {
        for mechanism in Mechanism::ALL {
            for &seed in seeds {
                let mut cfg = qsl_bench(spec.name, mechanism, scale);
                cfg.seed = seed;
                c.push(
                    format!("{}/{mechanism}/{}", spec.name, seed_label(seed)),
                    cfg,
                );
            }
        }
    }
    c
}

/// Figure 11: all 24 programs × four mechanisms × seeds (QSL).
pub fn fig11(scale: f64, seeds: &[u64]) -> Campaign {
    mechanism_sweep("fig11", scale, seeds)
}

/// Figure 12 shares Figure 11's cell set (and therefore its cache
/// entries); only the formatting differs.
pub fn fig12(scale: f64, seeds: &[u64]) -> Campaign {
    mechanism_sweep("fig12", scale, seeds)
}

/// Figure 13: all 24 programs × five primitives × {Original, iNPG}.
pub fn fig13(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig13");
    for spec in &BENCHMARKS {
        for primitive in LockPrimitive::ALL {
            for mechanism in [Mechanism::Original, Mechanism::Inpg] {
                let mut cfg = CellConfig::benchmark(spec.name);
                cfg.primitive = primitive;
                cfg.mechanism = mechanism;
                cfg.scale = scale;
                c.push(format!("{}/{primitive}/{mechanism}", spec.name), cfg);
            }
        }
    }
    c
}

/// Figure 14: Group-3 programs × big-router deployments (0 = Original).
pub fn fig14(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig14");
    for bench in high_group() {
        for count in FIG14_DEPLOYMENTS {
            let mechanism =
                if count == 0 { Mechanism::Original } else { Mechanism::Inpg };
            let mut cfg = qsl_bench(bench, mechanism, scale);
            cfg.big_routers = Some(count);
            c.push(format!("{bench}/br{count}"), cfg);
        }
    }
    c
}

/// Figure 15: Group-3 programs × mesh sizes × barrier-table sizes, with
/// one Original baseline per (mesh, program).
pub fn fig15(scale: f64) -> Campaign {
    let mut c = Campaign::new("fig15");
    for (w, h) in FIG15_MESHES {
        for bench in high_group() {
            let mut base = qsl_bench(bench, Mechanism::Original, scale);
            base.width = w;
            base.height = h;
            c.push(format!("{w}x{h}/{bench}/base"), base);
            for entries in FIG15_TABLES {
                let mut cfg = qsl_bench(bench, Mechanism::Inpg, scale);
                cfg.width = w;
                cfg.height = h;
                cfg.barrier_entries = entries;
                c.push(format!("{w}x{h}/{bench}/e{entries}"), cfg);
            }
        }
    }
    c
}

/// The DESIGN.md knob ablations: QSL retry budget, deployment pattern,
/// barrier-table size. Sweep points that coincide with the defaults
/// (budget 128, 16 entries) repeat the default config under their own
/// labels; the engine dedupes them at execution time.
pub fn ablation(scale: f64) -> Campaign {
    let mut c = Campaign::new("ablation");
    for subject in ABLATION_SUBJECTS {
        c.push(
            format!("{subject}/base"),
            qsl_bench(subject, Mechanism::Original, scale),
        );
        for budget in ABLATION_BUDGETS {
            let mut cfg = qsl_bench(subject, Mechanism::Inpg, scale);
            cfg.retry_budget = budget;
            c.push(format!("{subject}/budget{budget}"), cfg);
        }
        let mut spread = qsl_bench(subject, Mechanism::Inpg, scale);
        spread.big_routers = Some(32);
        c.push(format!("{subject}/spread32"), spread);
        for entries in ABLATION_ENTRIES {
            let mut cfg = qsl_bench(subject, Mechanism::Inpg, scale);
            cfg.barrier_entries = entries;
            c.push(format!("{subject}/entries{entries}"), cfg);
        }
    }
    c
}

/// The union of every figure suite (each at its own default scale),
/// labels prefixed `suite:`. Configs shared between suites — fig11 and
/// fig12 entirely, sweep points that coincide with defaults — execute
/// once thanks to content-hash dedup.
pub fn all(seeds: &[u64]) -> Campaign {
    let mut c = Campaign::new("all");
    for info in SUITES {
        if info.name == "smoke" || info.name == "all" {
            continue;
        }
        let Some(member) = build(info.name, None, seeds) else {
            unreachable!("`{}` is in SUITES, the registry build() resolves from", info.name)
        };
        for cell in member.cells {
            c.push(format!("{}:{}", info.name, cell.label), cell.config);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_suite_builds() {
        for info in SUITES {
            let campaign = build(info.name, None, &[1, 2]).expect(info.name);
            assert_eq!(campaign.name, info.name);
            assert!(!campaign.cells.is_empty(), "{} is empty", info.name);
        }
        assert!(build("nope", None, &[1]).is_none());
    }

    #[test]
    fn fig11_and_fig12_share_their_cell_configs() {
        let a = fig11(0.2, &[7]);
        let b = fig12(0.2, &[7]);
        let hashes = |c: &Campaign| -> Vec<String> {
            c.cells.iter().map(|s| s.config.content_hash()).collect()
        };
        assert_eq!(hashes(&a), hashes(&b));
    }

    #[test]
    fn suite_cell_counts_match_their_figures() {
        assert_eq!(fig02(0.2).cells.len(), 3 * 5);
        assert_eq!(fig08(0.2).cells.len(), 24);
        assert_eq!(fig09(0.2).cells.len(), 4);
        assert_eq!(fig10(0.1).cells.len(), 2);
        assert_eq!(fig11(0.2, &[1, 2]).cells.len(), 24 * 4 * 2);
        assert_eq!(fig13(0.05).cells.len(), 24 * 5 * 2);
        let high = high_group().len();
        assert_eq!(fig14(0.05).cells.len(), high * 5);
        assert_eq!(fig15(0.02).cells.len(), high * 4 * (1 + 3));
        assert_eq!(ablation(0.1).cells.len(), 3 * (1 + 4 + 1 + 5));
    }

    #[test]
    fn fig09_cells_are_uncacheable_and_others_are_not() {
        assert!(fig09(0.2).cells.iter().all(|c| !c.config.cacheable()));
        assert!(fig11(0.2, &[1]).cells.iter().all(|c| c.config.cacheable()));
    }

    #[test]
    fn every_listed_adaptive_suite_builds() {
        for info in ADAPTIVE_SUITES {
            let campaign = build_adaptive(info.name, None).expect(info.name);
            assert_eq!(campaign.name, info.name);
            assert!(!campaign.groups.is_empty(), "{} is empty", info.name);
            assert!(
                campaign.groups.iter().all(|g| g.metric == info.metric),
                "{} groups carry the suite metric",
                info.name
            );
        }
        assert!(build_adaptive("fig10", None).is_none(), "not every suite is adaptive");
        assert!(build_adaptive("nope", None).is_none());
    }

    #[test]
    fn adaptive_suites_drop_the_seed_dimension() {
        // fig11 fixed sweeps programs x mechanisms x seeds; adaptively
        // the seed axis belongs to the controller, not the suite.
        let adaptive = build_adaptive("fig11", None).expect("builds");
        assert_eq!(adaptive.groups.len(), 24 * 4);
        assert!(adaptive.groups.iter().all(|g| !g.label.contains("/s")));
        // smoke's adaptive groups mirror its fixed cells one-to-one.
        let fixed = smoke(0.02);
        let adaptive = build_adaptive("smoke", None).expect("builds");
        let labels: Vec<&str> = adaptive.groups.iter().map(|g| g.label.as_str()).collect();
        let fixed_labels: Vec<&str> = fixed.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, fixed_labels);
    }

    #[test]
    fn ablation_default_points_dedupe_to_one_config() {
        let c = ablation(0.1);
        let budget128 = c
            .cells
            .iter()
            .find(|s| s.label == "kdtree/budget128")
            .unwrap()
            .config
            .content_hash();
        let entries16 = c
            .cells
            .iter()
            .find(|s| s.label == "kdtree/entries16")
            .unwrap()
            .config
            .content_hash();
        assert_eq!(budget128, entries16, "both are the plain iNPG default");
    }
}
