//! The work-stealing deques backing the campaign [`pool`](crate::pool).
//!
//! Shape: one global injector holding the not-yet-claimed task indices
//! plus one deque per worker. A worker pops from the *back* of its own
//! deque (LIFO, cache-warm); when that runs dry it claims a fresh chunk
//! from the injector; when the injector is dry too it steals from the
//! *front* of a sibling's deque (FIFO — the opposite end, so steals and
//! owner pops rarely contend on the same items).
//!
//! Chunked injector claims (`ceil(n / workers / 4)`, the classic
//! guided-self-scheduling compromise) keep injector contention low at
//! the start while leaving enough unclaimed tail for the steal phase to
//! balance tasks of wildly different cost.
//!
//! Extracted from `pool` so the owner-pop vs sibling-steal race can be
//! model-checked: under `--cfg loom` the mutexes below come from the
//! vendored loom shim and `tests/loom.rs` explores every interleaving
//! of a popping owner and a stealing sibling.

use std::collections::VecDeque;
use std::sync::PoisonError;

#[cfg(loom)]
use loom::sync::{Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Mutex, MutexGuard};

/// Injector plus per-worker deques for `n` task indices. All methods
/// take `&self`; workers address their own deque by index.
pub struct StealDeques {
    // sync: two independent mutex families, never nested — `claim_chunk`
    // releases the injector before touching the worker's own deque, so a
    // thread holds at most one of {injector, one deque} and no lock-order
    // cycle exists (model-checked in tests/loom.rs).
    injector: Mutex<VecDeque<usize>>,
    deques: Vec<Mutex<VecDeque<usize>>>, // sync: see above
    /// Injector claim size; at least 1.
    chunk: usize,
}

impl StealDeques {
    /// A deque set distributing task indices `0..n` over `workers`
    /// deques. `workers` must be at least 1 (the pool clamps).
    pub fn new(n: usize, workers: usize) -> StealDeques {
        StealDeques {
            // sync: see the lock-order note on the struct fields above.
            injector: Mutex::new((0..n).collect()), // sync: see struct note
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(), // sync: see struct note
            chunk: n.div_ceil(workers).div_ceil(4).max(1),
        }
    }

    /// The full claim order for worker `me`: own deque (LIFO), then the
    /// injector, then a sibling steal (FIFO). `None` means the whole
    /// system is drained and the worker can exit — tasks never spawn
    /// tasks, so emptiness is stable.
    pub fn next_for(&self, me: usize) -> Option<usize> {
        self.pop_own(me).or_else(|| self.claim_chunk(me)).or_else(|| self.steal(me))
    }

    /// LIFO pop from the worker's own deque.
    pub fn pop_own(&self, me: usize) -> Option<usize> {
        lock_clean(&self.deques[me]).pop_back()
    }

    /// Claims a chunk from the injector into the worker's own deque and
    /// returns the first claimed index.
    pub fn claim_chunk(&self, me: usize) -> Option<usize> {
        let mut injector = lock_clean(&self.injector);
        let first = injector.pop_front()?;
        let rest: Vec<usize> = (1..self.chunk).map_while(|_| injector.pop_front()).collect();
        drop(injector);
        lock_clean(&self.deques[me]).extend(rest);
        Some(first)
    }

    /// FIFO steal from the first non-empty sibling deque.
    pub fn steal(&self, me: usize) -> Option<usize> {
        let n = self.deques.len();
        (1..n)
            .map(|offset| (me + offset) % n)
            .find_map(|victim| lock_clean(&self.deques[victim]).pop_front())
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }
}

/// Locks a mutex; poisoning cannot happen because a panicking task
/// unwinds through `thread::scope`, aborting the whole pool before
/// anyone re-locks (and modeled loom mutexes never poison at all).
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
