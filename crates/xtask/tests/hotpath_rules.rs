//! Tests for the hot-path allocation lint, the directory linear-scan
//! lint, and stale-waiver detection.

use std::path::Path;
use xtask::lint::{lint_source_full, lint_source_with, Rule, CAMPAIGN_RULES};

const HOT: &[Rule] = &[Rule::HotAlloc];

#[test]
fn allocation_is_flagged_in_hot_attributed_functions_only() {
    let src = r#"
#[hot]
pub fn step(buf: &mut Vec<u8>) {
    buf.push(1);
}
pub fn cold(buf: &mut Vec<u8>) {
    buf.push(1);
    let _ = buf.clone();
}
"#;
    let (findings, errors) = lint_source_full(Path::new("f.rs"), src, HOT, &[]);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::HotAlloc);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn the_full_attribute_path_marks_a_function_hot() {
    let src = r#"
#[inpg_hot::hot]
fn tick(&mut self) -> String {
    format!("cycle {}", self.now)
}
"#;
    let (findings, errors) = lint_source_full(Path::new("f.rs"), src, HOT, &[]);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].detail.contains("format!"), "{}", findings[0].detail);
}

#[test]
fn manifest_entries_mark_functions_hot_without_the_attribute() {
    let src = r#"
fn tick(x: u64) -> String {
    x.to_string()
}
fn other(x: u64) -> String {
    x.to_string()
}
"#;
    let hot = vec!["tick".to_string()];
    let (findings, errors) = lint_source_full(Path::new("f.rs"), src, HOT, &hot);
    assert!(errors.is_empty(), "{errors:?}");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 3, "only the manifest-listed fn is hot");
}

#[test]
fn a_manifest_name_matching_no_function_is_a_parse_error() {
    let src = "fn present() {}\n";
    let hot = vec!["absent".to_string()];
    let (findings, errors) = lint_source_full(Path::new("f.rs"), src, HOT, &hot);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].detail.contains("absent"), "{}", errors[0].detail);
}

#[test]
fn hot_allocation_waivers_are_honored() {
    let src = r#"
#[hot]
fn drain(&mut self) {
    // lint: allow(hot) — one-time growth before the steady state
    self.scratch.push(0);
}
"#;
    let (findings, errors) = lint_source_full(Path::new("f.rs"), src, HOT, &[]);
    assert!(errors.is_empty(), "{errors:?}");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn linear_scans_are_flagged_in_directory_state_files_only() {
    let src = r#"
fn find(&self) -> Option<usize> {
    self.parked.iter().position(|p| p.core == 3)
}
"#;
    let in_home = lint_source_with(Path::new("crates/coherence/src/home.rs"), src, &[
        Rule::LinearScan,
    ]);
    assert_eq!(in_home.len(), 1, "{in_home:?}");
    assert_eq!(in_home[0].rule, Rule::LinearScan);
    let elsewhere =
        lint_source_with(Path::new("crates/coherence/src/l1.rs"), src, &[Rule::LinearScan]);
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn a_waiver_suppressing_nothing_is_stale() {
    let src = r#"
fn stamp() -> u64 {
    // lint: allow(hash) — left behind after a refactor
    42
}
"#;
    let findings = lint_source_with(Path::new("f.rs"), src, CAMPAIGN_RULES);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::StaleWaiver);
    assert!(findings[0].detail.contains("hash"), "{}", findings[0].detail);
}

#[test]
fn an_active_waiver_is_not_stale() {
    let src = r#"
use std::collections::HashMap; // lint: allow(hash) — boundary-only map
"#;
    let findings = lint_source_with(Path::new("f.rs"), src, CAMPAIGN_RULES);
    assert!(findings.is_empty(), "{findings:?}");
}
