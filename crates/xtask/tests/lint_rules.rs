//! Acceptance tests for the protocol-crate lint pass: the workspace
//! itself must be clean, and the fixture with a wildcard arm over
//! `CoherenceMsg` must fail.

use std::path::{Path, PathBuf};
use xtask::lint::{lint_source, lint_source_with, lint_workspace, Rule, CAMPAIGN_RULES};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

#[test]
fn the_workspace_protocol_crates_are_clean() {
    let findings = lint_workspace(&workspace_root()).unwrap();
    assert!(
        findings.is_empty(),
        "lint violations in the workspace:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn the_wildcard_fixture_fails_on_the_coherence_msg_match_only() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wildcard_over_coherence_msg.rs");
    let source = std::fs::read_to_string(&path).unwrap();
    let findings = lint_source(&path, &source);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Wildcard);
    assert!(findings[0].detail.contains("CoherenceMsg"), "{}", findings[0].detail);
    // The waived match over `State` must not be reported.
    assert_eq!(findings[0].line, 9, "must point at the `_ => \"other\"` arm");
}

#[test]
fn unwrap_and_expect_are_flagged_outside_tests_only() {
    let src = r#"
fn a(x: Option<u8>) -> u8 {
    x.unwrap()
}
fn b(x: Option<u8>) -> u8 {
    x.expect("present")
}
#[cfg(test)]
mod tests {
    fn c(x: Option<u8>) -> u8 {
        x.unwrap()
    }
}
"#;
    let findings = lint_source(Path::new("f.rs"), src);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Unwrap));
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[1].line, 6);
}

#[test]
fn waiver_markers_and_masked_text_are_honored() {
    let src = r#"
fn a(x: Option<u8>) -> u8 {
    // lint: allow(unwrap) — checked by the caller.
    x.unwrap()
}
fn b() -> &'static str {
    // A doc string mentioning .unwrap() or HashMap must not trip.
    "call .unwrap() on a HashMap"
}
"#;
    assert!(lint_source(Path::new("f.rs"), src).is_empty());
}

#[test]
fn hash_collections_are_flagged_in_simulation_state() {
    let src = r#"
use std::collections::HashMap;
struct Directory {
    sharers: HashMap<u64, u8>,
}
"#;
    let findings = lint_source(Path::new("f.rs"), src);
    assert_eq!(findings.len(), 2, "{findings:?}"); // the use and the field
    assert!(findings.iter().all(|f| f.rule == Rule::Hash));
}

#[test]
fn wall_clock_types_are_flagged_under_the_campaign_rules() {
    let src = r#"
use std::time::Instant;
fn measure() -> u64 {
    let start = Instant::now();
    let t = std::time::SystemTime::now();
    let _ = t;
    start.elapsed().as_nanos() as u64
}
"#;
    let findings = lint_source_with(Path::new("f.rs"), src, CAMPAIGN_RULES);
    assert_eq!(findings.len(), 3, "{findings:?}"); // use, Instant::now, SystemTime::now
    assert!(findings.iter().all(|f| f.rule == Rule::WallClock));
    // The default (protocol) rule set must not flag wall-clock types.
    assert!(lint_source(Path::new("f.rs"), src).is_empty());
}

#[test]
fn wall_clock_waivers_are_honored() {
    let src = r#"
// lint: allow(wallclock) — harness boundary: wall time never feeds results.
use std::time::Instant;
// lint: allow(wallclock) — harness boundary.
fn stamp() -> Instant {
    // lint: allow(wallclock) — harness boundary.
    Instant::now()
}
"#;
    assert!(lint_source_with(Path::new("f.rs"), src, CAMPAIGN_RULES).is_empty());
}

#[test]
fn identifiers_containing_instant_are_not_flagged() {
    let src = r#"
fn f(instantiate: u64) -> u64 {
    let InstantLike = instantiate; // not the std type
    InstantLike
}
"#;
    assert!(lint_source_with(Path::new("f.rs"), src, CAMPAIGN_RULES).is_empty());
}

#[test]
fn wildcards_over_non_protocol_enums_are_ignored() {
    let src = r#"
fn f(s: CoreState) -> u8 {
    match s {
        CoreState::Sleeping => 1,
        _ => 0,
    }
}
"#;
    assert!(lint_source(Path::new("f.rs"), src).is_empty());
}
