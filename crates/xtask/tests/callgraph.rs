//! Adversarial tests for the call-graph builder: the token-level
//! extractor and the qualifier-restricted resolver must survive the
//! shapes real Rust throws at them — generics and turbofish, trait
//! objects, method chains, closures inside iterator adapters, and
//! macro-wrapped calls — and must err toward *over*-approximation
//! (auditing cold code) rather than missing hot code.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use xtask::callgraph::{build_for, extract_calls, CallSite};
use xtask::parse::{SourceFile, SourceSet};

/// Extracts call sites from the first (non-test) fn body in `src`.
fn calls(src: &str) -> Vec<CallSite> {
    let sf = SourceFile::from_text(PathBuf::from("f.rs"), src.to_string());
    let body = sf.fn_bodies().first().expect("fixture must contain a fn").body;
    extract_calls(&sf.text, sf.masked(), body)
}

fn names(sites: &[CallSite]) -> Vec<&str> {
    sites.iter().map(|c| c.name.as_str()).collect()
}

#[test]
fn generic_calls_and_turbofish_are_extracted() {
    let sites = calls(
        r#"
fn driver(xs: &[u64]) -> Vec<u64> {
    let v = transform::<u64>(xs);
    let w: Vec<u64> = xs.iter().copied().collect::<Vec<u64>>();
    combine(v, w)
}
"#,
    );
    let n = names(&sites);
    assert!(n.contains(&"transform"), "turbofish call missed: {n:?}");
    assert!(n.contains(&"combine"), "plain call missed: {n:?}");
    assert!(n.contains(&"collect"), "generic method call missed: {n:?}");
    let transform = sites.iter().find(|c| c.name == "transform").unwrap();
    assert!(!transform.method, "turbofish call is not a method call");
}

#[test]
fn trait_object_dispatch_is_a_method_call() {
    let sites = calls(
        r#"
fn run(handler: &dyn Handler, x: u64) {
    handler.handle(x);
}
"#,
    );
    let handle = sites.iter().find(|c| c.name == "handle").expect("dispatch missed");
    assert!(handle.method, "dyn dispatch must extract as a method call");
    assert!(handle.qualifier.is_none());
    assert!(
        !names(&sites).contains(&"dyn"),
        "keywords must not become call sites: {sites:?}"
    );
}

#[test]
fn every_link_of_a_method_chain_is_extracted() {
    let sites = calls(
        r#"
fn chained(q: &Wheel) -> u64 {
    q.first().second(1).third().fourth()
}
"#,
    );
    let n = names(&sites);
    for link in ["first", "second", "third", "fourth"] {
        assert!(n.contains(&link), "chain link {link} missed: {n:?}");
    }
    assert!(sites.iter().all(|c| c.method), "all links are method calls");
}

#[test]
fn calls_inside_closures_in_iterator_adapters_are_extracted() {
    let sites = calls(
        r#"
fn sweep(items: &mut Vec<u64>, set: &mut BTreeMap<u64, u64>) -> Vec<u64> {
    set.retain(|k, _| keep_entry(*k));
    items.iter().map(|x| score(*x)).filter(|s| accept(*s)).collect()
}
"#,
    );
    let n = names(&sites);
    for inner in ["keep_entry", "score", "accept"] {
        assert!(n.contains(&inner), "closure-body call {inner} missed: {n:?}");
    }
}

#[test]
fn macro_wrapped_calls_are_still_seen_but_the_macro_itself_is_not() {
    // The extractor cannot expand macros; it scans macro *arguments*
    // textually, so a call smuggled through `assert!`-style macros is
    // still audited while the macro name itself never becomes a node.
    let sites = calls(
        r#"
fn guarded(x: u64) -> u64 {
    debug_assert!(validate(x));
    emit!(encode(x));
    x
}
"#,
    );
    let n = names(&sites);
    assert!(n.contains(&"validate"), "call inside macro args missed: {n:?}");
    assert!(n.contains(&"encode"), "call inside custom macro missed: {n:?}");
    assert!(!n.contains(&"debug_assert"), "macro is not a call: {n:?}");
    assert!(!n.contains(&"emit"), "macro is not a call: {n:?}");
}

#[test]
fn definitions_paths_and_literal_noise_are_not_calls() {
    let sites = calls(
        r#"
fn noisy(x: u64) -> u64 {
    // a comment mentioning fake_call(1) stays dead
    let s = "string_call(2)";
    let closure = |y: u64| y + 1;
    let path = coverage::TRANSITION_CAP;
    if x > 0 {
        closure(x)
    } else {
        real_call(x)
    }
}
"#,
    );
    let n = names(&sites);
    assert!(!n.contains(&"fake_call"), "comments must be masked: {n:?}");
    assert!(!n.contains(&"string_call"), "strings must be masked: {n:?}");
    assert!(!n.contains(&"coverage"), "path segment is not a call: {n:?}");
    assert!(n.contains(&"real_call"), "{n:?}");
    assert!(n.contains(&"closure"), "closure invocation is call-shaped: {n:?}");
}

#[test]
fn qualifiers_are_captured_for_path_calls() {
    let sites = calls(
        r#"
fn dispatch(&mut self) {
    Self::local_step();
    Wheel::advance(self);
    helpers::tidy();
}
"#,
    );
    let q = |name: &str| {
        sites
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} missed: {sites:?}"))
            .qualifier
            .clone()
    };
    assert_eq!(q("local_step").as_deref(), Some("Self"));
    assert_eq!(q("advance").as_deref(), Some("Wheel"));
    assert_eq!(q("tidy").as_deref(), Some("helpers"));
}

// ---------------------------------------------------------------------
// Whole-graph resolution over an on-disk fixture tree.
// ---------------------------------------------------------------------

static FIXTURE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Writes a throwaway `crates/<name>/src/lib.rs` tree and returns its
/// root. Callers remove it; leaks on panic are confined to temp_dir.
fn fixture_tree(files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "xtask-callgraph-{}-{}",
        std::process::id(),
        FIXTURE_SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    for (krate, text) in files {
        let src = root.join("crates").join(krate).join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), text).unwrap();
    }
    root
}

const ALPHA_BETA: &[&str] = &["alpha", "beta"];

const ALPHA: &str = r#"
pub struct Widget;

impl Widget {
    pub fn start(&self) {
        Self::step();
        helper();
    }
    pub fn step() {}
}

/// Free fn shadowing the method name: `Self::step` must NOT reach it.
pub fn step() {}

pub fn helper() {
    beta_entry();
}
"#;

const BETA: &str = r#"
pub struct Gadget;

impl Gadget {
    pub fn step(&self) {}
}

pub fn beta_entry(g: &Gadget) {
    g.step();
}

pub fn unrelated() {
    orphan();
}

pub fn orphan() {}
"#;

#[test]
fn qualified_calls_resolve_narrowly_and_method_calls_over_approximate() {
    let root = fixture_tree(&[("alpha", ALPHA), ("beta", BETA)]);
    let mut sources = SourceSet::new(&root);
    let graph = build_for(&root, &mut sources, ALPHA_BETA).expect("fixture parses");

    let start = graph.resolve_named("lib.rs", Some("Widget"), "start");
    assert_eq!(start.len(), 1, "seed triple must resolve uniquely");
    let widget_step = graph.resolve_named("alpha/src/lib.rs", Some("Widget"), "step")[0];
    let free_step: Vec<usize> = graph
        .named("step")
        .iter()
        .copied()
        .filter(|&i| graph.nodes[i].impl_type.is_none())
        .collect();
    assert_eq!(free_step.len(), 1, "one free fn named step");

    // `Self::step()` resolves to Widget::step only — not the free fn,
    // not Gadget::step.
    let callees = graph.callees(start[0]);
    assert!(callees.contains(&widget_step), "Self:: call missed");
    assert!(
        !callees.contains(&free_step[0]),
        "Self:: must not leak to the same-named free fn"
    );
    let gadget_step = graph.resolve_named("beta/src/lib.rs", Some("Gadget"), "step")[0];
    assert!(!callees.contains(&gadget_step), "Self:: must not cross impls");

    // `g.step()` is a bare method call: over-approximates to every
    // `step` — both impls and the free fn. Erring cold, never hot.
    let beta_entry = graph.resolve_named("beta/src/lib.rs", None, "beta_entry")[0];
    let entry_callees = graph.callees(beta_entry);
    assert!(entry_callees.contains(&gadget_step), "method call missed its impl");
    assert!(
        entry_callees.contains(&widget_step),
        "method calls must over-approximate across impls"
    );

    // Reachability from the seed crosses the crate boundary and carries
    // a reconstructable chain; unconnected nodes stay out.
    let reached = graph.reachable(&start);
    assert!(reached.contains_key(&gadget_step), "cross-crate path missed");
    let chain = graph.chain(&reached, gadget_step);
    assert!(
        chain.starts_with("Widget::start → helper → beta_entry"),
        "unexpected chain: {chain}"
    );
    let unrelated = graph.resolve_named("lib.rs", None, "unrelated")[0];
    let orphan = graph.resolve_named("lib.rs", None, "orphan")[0];
    assert!(!reached.contains_key(&unrelated), "unreachable fn leaked in");
    assert!(!reached.contains_key(&orphan), "unreachable fn leaked in");

    std::fs::remove_dir_all(&root).ok();
}

const GENERIC: &str = r#"
pub struct Engine<T> {
    inner: T,
}

impl<T: Clone> Engine<T> {
    pub fn run(&mut self) {
        self.phase::<u32>();
        Engine::finish(self);
    }
    fn phase<U>(&mut self) {}
    fn finish(&mut self) {}
}
"#;

const GENERIC_ONLY: &[&str] = &["gamma"];

#[test]
fn generic_impls_and_turbofish_method_calls_resolve() {
    let root = fixture_tree(&[("gamma", GENERIC)]);
    let mut sources = SourceSet::new(&root);
    let graph = build_for(&root, &mut sources, GENERIC_ONLY).expect("fixture parses");

    let run = graph.resolve_named("lib.rs", Some("Engine"), "run");
    assert_eq!(run.len(), 1, "impl<T> Engine<T> must index as Engine");
    let callees = graph.callees(run[0]);
    let phase = graph.resolve_named("lib.rs", Some("Engine"), "phase")[0];
    let finish = graph.resolve_named("lib.rs", Some("Engine"), "finish")[0];
    assert!(callees.contains(&phase), "turbofish self-method call missed");
    assert!(callees.contains(&finish), "Type::method(self) call missed");

    std::fs::remove_dir_all(&root).ok();
}

const MACRO_ARMS: &str = r#"
macro_rules! dispatch_arm {
    ($msg:expr, $this:expr) => {
        match $msg {
            Msg::A => $this.on_a(),
            Msg::B => $this.on_b(),
        }
    };
}

pub struct Proto;

impl Proto {
    pub fn handle(&mut self, msg: Msg) {
        dispatch_arm!(msg, self)
    }
    fn on_a(&mut self) {}
    fn on_b(&mut self) {}
}
"#;

const MACRO_ONLY: &[&str] = &["delta"];

#[test]
fn calls_inside_macro_generated_match_arms_are_graph_edges() {
    // The builder does not expand macros; it scans the macro body and
    // invocation textually, which is exactly what keeps macro-generated
    // dispatch arms inside the audit instead of silently invisible.
    let root = fixture_tree(&[("delta", MACRO_ARMS)]);
    let mut sources = SourceSet::new(&root);
    let graph = build_for(&root, &mut sources, MACRO_ONLY).expect("fixture parses");

    let handle = graph.resolve_named("lib.rs", Some("Proto"), "handle");
    assert_eq!(handle.len(), 1);
    let reached = graph.reachable(&handle);
    for target in ["on_a", "on_b"] {
        let node = graph.resolve_named("lib.rs", Some("Proto"), target)[0];
        assert!(
            reached.contains_key(&node),
            "macro-generated arm call {target} must stay reachable"
        );
    }

    std::fs::remove_dir_all(&root).ok();
}
