// Lint fixture (never compiled): a handler that hides protocol-enum
// variants behind a catch-all. `cargo xtask lint` must flag the bare
// `_` arm in the match over `CoherenceMsg`.

fn classify(msg: &CoherenceMsg) -> &'static str {
    match msg {
        CoherenceMsg::GetS { .. } => "read",
        CoherenceMsg::GetX { .. } => "write",
        _ => "other",
    }
}

fn letter(state: State) -> char {
    match state {
        State::Modified => 'M',
        // lint: allow(wildcard) — fixture: this one is waived and must
        // NOT be reported.
        _ => '?',
    }
}
