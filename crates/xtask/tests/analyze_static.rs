//! Static-side acceptance tests for `cargo xtask analyze`: the
//! declared transition matrix parses out of the real protocol sources,
//! is deterministic, covers every protocol enum, and agrees with the
//! checked-in coverage baseline. The dynamic phases (campaign + model
//! check) are exercised by running the analyzer itself, not here.

use std::path::{Path, PathBuf};
use xtask::coverage::{self, Baseline, Observed, Status};
use xtask::matrix;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap().to_path_buf()
}

#[test]
fn the_matrix_covers_every_protocol_enum() {
    let sites = matrix::build(&workspace_root()).unwrap();
    let names: Vec<&str> = sites.iter().map(|s| s.spec.site.name).collect();
    assert_eq!(
        names,
        ["msg_vnet", "l1_handle", "home_process", "lock_step", "lock_on_result"]
    );
    // One declared transition per enum variant at every site.
    let counts: Vec<usize> = sites.iter().map(|s| s.transitions.len()).collect();
    assert_eq!(counts[0], inpg_coherence::CoherenceMsg::VARIANT_NAMES.len());
    assert_eq!(counts[1], counts[0]);
    assert_eq!(counts[2], counts[0]);
    assert_eq!(counts[3], inpg_locks::STATE_NAMES.len());
    assert_eq!(counts[4], counts[3]);
}

#[test]
fn transition_ids_are_unique_and_within_their_site_range() {
    let sites = matrix::build(&workspace_root()).unwrap();
    let mut seen = [false; inpg_sim::coverage::TRANSITION_CAP];
    for site in &sites {
        for (index, t) in site.transitions.iter().enumerate() {
            assert_eq!(t.id, site.spec.site.base + index, "{}", t.trigger);
            assert!(t.id < site.spec.site.base + site.spec.site.cap);
            assert!(!seen[t.id], "duplicate transition id {}", t.id);
            seen[t.id] = true;
        }
    }
}

#[test]
fn the_matrix_artifact_is_deterministic() {
    let root = workspace_root();
    let a = matrix::to_json(&matrix::build(&root).unwrap()).to_string_compact();
    let b = matrix::to_json(&matrix::build(&root).unwrap()).to_string_compact();
    assert_eq!(a, b, "repeated parses must serialize identically");
    assert!(a.contains("\"schema\":\"inpg.transition_matrix.v1\""));
}

#[test]
fn the_checked_in_baseline_matches_the_declared_matrix() {
    let root = workspace_root();
    let sites = matrix::build(&root).unwrap();
    let baseline =
        coverage::load_baseline(&root.join("crates/xtask/coverage_baseline.json")).unwrap();
    // Every allowlist entry must name a transition that still exists,
    // and only `handle` transitions belong there (`reject` arms are
    // expected to be unreached and need no waiver).
    for (key, reason) in &baseline.allow_unreached {
        let (site_name, trigger) = key.split_once("::").expect("site::trigger key");
        let site = sites
            .iter()
            .find(|s| s.spec.site.name == site_name)
            .unwrap_or_else(|| panic!("allowlist key `{key}` names no site"));
        let t = site
            .transition(trigger)
            .unwrap_or_else(|| panic!("allowlist key `{key}` names no transition"));
        assert_eq!(t.action, "handle", "{key}: only handle arms need allow entries");
        assert!(!reason.trim().is_empty(), "{key}: allowlist reason must be documented");
    }
    // The blessed coverage classifies every declared transition.
    let declared: usize = sites.iter().map(|s| s.transitions.len()).sum();
    assert_eq!(baseline.coverage_compact.matches("\"status\":").count(), declared);
}

/// An `Observed` pair with exactly the given transition IDs set.
fn observed(sim: &[usize], checker: &[usize]) -> Observed {
    let mut o = Observed {
        sim: [0; inpg_sim::coverage::WORDS],
        checker: [0; inpg_sim::coverage::WORDS],
    };
    for &id in sim {
        o.sim[id / 64] |= 1 << (id % 64);
    }
    for &id in checker {
        o.checker[id / 64] |= 1 << (id % 64);
    }
    o
}

#[test]
fn classification_distinguishes_the_four_statuses() {
    let sites = matrix::build(&workspace_root()).unwrap();
    let a = sites[0].transitions[0].id;
    let b = sites[0].transitions[1].id;
    let c = sites[0].transitions[2].id;
    let report = coverage::classify(&sites, &observed(&[a, b], &[b, c]));
    assert_eq!(report.rows[0].3, Status::SimOnly);
    assert_eq!(report.rows[1].3, Status::Both);
    assert_eq!(report.rows[2].3, Status::CheckerOnly);
    assert_eq!(report.rows[3].3, Status::Unreached);
    assert!(report.undeclared.is_empty());
}

#[test]
fn an_observed_bit_outside_the_declared_matrix_is_undeclared_and_fatal() {
    let sites = matrix::build(&workspace_root()).unwrap();
    // msg_vnet declares 14 of its 16 reserved IDs, so base+15 is a bit
    // the runtime could only set through parser/runtime drift.
    let rogue = sites[0].spec.site.base + sites[0].spec.site.cap - 1;
    assert!(sites[0].transitions.len() < sites[0].spec.site.cap);
    let report = coverage::classify(&sites, &observed(&[rogue], &[]));
    assert_eq!(report.undeclared, vec![rogue]);

    let compact = coverage::report_json(&sites, &report).to_string_compact();
    let baseline = Baseline {
        allow_unreached: Vec::new(),
        coverage_compact: compact.clone(),
    };
    let findings = coverage::validate(&report, &compact, &baseline);
    assert!(
        findings.iter().any(|f| f.contains("undeclared-but-observed")),
        "{findings:?}"
    );
}

#[test]
fn a_stale_allowlist_entry_is_a_finding() {
    let sites = matrix::build(&workspace_root()).unwrap();
    let t = &sites[0].transitions[0];
    let report = coverage::classify(&sites, &observed(&[t.id], &[t.id]));
    let compact = coverage::report_json(&sites, &report).to_string_compact();
    let baseline = Baseline {
        allow_unreached: vec![(
            format!("msg_vnet::{}", t.trigger),
            "supposedly unreachable".into(),
        )],
        coverage_compact: compact.clone(),
    };
    let findings = coverage::validate(&report, &compact, &baseline);
    assert!(findings.iter().any(|f| f.contains("stale")), "{findings:?}");
}

#[test]
fn coverage_drift_from_the_blessed_baseline_is_a_finding() {
    let sites = matrix::build(&workspace_root()).unwrap();
    let report = coverage::classify(&sites, &observed(&[], &[]));
    let compact = coverage::report_json(&sites, &report).to_string_compact();
    let baseline = Baseline {
        allow_unreached: Vec::new(),
        coverage_compact: "{}".into(),
    };
    let findings = coverage::validate(&report, &compact, &baseline);
    assert!(
        findings.iter().any(|f| f.contains("differs from the blessed baseline")),
        "{findings:?}"
    );
}
