//! Workspace automation. Three commands (aliases in `.cargo/config.toml`):
//!
//! * `cargo xtask lint` — the protocol/campaign/kernel lint pass.
//! * `cargo xtask analyze [--bless]` — the transition-matrix analyzer:
//!   parses the declared (state, event) → action matrices, drives the
//!   timed simulator and the untimed model checker in-process to record
//!   which transitions execute, and diffs the classification against
//!   the checked-in baseline.
//! * `cargo xtask audit [--bless]` — the interprocedural hot-path
//!   auditor: builds the workspace call graph, flags every allocation,
//!   panic path, wall-clock read, hash collection, and directory scan
//!   transitively reachable from the per-cycle entry points, audits
//!   synchronization sites for `// sync:` justifications, and diffs
//!   the finding map against the blessed baseline.
//!
//! Exit codes (all commands): 0 clean, 2 findings (lint violations,
//! coverage regressions, unbaselined audit findings), 3 internal error
//! (unparseable code, broken manifests, I/O failures). CI treats 2 as
//! "fix your change" and 3 as "fix the tooling".

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::parse::SourceSet;
use xtask::{audit, coverage, lint, matrix};

fn workspace_root() -> PathBuf {
    // xtask sits at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&workspace_root()),
        Some("analyze") => {
            let bless = args.iter().any(|a| a == "--bless");
            run_analyze(&workspace_root(), bless)
        }
        Some("audit") => {
            let bless = args.iter().any(|a| a == "--bless");
            run_audit(&workspace_root(), bless)
        }
        _ => {
            eprintln!("usage: cargo xtask <lint | analyze [--bless] | audit [--bless]>");
            ExitCode::from(3)
        }
    }
}

fn run_lint(root: &Path) -> ExitCode {
    let (findings, errors) = match lint::lint_workspace_full(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(3);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    for e in &errors {
        eprintln!("{e}");
    }
    if !errors.is_empty() {
        eprintln!(
            "xtask lint: {} parse error(s) — the scanner could not follow this code",
            errors.len()
        );
        ExitCode::from(3)
    } else if !findings.is_empty() {
        println!("xtask lint: {} violation(s)", findings.len());
        ExitCode::from(2)
    } else {
        println!(
            "xtask lint: clean — protocol crates {:?}, campaign crates {:?}, kernel crates {:?}, stats crates {:?}",
            lint::PROTOCOL_CRATES,
            lint::CAMPAIGN_CRATES,
            lint::KERNEL_CRATES,
            lint::STATS_CRATES
        );
        ExitCode::SUCCESS
    }
}

fn run_analyze(root: &Path, bless: bool) -> ExitCode {
    // Pass 1 — the declared matrix, parsed from source and cross-checked
    // against the runtime name tables.
    let matrix = match matrix::build(root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("xtask analyze: cannot build the declared transition matrix");
            return ExitCode::from(3);
        }
    };
    let out_dir = root.join("results").join("analysis");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask analyze: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(3);
    }
    let matrix_json = matrix::to_json(&matrix).to_string_compact();
    let matrix_path = out_dir.join("transition_matrix.json");
    if let Err(e) = std::fs::write(&matrix_path, format!("{matrix_json}\n")) {
        eprintln!("xtask analyze: cannot write {}: {e}", matrix_path.display());
        return ExitCode::from(3);
    }
    let declared: usize = matrix.iter().map(|m| m.transitions.len()).sum();
    println!(
        "xtask analyze: declared matrix — {} sites, {} transitions → {}",
        matrix.len(),
        declared,
        matrix_path.display()
    );

    // Pass 2 — observe: timed campaign, then bounded model check.
    let observed = match coverage::observe() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            return ExitCode::from(3);
        }
    };
    let report = coverage::classify(&matrix, &observed);
    let coverage_json = coverage::report_json(&matrix, &report);
    let coverage_compact = coverage_json.to_string_compact();
    let coverage_path = out_dir.join("coverage.json");
    if let Err(e) = std::fs::write(&coverage_path, format!("{coverage_compact}\n")) {
        eprintln!("xtask analyze: cannot write {}: {e}", coverage_path.display());
        return ExitCode::from(3);
    }
    let mut counts = [0usize; 4];
    for (site, trigger, _, status) in &report.rows {
        let idx = match status {
            coverage::Status::Both => 0,
            coverage::Status::SimOnly => 1,
            coverage::Status::CheckerOnly => 2,
            coverage::Status::Unreached => 3,
        };
        counts[idx] += 1;
        if *status == coverage::Status::Unreached {
            println!("  unreached: {site}::{trigger}");
        }
    }
    println!(
        "xtask analyze: coverage — {} sim+checker, {} sim-only, {} checker-only, \
         {} unreached → {}",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        coverage_path.display()
    );

    // Pass 3 — diff against the blessed baseline.
    let baseline_path = root.join("crates").join("xtask").join("coverage_baseline.json");
    let baseline = match coverage::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) if bless => {
            println!("xtask analyze: {e} — blessing a fresh baseline with an empty allowlist");
            coverage::Baseline { allow_unreached: Vec::new(), coverage_compact: String::new() }
        }
        Err(e) => {
            eprintln!("xtask analyze: {e}");
            eprintln!("(run `cargo xtask analyze --bless` to create the baseline)");
            return ExitCode::from(3);
        }
    };
    let effective = if bless {
        let blessed =
            coverage::baseline_json(&baseline.allow_unreached, coverage_json.clone());
        if let Err(e) =
            std::fs::write(&baseline_path, format!("{}\n", blessed.to_string_compact()))
        {
            eprintln!("xtask analyze: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(3);
        }
        println!("xtask analyze: blessed baseline → {}", baseline_path.display());
        coverage::Baseline {
            allow_unreached: baseline.allow_unreached,
            coverage_compact: coverage_compact.clone(),
        }
    } else {
        baseline
    };
    let findings = coverage::validate(&report, &coverage_compact, &effective);
    if findings.is_empty() {
        println!("xtask analyze: coverage matches the blessed baseline");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("xtask analyze: {} finding(s)", findings.len());
        ExitCode::from(2)
    }
}

fn run_audit(root: &Path, bless: bool) -> ExitCode {
    // Pass 1 — build the call graph and run every audit pass.
    let mut sources = SourceSet::new(root);
    let result = match audit::run(root, &mut sources) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("xtask audit: cannot run the interprocedural audit");
            return ExitCode::from(3);
        }
    };
    let out_dir = root.join("results").join("analysis");
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask audit: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(3);
    }
    let report = audit::report_json(&result);
    let report_path = out_dir.join("audit.json");
    if let Err(e) = std::fs::write(&report_path, format!("{}\n", report.to_string_compact())) {
        eprintln!("xtask audit: cannot write {}: {e}", report_path.display());
        return ExitCode::from(3);
    }
    println!(
        "xtask audit: call graph — {} functions, {} reachable from {} seeds, \
         {} finding(s) → {}",
        result.nodes,
        result.reachable,
        audit::SEEDS.len(),
        result.findings.len(),
        report_path.display()
    );

    // Pass 2 — diff against the blessed baseline.
    let baseline_path = root.join("crates").join("xtask").join("audit_baseline.json");
    if bless {
        let blessed = audit::baseline_json(&result);
        if let Err(e) =
            std::fs::write(&baseline_path, format!("{}\n", blessed.to_string_compact()))
        {
            eprintln!("xtask audit: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(3);
        }
        println!("xtask audit: blessed baseline → {}", baseline_path.display());
    }
    let baseline = match audit::load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask audit: {e}");
            eprintln!("(run `cargo xtask audit --bless` to create the baseline)");
            return ExitCode::from(3);
        }
    };
    let diffs = audit::validate(&result, &baseline);
    if diffs.is_empty() {
        println!("xtask audit: findings match the blessed baseline");
        ExitCode::SUCCESS
    } else {
        for d in &diffs {
            println!("{d}");
        }
        println!("xtask audit: {} divergence(s) from the baseline", diffs.len());
        ExitCode::from(2)
    }
}
