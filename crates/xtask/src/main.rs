//! Workspace automation. `cargo xtask lint` runs the protocol-crate
//! lint pass (see [`lint`]); the alias lives in `.cargo/config.toml`.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::lint;

fn workspace_root() -> PathBuf {
    // xtask sits at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let findings = match lint::lint_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("xtask lint: cannot walk {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            if findings.is_empty() {
                println!(
                    "xtask lint: clean — {} protocol crates (unwrap, wildcard, hash), \
                     {} campaign crate (hash, wallclock)",
                    lint::PROTOCOL_CRATES.len(),
                    lint::CAMPAIGN_CRATES.len()
                );
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("xtask lint: {} violation(s)", findings.len());
                ExitCode::from(1)
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}
