//! The protocol-crate lint engine: a hand-rolled token scanner (the
//! build environment has no registry access, so `syn` is not an
//! option) enforcing the invariants the simulator's correctness
//! arguments lean on.
//!
//! Rules scoped to the protocol crates (`coherence`, `noc`,
//! `manycore`), skipping `#[cfg(test)]` regions and `tests/`/`benches/`
//! trees:
//!
//! 1. **unwrap** — no `.unwrap()` / `.expect(` in protocol code. A
//!    protocol-level surprise must surface as a typed
//!    `CoherenceError`/`SimError`, not a panic that takes the whole
//!    simulated machine down with a generic message.
//! 2. **wildcard** — no bare `_` arm in a `match` whose patterns name a
//!    protocol enum (`CoherenceMsg`, `State`, `DirState`, `EiPhase`).
//!    Adding a message or state variant must break the build at every
//!    handler, not silently fall through an old catch-all.
//! 3. **hash** — no `HashMap`/`HashSet` in simulation state. Iteration
//!    order feeds the event order, and hash iteration order is
//!    unspecified; deterministic replay needs `BTreeMap`/`BTreeSet`.
//!
//! Rules covering the campaign crate (`campaign`), whose determinism
//! argument — byte-identical merged artifacts across worker counts and
//! cache states — leans on cell execution and result merging never
//! seeing the host:
//!
//! 4. **wallclock** — no `Instant`/`SystemTime` in the campaign crate
//!    outside its dedicated harness-boundary module (`clock.rs`, which
//!    carries in-place waivers). Wall time may only be attached at the
//!    harness boundary; it must never feed a cell record or the merge.
//!    The `hash` rule applies to the campaign crate too, for the same
//!    iteration-order reason — and so does the `unwrap` rule: the
//!    campaign service (`serve`/`submit`) is a resident process whose
//!    failures must surface as typed wire replies or journaled drains,
//!    never as a panic (poisoned locks are recovered with
//!    `unwrap_or_else(PoisonError::into_inner)`, fallible I/O returns
//!    `io::Result`).
//!
//! Rules feeding the hot-loop roadmap (see `hotpath` for the scans):
//!
//! 5. **hot** — no heap allocation (`Box::new`, `vec![`, growth via
//!    `.push(`/`.insert(`/`.extend(`/`.collect(`), no `.clone()` of
//!    simulation state, and no string formatting inside functions
//!    marked `#[hot]` (the `inpg-hot` attribute) or listed in a
//!    per-crate `HOTPATH.txt` manifest.
//! 6. **scan** — no linear iterator scans (`.iter().position(`,
//!    `.iter().any(`, `.iter().find(`) over directory-state collections
//!    (sharer lookups must go through keyed `BTreeMap`/`BTreeSet`
//!    structures; bounded linear probes need an explicit waiver naming
//!    the bound).
//! 7. **stale** — every `lint: allow(<kind>)` waiver must suppress at
//!    least one finding of a rule that ran on its file; an obsolete
//!    waiver is itself a finding, so dead justifications cannot
//!    accumulate.
//!
//! A violation can be waived in place with a justification marker on
//! the same line or an immediately preceding comment line:
//!
//! ```text
//! // lint: allow(unwrap) — <why this cannot fail>
//! ```
//!
//! (kinds: `unwrap`, `wildcard`, `hash`, `wallclock`, `hot`, `scan`).

use crate::hotpath;
use crate::parse::{ParseError, SourceFile, SourceSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the protocol rules apply to (directory names under `crates/`).
pub const PROTOCOL_CRATES: &[&str] = &["coherence", "noc", "manycore"];

/// Crates the campaign rules apply to.
pub const CAMPAIGN_CRATES: &[&str] = &["campaign"];

/// Kernel crates: deterministic foundations linted for hash collections
/// and hot-path discipline (their panics are contract assertions, so the
/// unwrap rule does not apply).
pub const KERNEL_CRATES: &[&str] = &["sim", "locks"];

/// The statistics crate: the estimator feeds the adaptive stopping rule,
/// so it gets the campaign-grade discipline — no panicking shortcuts, no
/// iteration-order-dependent collections, no wall-clock reads outside
/// the harness boundary.
pub const STATS_CRATES: &[&str] = &["stats"];

/// Enums whose matches must not hide behind a catch-all.
pub const PROTOCOL_ENUMS: &[&str] =
    &["CoherenceMsg", "State", "DirState", "EiPhase", "RouterHealth"];

/// Which rule a finding belongs to (and which `allow(...)` kind waives it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Unwrap,
    Wildcard,
    Hash,
    WallClock,
    HotAlloc,
    LinearScan,
    StaleWaiver,
}

/// The rule set enforced on [`PROTOCOL_CRATES`].
pub const PROTOCOL_RULES: &[Rule] = &[
    Rule::Unwrap,
    Rule::Wildcard,
    Rule::Hash,
    Rule::HotAlloc,
    Rule::LinearScan,
    Rule::StaleWaiver,
];

/// The rule set enforced on [`CAMPAIGN_CRATES`]. The unwrap rule
/// joined with the campaign service: a daemon must degrade through
/// typed replies and journaled drains, never panic a resident process
/// serving other clients.
pub const CAMPAIGN_RULES: &[Rule] =
    &[Rule::Unwrap, Rule::Hash, Rule::WallClock, Rule::HotAlloc, Rule::StaleWaiver];

/// The rule set enforced on [`KERNEL_CRATES`].
pub const KERNEL_RULES: &[Rule] = &[Rule::Hash, Rule::HotAlloc, Rule::StaleWaiver];

/// The rule set enforced on [`STATS_CRATES`]: a panic inside the
/// estimator would take down an adaptive campaign mid-flight, a
/// wall-clock read would make the stopping rule nondeterministic.
pub const STATS_RULES: &[Rule] =
    &[Rule::Unwrap, Rule::Hash, Rule::WallClock, Rule::StaleWaiver];

impl Rule {
    pub(crate) fn kind(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Wildcard => "wildcard",
            Rule::Hash => "hash",
            Rule::WallClock => "wallclock",
            Rule::HotAlloc => "hot",
            Rule::LinearScan => "scan",
            Rule::StaleWaiver => "stale",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.kind(),
            self.detail
        )
    }
}

/// Replaces the contents of comments and string/char literals with
/// spaces (newlines kept), so the token scans below cannot be fooled by
/// `".unwrap()"` inside a doc string. Returns a byte vector of the same
/// length as the input.
pub(crate) fn mask(source: &str) -> Vec<u8> {
    let b = source.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for x in &mut out[from..to] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = source[i..].find('\n').map_or(b.len(), |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                i = j;
            }
            b'r' | b'b' if (i == 0 || !is_ident(b[i - 1])) && raw_string_len(&b[i..]) > 0 => {
                // Raw (and raw-byte) strings: r"...", r#"..."#, br#"..."#.
                let len = raw_string_len(&b[i..]);
                blank(&mut out, i + 1, i + len);
                i += len;
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is 'ident not
                // followed by a closing quote.
                let rest = &b[i + 1..];
                let is_lifetime = rest
                    .first()
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                    && rest.get(1) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => break, // stray quote, give up
                            _ => j += 1,
                        }
                    }
                    blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
    out
}

pub(crate) fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Length in bytes of the raw string literal starting at `b[0]`
/// (`r"…"`, `r#"…"#`, `br##"…"##`), or 0 when `b` does not start one.
fn raw_string_len(b: &[u8]) -> usize {
    let mut k = 0;
    if b.get(k) == Some(&b'b') {
        k += 1;
    }
    if b.get(k) != Some(&b'r') {
        return 0;
    }
    k += 1;
    let hashes = b[k..].iter().take_while(|c| **c == b'#').count();
    k += hashes;
    if b.get(k) != Some(&b'"') {
        return 0;
    }
    k += 1;
    while k < b.len() {
        if b[k] == b'"' && b[k + 1..].iter().take_while(|c| **c == b'#').count() >= hashes {
            return k + 1 + hashes;
        }
        k += 1;
    }
    b.len()
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute through
/// the end of the braced item it decorates).
pub(crate) fn test_ranges(masked: &[u8]) -> Vec<(usize, usize)> {
    let text = std::str::from_utf8(masked).unwrap_or_default();
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("#[cfg(test)]") {
        let at = from + p;
        // The attribute decorates the next braced item (a mod, fn or
        // impl); an un-braced target (e.g. `use`) ends at `;`.
        let mut j = at;
        let mut end = masked.len();
        while j < masked.len() {
            match masked[j] {
                b'{' => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < masked.len() && depth > 0 {
                        match masked[k] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k;
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        ranges.push((at, end));
        from = end.max(at + 1);
    }
    ranges
}

pub(crate) fn in_ranges(pos: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|(a, b)| (*a..*b).contains(&pos))
}

pub(crate) fn line_of(source: &str, pos: usize) -> usize {
    source.as_bytes()[..pos].iter().filter(|c| **c == b'\n').count() + 1
}

/// One `lint: allow(<kind>)` marker found in a file.
struct WaiverSite {
    /// 1-based line the marker sits on.
    line: usize,
    kind: String,
    used: bool,
}

/// All waiver markers of one file, with usage tracking: a marker that
/// suppresses no finding by the end of the file's passes is stale.
pub(crate) struct Waivers {
    sites: Vec<WaiverSite>,
}

impl Waivers {
    /// Collects every `lint: allow(<kind>)` marker in `source`.
    pub(crate) fn collect(source: &str) -> Self {
        let mut sites = Vec::new();
        for (idx, text) in source.lines().enumerate() {
            if let Some(p) = text.find("lint: allow(") {
                let rest = &text[p + "lint: allow(".len()..];
                if let Some(close) = rest.find(')') {
                    sites.push(WaiverSite {
                        line: idx + 1,
                        kind: rest[..close].to_string(),
                        used: false,
                    });
                }
            }
        }
        Waivers { sites }
    }

    fn mark(&mut self, line: usize, kind: &str) -> bool {
        for site in &mut self.sites {
            if site.line == line && site.kind == kind {
                site.used = true;
                return true;
            }
        }
        false
    }

    /// Is a marker of `kind` present on `line` or the block of
    /// comment-only lines immediately above it? Marks the matching
    /// marker as used.
    pub(crate) fn check(&mut self, lines: &[&str], line: usize, kind: &str) -> bool {
        if self.mark(line, kind) {
            return true;
        }
        let mut n = line - 1; // 0-based index of the line above
        while n > 0 {
            let above = lines[n - 1].trim_start();
            if !above.starts_with("//") {
                return false;
            }
            if self.mark(n, kind) {
                return true;
            }
            n -= 1;
        }
        false
    }

    /// Findings for markers that suppressed nothing, restricted to
    /// `kinds` (the kinds whose rules actually ran on this file) and to
    /// markers outside `#[cfg(test)]` ranges.
    fn stale(
        &self,
        path: &Path,
        source: &str,
        skip: &[(usize, usize)],
        kinds: &[&str],
    ) -> Vec<Finding> {
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(source.bytes().enumerate().filter(|(_, c)| *c == b'\n').map(|(i, _)| i + 1))
            .collect();
        self.sites
            .iter()
            .filter(|s| !s.used && kinds.contains(&s.kind.as_str()))
            .filter(|s| {
                let pos = line_starts.get(s.line - 1).copied().unwrap_or(0);
                !in_ranges(pos, skip)
            })
            .map(|s| Finding {
                file: path.to_path_buf(),
                line: s.line,
                rule: Rule::StaleWaiver,
                detail: format!(
                    "stale waiver: `lint: allow({})` suppresses no finding — remove it",
                    s.kind
                ),
            })
            .collect()
    }
}

/// Scans masked text for a needle, reporting byte offsets of matches
/// outside the given ranges.
pub(crate) fn occurrences<'a>(
    masked: &'a [u8],
    needle: &'a str,
    skip: &'a [(usize, usize)],
) -> impl Iterator<Item = usize> + 'a {
    let text = std::str::from_utf8(masked).unwrap_or_default();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(p) = text[from..].find(needle) {
            let at = from + p;
            from = at + 1;
            if !in_ranges(at, skip) {
                return Some(at);
            }
        }
        None
    })
}

/// One parsed `match` arm: the pattern text and the 1-based line its
/// pattern starts on.
struct Arm {
    pattern: String,
    line: usize,
}

/// Why a `match` keyword occurrence yielded no arms.
enum MatchSkip {
    /// Not a match expression at all (e.g. half of a longer token run in
    /// macro input) — skip silently.
    NotAMatch,
    /// Structurally unterminated — real code the scanner cannot follow;
    /// surfaced as a parse error so it cannot silently escape linting.
    Unterminated,
}

/// Parses the arms of the `match` whose keyword starts at `kw` in the
/// masked text.
fn parse_match_arms(source: &str, masked: &[u8], kw: usize) -> Result<Vec<Arm>, MatchSkip> {
    // Find the `{` opening the match block: first brace at
    // paren/bracket depth zero after the scrutinee expression.
    let mut i = kw + "match".len();
    let mut depth = 0i32;
    let open = loop {
        if i >= masked.len() {
            return Err(MatchSkip::Unterminated);
        }
        match masked[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => break i,
            b';' if depth == 0 => return Err(MatchSkip::NotAMatch),
            _ => {}
        }
        i += 1;
    };
    let mut arms = Vec::new();
    let mut i = open + 1;
    loop {
        // Skip whitespace to the start of the next pattern.
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= masked.len() {
            return Err(MatchSkip::Unterminated);
        }
        if masked[i] == b'}' {
            return Ok(arms); // end of the match block
        }
        let pat_start = i;
        // Pattern runs to the `=>` at nesting depth zero (struct
        // patterns like `Inv { .. }` nest and un-nest before it).
        let mut depth = 0i32;
        let arrow = loop {
            if i >= masked.len() {
                return Err(MatchSkip::Unterminated);
            }
            match masked[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && masked.get(i + 1) == Some(&b'>') => break i,
                _ => {}
            }
            i += 1;
        };
        arms.push(Arm {
            pattern: source[pat_start..arrow].trim().to_string(),
            line: line_of(source, pat_start),
        });
        // Skip the arm body: a block (to its matching brace) or an
        // expression (to the `,` or closing `}` at depth zero).
        i = arrow + 2;
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < masked.len() && masked[i] == b'{' {
            let mut depth = 1i32;
            i += 1;
            while i < masked.len() && depth > 0 {
                match masked[i] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            if masked.get(i) == Some(&b',') {
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            loop {
                if i >= masked.len() {
                    return Err(MatchSkip::Unterminated);
                }
                match masked[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'}' if depth == 0 => break, // end of match block
                    b'}' => depth -= 1,
                    b',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
}

/// Does `pattern` name one of the protocol enums as a path segment
/// (`State::…` but not `CoreState::…`)?
fn mentions_protocol_enum(pattern: &str) -> Option<&'static str> {
    let b = pattern.as_bytes();
    for name in PROTOCOL_ENUMS {
        let mut from = 0;
        while let Some(p) = pattern[from..].find(name) {
            let at = from + p;
            from = at + 1;
            let bounded_left = at == 0 || !is_ident(b[at - 1]);
            let qualified = pattern[at + name.len()..].starts_with("::");
            if bounded_left && qualified {
                return Some(name);
            }
        }
    }
    None
}

fn is_bare_wildcard(pattern: &str) -> bool {
    let p = pattern.trim_start_matches('|').trim();
    p == "_" || p.starts_with("_ if ") || p.starts_with("_ if(")
}

/// Lints one source file with the protocol rule set. `path` is used
/// only for reporting.
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    lint_source_with(path, source, PROTOCOL_RULES)
}

/// Lints one source file against an explicit rule set, dropping parse
/// errors (use [`lint_source_full`] to see them).
pub fn lint_source_with(path: &Path, source: &str, rules: &[Rule]) -> Vec<Finding> {
    lint_source_full(path, source, rules, &[]).0
}

/// Lints one source file against an explicit rule set. `hot_manifest`
/// lists function names declared hot for this file by its crate's
/// `HOTPATH.txt`. Returns the findings and any parse errors (code the
/// scanner could not follow — reported, never silently skipped).
pub fn lint_source_full(
    path: &Path,
    source: &str,
    rules: &[Rule],
    hot_manifest: &[String],
) -> (Vec<Finding>, Vec<ParseError>) {
    let sf = SourceFile::from_text(path.to_path_buf(), source.to_string());
    lint_file(&sf, rules, hot_manifest)
}

/// Lints one already-parsed source file against an explicit rule set.
/// This is the workspace walk's entry point: the [`SourceFile`] comes
/// from the shared [`SourceSet`], so its mask, test ranges, and token
/// artifacts are computed once no matter how many passes read it.
pub fn lint_file(
    sf: &SourceFile,
    rules: &[Rule],
    hot_manifest: &[String],
) -> (Vec<Finding>, Vec<ParseError>) {
    let path = &sf.path;
    let source = sf.text.as_str();
    let masked = sf.masked();
    let skip = sf.skip();
    let lines: Vec<&str> = source.lines().collect();
    let mut waivers = Waivers::collect(source);
    let mut findings = Vec::new();
    let mut errors = Vec::new();

    // Rule 1: unwrap/expect.
    if rules.contains(&Rule::Unwrap) {
        for (needle, what) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
            for at in occurrences(masked, needle, skip) {
                let line = line_of(source, at);
                if waivers.check(&lines, line, "unwrap") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::Unwrap,
                    detail: format!(
                        "{what} in protocol code — return a typed error, or waive with \
                         `// lint: allow(unwrap) — <why this cannot fail>`"
                    ),
                });
            }
        }
    }

    // Rule 2: wildcard arms over protocol enums.
    for at in occurrences(masked, "match", skip) {
        if !rules.contains(&Rule::Wildcard) {
            break;
        }
        let b = source.as_bytes();
        let bounded = (at == 0 || !is_ident(b[at - 1]))
            && b.get(at + 5).is_none_or(|c| !is_ident(*c) && *c != b'!');
        if !bounded {
            continue; // `rematch`, `match_flit`, `matches!`…
        }
        let arms = match parse_match_arms(source, masked, at) {
            Ok(arms) => arms,
            Err(MatchSkip::NotAMatch) => continue,
            Err(MatchSkip::Unterminated) => {
                errors.push(ParseError {
                    file: path.to_path_buf(),
                    line: line_of(source, at),
                    detail: "cannot parse `match` expression (unterminated arms)".into(),
                });
                continue;
            }
        };
        let Some(enum_name) = arms.iter().find_map(|a| mentions_protocol_enum(&a.pattern))
        else {
            continue;
        };
        for arm in arms.iter().filter(|a| is_bare_wildcard(&a.pattern)) {
            if waivers.check(&lines, arm.line, "wildcard")
                || waivers.check(&lines, line_of(source, at), "wildcard")
            {
                continue;
            }
            findings.push(Finding {
                file: path.to_path_buf(),
                line: arm.line,
                rule: Rule::Wildcard,
                detail: format!(
                    "wildcard `_` arm in a match over `{enum_name}` — list the variants \
                     so new ones break the build, or waive with \
                     `// lint: allow(wildcard) — <why the fallback is safe>`"
                ),
            });
        }
    }

    // Rule 3: hash collections in simulation state.
    if rules.contains(&Rule::Hash) {
        for name in ["HashMap", "HashSet"] {
            for at in occurrences(masked, name, skip) {
                let b = source.as_bytes();
                let bounded = (at == 0 || !is_ident(b[at - 1]))
                    && b.get(at + name.len()).is_none_or(|c| !is_ident(*c));
                if !bounded {
                    continue;
                }
                let line = line_of(source, at);
                if waivers.check(&lines, line, "hash") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::Hash,
                    detail: format!(
                        "{name} in deterministic code — iteration order feeds event \
                         (or merge) order; use BTreeMap/BTreeSet for deterministic \
                         replay, or waive with \
                         `// lint: allow(hash) — <why the order cannot leak>`"
                    ),
                });
            }
        }
    }

    // Rule 4: wall-clock reads in deterministic campaign code.
    if rules.contains(&Rule::WallClock) {
        for name in ["Instant", "SystemTime"] {
            for at in occurrences(masked, name, skip) {
                let b = source.as_bytes();
                let bounded = (at == 0 || !is_ident(b[at - 1]))
                    && b.get(at + name.len()).is_none_or(|c| !is_ident(*c));
                if !bounded {
                    continue;
                }
                let line = line_of(source, at);
                if waivers.check(&lines, line, "wallclock") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::WallClock,
                    detail: format!(
                        "{name} in campaign code — wall time may only be read at the \
                         harness boundary; cell execution and result merging must be \
                         pure functions of cell configs. Waive with \
                         `// lint: allow(wallclock) — <why this is the harness boundary>`"
                    ),
                });
            }
        }
    }

    // Rule 5: allocation/clone in hot-path functions.
    if rules.contains(&Rule::HotAlloc) {
        let (hot_findings, hot_errors) =
            hotpath::lint_hot(sf, &lines, &mut waivers, hot_manifest);
        findings.extend(hot_findings);
        errors.extend(hot_errors);
    }

    // Rule 6: linear scans over directory state.
    if rules.contains(&Rule::LinearScan) {
        findings.extend(hotpath::lint_scans(sf, &lines, &mut waivers));
    }

    // Rule 7: waivers that suppressed nothing.
    if rules.contains(&Rule::StaleWaiver) {
        let kinds: Vec<&str> = rules
            .iter()
            .filter(|r| !matches!(r, Rule::StaleWaiver))
            .map(|r| r.kind())
            .collect();
        findings.extend(waivers.stale(path, source, skip, &kinds));
    }

    findings.sort_by_key(|f| f.line);
    (findings, errors)
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every linted crate's `src/` tree under `root` (the workspace
/// root): the protocol crates against [`PROTOCOL_RULES`], the campaign
/// crate against [`CAMPAIGN_RULES`], the kernel crates against
/// [`KERNEL_RULES`], the stats crate against [`STATS_RULES`]. `tests/`
/// and `benches/` trees are exempt by construction. Parse errors are
/// dropped; see [`lint_workspace_full`].
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    lint_workspace_full(root).map(|(f, _)| f)
}

/// Like [`lint_workspace`], also returning parse errors (code the
/// scanner could not follow, or broken `HOTPATH.txt` manifests).
pub fn lint_workspace_full(
    root: &Path,
) -> std::io::Result<(Vec<Finding>, Vec<ParseError>)> {
    let mut sources = SourceSet::new(root);
    lint_workspace_with(root, &mut sources)
}

/// Like [`lint_workspace_full`], loading files through a caller-owned
/// [`SourceSet`] so other passes of the same invocation (the matrix
/// builder, the call-graph auditor) reuse the same parsed files.
pub fn lint_workspace_with(
    root: &Path,
    sources: &mut SourceSet,
) -> std::io::Result<(Vec<Finding>, Vec<ParseError>)> {
    let mut findings = Vec::new();
    let mut errors = Vec::new();
    let sets: [(&[&str], &[Rule]); 4] = [
        (PROTOCOL_CRATES, PROTOCOL_RULES),
        (CAMPAIGN_CRATES, CAMPAIGN_RULES),
        (KERNEL_CRATES, KERNEL_RULES),
        (STATS_CRATES, STATS_RULES),
    ];
    for (crates, rules) in sets {
        for krate in crates {
            let crate_dir = root.join("crates").join(krate);
            let manifest = hotpath::manifest(&crate_dir)?;
            let src = crate_dir.join("src");
            let mut files = Vec::new();
            rust_sources(&src, &mut files)?;
            files.sort();
            for file in files {
                let rel_in_crate =
                    file.strip_prefix(&crate_dir).unwrap_or(&file).to_path_buf();
                let hot_fns = manifest.fns_for(&rel_in_crate);
                let sf = sources.load(&file)?;
                let (f, e) = lint_file(sf, rules, &hot_fns);
                findings.extend(f);
                errors.extend(e);
            }
            errors.extend(manifest.unmatched_errors(&crate_dir, root));
        }
    }
    Ok((findings, errors))
}
