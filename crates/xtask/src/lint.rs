//! The protocol-crate lint engine: a hand-rolled token scanner (the
//! build environment has no registry access, so `syn` is not an
//! option) enforcing the invariants the simulator's correctness
//! arguments lean on.
//!
//! Three rules, scoped to the protocol crates (`coherence`, `noc`,
//! `manycore`), skipping `#[cfg(test)]` regions and `tests/`/`benches/`
//! trees:
//!
//! 1. **unwrap** — no `.unwrap()` / `.expect(` in protocol code. A
//!    protocol-level surprise must surface as a typed
//!    `CoherenceError`/`SimError`, not a panic that takes the whole
//!    simulated machine down with a generic message.
//! 2. **wildcard** — no bare `_` arm in a `match` whose patterns name a
//!    protocol enum (`CoherenceMsg`, `State`, `DirState`, `EiPhase`).
//!    Adding a message or state variant must break the build at every
//!    handler, not silently fall through an old catch-all.
//! 3. **hash** — no `HashMap`/`HashSet` in simulation state. Iteration
//!    order feeds the event order, and hash iteration order is
//!    unspecified; deterministic replay needs `BTreeMap`/`BTreeSet`.
//!
//! A fourth rule covers the campaign crate (`campaign`), whose
//! determinism argument — byte-identical merged artifacts across worker
//! counts and cache states — leans on cell execution and result merging
//! never seeing the host:
//!
//! 4. **wallclock** — no `Instant`/`SystemTime` in the campaign crate
//!    outside its dedicated harness-boundary module (`clock.rs`, which
//!    carries in-place waivers). Wall time may only be attached at the
//!    harness boundary; it must never feed a cell record or the merge.
//!    The `hash` rule applies to the campaign crate too, for the same
//!    iteration-order reason.
//!
//! A violation can be waived in place with a justification marker on
//! the same line or an immediately preceding comment line:
//!
//! ```text
//! // lint: allow(unwrap) — <why this cannot fail>
//! ```
//!
//! (kinds: `unwrap`, `wildcard`, `hash`, `wallclock`).

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the protocol rules apply to (directory names under `crates/`).
pub const PROTOCOL_CRATES: &[&str] = &["coherence", "noc", "manycore"];

/// Crates the campaign rules apply to.
pub const CAMPAIGN_CRATES: &[&str] = &["campaign"];

/// Enums whose matches must not hide behind a catch-all.
pub const PROTOCOL_ENUMS: &[&str] = &["CoherenceMsg", "State", "DirState", "EiPhase"];

/// Which rule a finding belongs to (and which `allow(...)` kind waives it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Unwrap,
    Wildcard,
    Hash,
    WallClock,
}

/// The rule set enforced on [`PROTOCOL_CRATES`].
pub const PROTOCOL_RULES: &[Rule] = &[Rule::Unwrap, Rule::Wildcard, Rule::Hash];

/// The rule set enforced on [`CAMPAIGN_CRATES`].
pub const CAMPAIGN_RULES: &[Rule] = &[Rule::Hash, Rule::WallClock];

impl Rule {
    fn kind(self) -> &'static str {
        match self {
            Rule::Unwrap => "unwrap",
            Rule::Wildcard => "wildcard",
            Rule::Hash => "hash",
            Rule::WallClock => "wallclock",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: Rule,
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.kind(),
            self.detail
        )
    }
}

/// Replaces the contents of comments and string/char literals with
/// spaces (newlines kept), so the token scans below cannot be fooled by
/// `".unwrap()"` inside a doc string. Returns a byte vector of the same
/// length as the input.
fn mask(source: &str) -> Vec<u8> {
    let b = source.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for x in &mut out[from..to] {
            if *x != b'\n' {
                *x = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = source[i..].find('\n').map_or(b.len(), |p| i + p);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                i = j;
            }
            b'r' | b'b' if (i == 0 || !is_ident(b[i - 1])) && raw_string_len(&b[i..]) > 0 => {
                // Raw (and raw-byte) strings: r"...", r#"..."#, br#"..."#.
                let len = raw_string_len(&b[i..]);
                blank(&mut out, i + 1, i + len);
                i += len;
            }
            b'\'' => {
                // Char literal vs lifetime: a lifetime is 'ident not
                // followed by a closing quote.
                let rest = &b[i + 1..];
                let is_lifetime = rest
                    .first()
                    .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                    && rest.get(1) != Some(&b'\'');
                if is_lifetime {
                    i += 1;
                } else {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => break, // stray quote, give up
                            _ => j += 1,
                        }
                    }
                    blank(&mut out, i + 1, j.saturating_sub(1).max(i + 1));
                    i = j;
                }
            }
            _ => i += 1,
        }
    }
    out
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Length in bytes of the raw string literal starting at `b[0]`
/// (`r"…"`, `r#"…"#`, `br##"…"##`), or 0 when `b` does not start one.
fn raw_string_len(b: &[u8]) -> usize {
    let mut k = 0;
    if b.get(k) == Some(&b'b') {
        k += 1;
    }
    if b.get(k) != Some(&b'r') {
        return 0;
    }
    k += 1;
    let hashes = b[k..].iter().take_while(|c| **c == b'#').count();
    k += hashes;
    if b.get(k) != Some(&b'"') {
        return 0;
    }
    k += 1;
    while k < b.len() {
        if b[k] == b'"' && b[k + 1..].iter().take_while(|c| **c == b'#').count() >= hashes {
            return k + 1 + hashes;
        }
        k += 1;
    }
    b.len()
}

/// Byte ranges covered by `#[cfg(test)]` items (the attribute through
/// the end of the braced item it decorates).
fn test_ranges(masked: &[u8]) -> Vec<(usize, usize)> {
    let text = std::str::from_utf8(masked).unwrap_or_default();
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("#[cfg(test)]") {
        let at = from + p;
        // The attribute decorates the next braced item (a mod, fn or
        // impl); an un-braced target (e.g. `use`) ends at `;`.
        let mut j = at;
        let mut end = masked.len();
        while j < masked.len() {
            match masked[j] {
                b'{' => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < masked.len() && depth > 0 {
                        match masked[k] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k;
                    break;
                }
                b';' => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        ranges.push((at, end));
        from = end.max(at + 1);
    }
    ranges
}

fn in_ranges(pos: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|(a, b)| (*a..*b).contains(&pos))
}

fn line_of(source: &str, pos: usize) -> usize {
    source.as_bytes()[..pos].iter().filter(|c| **c == b'\n').count() + 1
}

/// Is a `lint: allow(<kind>)` marker present on `line` or the block of
/// comment-only lines immediately above it?
fn waived(lines: &[&str], line: usize, kind: &str) -> bool {
    let marker = format!("lint: allow({kind})");
    if lines.get(line - 1).is_some_and(|l| l.contains(&marker)) {
        return true;
    }
    let mut n = line - 1; // 0-based index of the line above
    while n > 0 {
        let above = lines[n - 1].trim_start();
        if !above.starts_with("//") {
            return false;
        }
        if above.contains(&marker) {
            return true;
        }
        n -= 1;
    }
    false
}

/// Scans masked text for a needle, reporting byte offsets of matches
/// outside the given ranges.
fn occurrences<'a>(
    masked: &'a [u8],
    needle: &'a str,
    skip: &'a [(usize, usize)],
) -> impl Iterator<Item = usize> + 'a {
    let text = std::str::from_utf8(masked).unwrap_or_default();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(p) = text[from..].find(needle) {
            let at = from + p;
            from = at + 1;
            if !in_ranges(at, skip) {
                return Some(at);
            }
        }
        None
    })
}

/// One parsed `match` arm: the pattern text and the 1-based line its
/// pattern starts on.
struct Arm {
    pattern: String,
    line: usize,
}

/// Parses the arms of the `match` whose keyword starts at `kw` in the
/// masked text. Returns `None` when the construct cannot be parsed
/// (macro-generated or exotic code) — such matches are skipped rather
/// than guessed at.
fn parse_match_arms(source: &str, masked: &[u8], kw: usize) -> Option<Vec<Arm>> {
    // Find the `{` opening the match block: first brace at
    // paren/bracket depth zero after the scrutinee expression.
    let mut i = kw + "match".len();
    let mut depth = 0i32;
    let open = loop {
        if i >= masked.len() {
            return None;
        }
        match masked[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => break i,
            b';' if depth == 0 => return None, // `match` used as an identifier?
            _ => {}
        }
        i += 1;
    };
    let mut arms = Vec::new();
    let mut i = open + 1;
    loop {
        // Skip whitespace to the start of the next pattern.
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= masked.len() {
            return None;
        }
        if masked[i] == b'}' {
            return Some(arms); // end of the match block
        }
        let pat_start = i;
        // Pattern runs to the `=>` at nesting depth zero (struct
        // patterns like `Inv { .. }` nest and un-nest before it).
        let mut depth = 0i32;
        let arrow = loop {
            if i >= masked.len() {
                return None;
            }
            match masked[i] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && masked.get(i + 1) == Some(&b'>') => break i,
                _ => {}
            }
            i += 1;
        };
        arms.push(Arm {
            pattern: source[pat_start..arrow].trim().to_string(),
            line: line_of(source, pat_start),
        });
        // Skip the arm body: a block (to its matching brace) or an
        // expression (to the `,` or closing `}` at depth zero).
        i = arrow + 2;
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < masked.len() && masked[i] == b'{' {
            let mut depth = 1i32;
            i += 1;
            while i < masked.len() && depth > 0 {
                match masked[i] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                i += 1;
            }
            if masked.get(i) == Some(&b',') {
                i += 1;
            }
        } else {
            let mut depth = 0i32;
            loop {
                if i >= masked.len() {
                    return None;
                }
                match masked[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'}' if depth == 0 => break, // end of match block
                    b'}' => depth -= 1,
                    b',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
}

/// Does `pattern` name one of the protocol enums as a path segment
/// (`State::…` but not `CoreState::…`)?
fn mentions_protocol_enum(pattern: &str) -> Option<&'static str> {
    let b = pattern.as_bytes();
    for name in PROTOCOL_ENUMS {
        let mut from = 0;
        while let Some(p) = pattern[from..].find(name) {
            let at = from + p;
            from = at + 1;
            let bounded_left = at == 0 || !is_ident(b[at - 1]);
            let qualified = pattern[at + name.len()..].starts_with("::");
            if bounded_left && qualified {
                return Some(name);
            }
        }
    }
    None
}

fn is_bare_wildcard(pattern: &str) -> bool {
    let p = pattern.trim_start_matches('|').trim();
    p == "_" || p.starts_with("_ if ") || p.starts_with("_ if(")
}

/// Lints one source file with the protocol rule set. `path` is used
/// only for reporting.
pub fn lint_source(path: &Path, source: &str) -> Vec<Finding> {
    lint_source_with(path, source, PROTOCOL_RULES)
}

/// Lints one source file against an explicit rule set.
pub fn lint_source_with(path: &Path, source: &str, rules: &[Rule]) -> Vec<Finding> {
    let masked = mask(source);
    let skip = test_ranges(&masked);
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();

    // Rule 1: unwrap/expect.
    if rules.contains(&Rule::Unwrap) {
        for (needle, what) in [(".unwrap()", "unwrap()"), (".expect(", "expect()")] {
            for at in occurrences(&masked, needle, &skip) {
                let line = line_of(source, at);
                if waived(&lines, line, "unwrap") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::Unwrap,
                    detail: format!(
                        "{what} in protocol code — return a typed error, or waive with \
                         `// lint: allow(unwrap) — <why this cannot fail>`"
                    ),
                });
            }
        }
    }

    // Rule 2: wildcard arms over protocol enums.
    for at in occurrences(&masked, "match", &skip) {
        if !rules.contains(&Rule::Wildcard) {
            break;
        }
        let b = source.as_bytes();
        let bounded = (at == 0 || !is_ident(b[at - 1]))
            && b.get(at + 5).is_none_or(|c| !is_ident(*c) && *c != b'!');
        if !bounded {
            continue; // `rematch`, `match_flit`, `matches!`…
        }
        let Some(arms) = parse_match_arms(source, &masked, at) else {
            continue;
        };
        let Some(enum_name) = arms.iter().find_map(|a| mentions_protocol_enum(&a.pattern))
        else {
            continue;
        };
        for arm in arms.iter().filter(|a| is_bare_wildcard(&a.pattern)) {
            if waived(&lines, arm.line, "wildcard") || waived(&lines, line_of(source, at), "wildcard")
            {
                continue;
            }
            findings.push(Finding {
                file: path.to_path_buf(),
                line: arm.line,
                rule: Rule::Wildcard,
                detail: format!(
                    "wildcard `_` arm in a match over `{enum_name}` — list the variants \
                     so new ones break the build, or waive with \
                     `// lint: allow(wildcard) — <why the fallback is safe>`"
                ),
            });
        }
    }

    // Rule 3: hash collections in simulation state.
    if rules.contains(&Rule::Hash) {
        for name in ["HashMap", "HashSet"] {
            for at in occurrences(&masked, name, &skip) {
                let b = source.as_bytes();
                let bounded = (at == 0 || !is_ident(b[at - 1]))
                    && b.get(at + name.len()).is_none_or(|c| !is_ident(*c));
                if !bounded {
                    continue;
                }
                let line = line_of(source, at);
                if waived(&lines, line, "hash") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::Hash,
                    detail: format!(
                        "{name} in deterministic code — iteration order feeds event \
                         (or merge) order; use BTreeMap/BTreeSet for deterministic \
                         replay, or waive with \
                         `// lint: allow(hash) — <why the order cannot leak>`"
                    ),
                });
            }
        }
    }

    // Rule 4: wall-clock reads in deterministic campaign code.
    if rules.contains(&Rule::WallClock) {
        for name in ["Instant", "SystemTime"] {
            for at in occurrences(&masked, name, &skip) {
                let b = source.as_bytes();
                let bounded = (at == 0 || !is_ident(b[at - 1]))
                    && b.get(at + name.len()).is_none_or(|c| !is_ident(*c));
                if !bounded {
                    continue;
                }
                let line = line_of(source, at);
                if waived(&lines, line, "wallclock") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::WallClock,
                    detail: format!(
                        "{name} in campaign code — wall time may only be read at the \
                         harness boundary; cell execution and result merging must be \
                         pure functions of cell configs. Waive with \
                         `// lint: allow(wallclock) — <why this is the harness boundary>`"
                    ),
                });
            }
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every linted crate's `src/` tree under `root` (the workspace
/// root): the protocol crates against [`PROTOCOL_RULES`], the campaign
/// crate against [`CAMPAIGN_RULES`]. `tests/` and `benches/` trees are
/// exempt by construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let sets: [(&[&str], &[Rule]); 2] =
        [(PROTOCOL_CRATES, PROTOCOL_RULES), (CAMPAIGN_CRATES, CAMPAIGN_RULES)];
    for (crates, rules) in sets {
        for krate in crates {
            let src = root.join("crates").join(krate).join("src");
            let mut files = Vec::new();
            rust_sources(&src, &mut files)?;
            files.sort();
            for file in files {
                let source = std::fs::read_to_string(&file)?;
                let rel = file.strip_prefix(root).unwrap_or(&file);
                findings.extend(lint_source_with(rel, &source, rules));
            }
        }
    }
    Ok(findings)
}
