//! A small structural parser for the protocol sources: enum
//! declarations, `impl`-scoped function bodies, and `match` arms with
//! their bodies. Shared by the transition-matrix builder and the lint
//! passes.
//!
//! This is a token scanner over comment/string-masked text, not a Rust
//! parser — it understands exactly the shapes the protocol crates use
//! (unit/tuple/struct variants, or-patterns, `binder @ (…)` patterns,
//! catch-all arms) and reports a [`ParseError`] for anything it cannot
//! follow, so unparseable code fails the analysis loudly instead of
//! escaping it.

use crate::lint::{in_ranges, is_ident, line_of, mask, occurrences, test_ranges};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Code (or a manifest) the scanner could not follow. Reported with the
/// offending file and line; `cargo xtask` exits 3 on these.
#[derive(Debug, Clone)]
pub struct ParseError {
    pub file: PathBuf,
    pub line: usize,
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: parse error: {}", self.file.display(), self.line, self.detail)
    }
}

impl ParseError {
    fn new(file: &Path, line: usize, detail: impl Into<String>) -> Self {
        ParseError { file: file.to_path_buf(), line, detail: detail.into() }
    }
}

/// A parsed source file: original text plus its masked twin, test
/// ranges, and lazily computed token artifacts (function bodies, impl
/// blocks) — each computed exactly once and shared by every pass that
/// touches the file (lint, analyze, audit).
pub struct SourceFile {
    pub path: PathBuf,
    pub text: String,
    masked: Vec<u8>,
    skip: Vec<(usize, usize)>,
    fns: OnceCell<Vec<FnBody>>,
    impls: OnceCell<Vec<ImplBlock>>,
}

impl SourceFile {
    /// Wraps already-read text (used by the string-based lint entry
    /// points and the fixture tests).
    pub fn from_text(path: PathBuf, text: String) -> SourceFile {
        let masked = mask(&text);
        let skip = test_ranges(&masked);
        SourceFile {
            path,
            text,
            masked,
            skip,
            fns: OnceCell::new(),
            impls: OnceCell::new(),
        }
    }

    /// Reads and masks `path` (reported relative to `root` when it is a
    /// prefix).
    pub fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        Ok(SourceFile::from_text(rel, text))
    }

    /// The comment/string-masked twin of the source text.
    pub fn masked(&self) -> &[u8] {
        &self.masked
    }

    /// Byte ranges covered by `#[cfg(test)]` items.
    pub fn skip(&self) -> &[(usize, usize)] {
        &self.skip
    }

    fn masked_str(&self) -> &str {
        std::str::from_utf8(&self.masked).unwrap_or_default()
    }

    /// Every function definition outside test ranges, with its braced
    /// body byte range. Computed once per file, shared across passes.
    pub fn fn_bodies(&self) -> &[FnBody] {
        self.fns.get_or_init(|| find_fn_bodies(&self.text, &self.masked, &self.skip))
    }

    /// Every `impl` block outside test ranges: the implemented type
    /// name and the braced body byte range. Computed once per file.
    pub fn impl_blocks(&self) -> &[ImplBlock] {
        self.impls.get_or_init(|| find_impl_blocks(&self.text, &self.masked, &self.skip))
    }

    /// The type whose `impl` block contains byte position `at`, if any
    /// (innermost-wins is irrelevant: impl blocks do not nest).
    pub fn impl_type_at(&self, at: usize) -> Option<&str> {
        self.impl_blocks()
            .iter()
            .find(|b| (b.body.0..b.body.1).contains(&at))
            .map(|b| b.type_name.as_str())
    }

    /// Is `at` the start of a bounded occurrence of `word`?
    fn bounded_at(&self, at: usize, word: &str) -> bool {
        let b = &self.masked;
        (at == 0 || !is_ident(b[at - 1]))
            && b.get(at + word.len()).is_none_or(|c| !is_ident(*c))
    }

    /// Declared variant names of `enum <name>`, in declaration order.
    pub fn parse_enum(&self, name: &str) -> Result<Vec<String>, ParseError> {
        let needle = format!("enum {name}");
        let at = occurrences(&self.masked, &needle, &self.skip)
            .find(|at| self.bounded_at(*at + 5, name) && self.bounded_at(*at, "enum"))
            .ok_or_else(|| {
                ParseError::new(&self.path, 1, format!("no `enum {name}` declaration found"))
            })?;
        let b = &self.masked;
        let open = b[at..]
            .iter()
            .position(|c| *c == b'{')
            .map(|p| at + p)
            .ok_or_else(|| {
                ParseError::new(
                    &self.path,
                    line_of(&self.text, at),
                    format!("`enum {name}` has no body"),
                )
            })?;
        let mut variants = Vec::new();
        let mut i = open + 1;
        loop {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= b.len() {
                return Err(ParseError::new(
                    &self.path,
                    line_of(&self.text, open),
                    format!("unterminated `enum {name}` body"),
                ));
            }
            match b[i] {
                b'}' => return Ok(variants),
                b'#' => {
                    // Attribute on the variant: skip `#[...]`.
                    let mut depth = 0i32;
                    while i < b.len() {
                        match b[i] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                c if is_ident(c) => {
                    let start = i;
                    while i < b.len() && is_ident(b[i]) {
                        i += 1;
                    }
                    variants.push(self.text[start..i].to_string());
                    // Skip the variant's data and discriminant to the
                    // `,` (or closing `}`) at depth zero.
                    let mut depth = 0i32;
                    while i < b.len() {
                        match b[i] {
                            b'(' | b'[' | b'{' => depth += 1,
                            b')' | b']' => depth -= 1,
                            b'}' if depth == 0 => break,
                            b'}' => depth -= 1,
                            b',' if depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
                _ => {
                    return Err(ParseError::new(
                        &self.path,
                        line_of(&self.text, i),
                        format!("unexpected token in `enum {name}` body"),
                    ));
                }
            }
        }
    }

    /// Byte range of the body of `fn <fn_name>` inside `impl …
    /// <impl_type> …`, disambiguating same-named functions in other
    /// impl blocks.
    pub fn fn_body_in_impl(
        &self,
        impl_type: &str,
        fn_name: &str,
    ) -> Result<(usize, usize), ParseError> {
        let b = &self.masked;
        for at in occurrences(&self.masked, "impl", &self.skip) {
            if !self.bounded_at(at, "impl") {
                continue;
            }
            // Header runs to the `{` opening the impl body.
            let Some(open) = b[at..].iter().position(|c| *c == b'{').map(|p| at + p) else {
                continue;
            };
            let header = &self.masked_str()[at..open];
            let names_type = header.find(impl_type).is_some_and(|p| {
                let hb = header.as_bytes();
                (p == 0 || !is_ident(hb[p - 1]))
                    && hb.get(p + impl_type.len()).is_none_or(|c| !is_ident(*c))
            });
            if !names_type || header.contains(" for ") {
                continue; // trait impls dispatch elsewhere
            }
            let mut depth = 1i32;
            let mut end = open + 1;
            while end < b.len() && depth > 0 {
                match b[end] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
                end += 1;
            }
            // Find `fn <fn_name>` at impl-body depth inside the range.
            let needle = format!("fn {fn_name}");
            for fn_at in occurrences(&self.masked, &needle, &self.skip) {
                if fn_at < at || fn_at >= end || !self.bounded_at(fn_at + 3, fn_name) {
                    continue;
                }
                let mut i = fn_at + needle.len();
                let mut depth = 0i32;
                let body_open = loop {
                    if i >= end {
                        return Err(ParseError::new(
                            &self.path,
                            line_of(&self.text, fn_at),
                            format!("cannot find body of `{impl_type}::{fn_name}`"),
                        ));
                    }
                    match b[i] {
                        b'(' | b'[' => depth += 1,
                        b')' | b']' => depth -= 1,
                        b'{' if depth == 0 => break i,
                        _ => {}
                    }
                    i += 1;
                };
                let mut depth = 1i32;
                let mut j = body_open + 1;
                while j < end && depth > 0 {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                return Ok((body_open, j));
            }
        }
        Err(ParseError::new(
            &self.path,
            1,
            format!("no `fn {fn_name}` found in an `impl {impl_type}` block"),
        ))
    }

    /// Arms of the first `match` inside `range` whose patterns mention
    /// `enum_name::`.
    pub fn match_arms_over(
        &self,
        range: (usize, usize),
        enum_name: &str,
    ) -> Result<Vec<MatchArm>, ParseError> {
        let b = &self.masked;
        for kw in occurrences(&self.masked, "match", &self.skip) {
            if kw < range.0 || kw >= range.1 || !self.bounded_at(kw, "match") {
                continue;
            }
            let arms = self.parse_arms(kw)?;
            if arms.iter().any(|a| a.pattern.contains(&format!("{enum_name}::"))) {
                return Ok(arms);
            }
        }
        let _ = b;
        Err(ParseError::new(
            &self.path,
            line_of(&self.text, range.0),
            format!("no `match` over `{enum_name}` found in function body"),
        ))
    }

    /// Parses the arms of the `match` whose keyword starts at `kw`,
    /// capturing pattern and body text.
    fn parse_arms(&self, kw: usize) -> Result<Vec<MatchArm>, ParseError> {
        let b = &self.masked;
        let err = |at: usize, what: &str| {
            ParseError::new(&self.path, line_of(&self.text, at), what.to_string())
        };
        let mut i = kw + "match".len();
        let mut depth = 0i32;
        let open = loop {
            if i >= b.len() {
                return Err(err(kw, "unterminated `match` scrutinee"));
            }
            match b[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break i,
                b';' if depth == 0 => return Err(err(kw, "`match` token is not a match")),
                _ => {}
            }
            i += 1;
        };
        let mut arms = Vec::new();
        let mut i = open + 1;
        loop {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= b.len() {
                return Err(err(open, "unterminated `match` block"));
            }
            if b[i] == b'}' {
                return Ok(arms);
            }
            let pat_start = i;
            let mut depth = 0i32;
            let arrow = loop {
                if i >= b.len() {
                    return Err(err(pat_start, "unterminated `match` pattern"));
                }
                match b[i] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => depth -= 1,
                    b'=' if depth == 0 && b.get(i + 1) == Some(&b'>') => break i,
                    _ => {}
                }
                i += 1;
            };
            let pattern = self.text[pat_start..arrow].trim().to_string();
            i = arrow + 2;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            let body_start = i;
            if i < b.len() && b[i] == b'{' {
                let mut depth = 1i32;
                i += 1;
                while i < b.len() && depth > 0 {
                    match b[i] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                if b.get(i) == Some(&b',') {
                    i += 1;
                }
            } else {
                let mut depth = 0i32;
                loop {
                    if i >= b.len() {
                        return Err(err(body_start, "unterminated `match` arm body"));
                    }
                    match b[i] {
                        b'(' | b'[' | b'{' => depth += 1,
                        b')' | b']' => depth -= 1,
                        b'}' if depth == 0 => break,
                        b'}' => depth -= 1,
                        b',' if depth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            arms.push(MatchArm {
                pattern,
                body: self.text[body_start..i].trim_end_matches(',').trim().to_string(),
                line: line_of(&self.text, pat_start),
            });
            if b.get(i) == Some(&b',') {
                i += 1;
            }
        }
    }

    /// Is byte position `at` inside a `#[cfg(test)]` range?
    pub fn in_tests(&self, at: usize) -> bool {
        in_ranges(at, &self.skip)
    }
}

/// One `match` arm: pattern text, body text (braces included for block
/// bodies), and the 1-based line the pattern starts on.
#[derive(Debug, Clone)]
pub struct MatchArm {
    pub pattern: String,
    pub body: String,
    pub line: usize,
}

/// What a pattern covers, after expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expansion {
    /// Indices into the enum's declared-variant list.
    pub variants: Vec<usize>,
    /// True for `_` or a bare-binding catch-all: the arm also covers
    /// every variant no earlier arm claimed.
    pub rest: bool,
}

/// Expands an arm pattern over the declared variants of `enum_name`.
///
/// Handles: `Enum::V`, `Enum::V(..)`, `Enum::V { .. }`, or-patterns,
/// `binder @ (A | B)`, guards (`pat if cond` — the guard is ignored;
/// the variant is still *declared* reachable), `_`, and bare-binding
/// catch-alls.
pub fn expand_pattern(
    file: &Path,
    line: usize,
    pattern: &str,
    enum_name: &str,
    variants: &[String],
) -> Result<Expansion, ParseError> {
    // Strip a guard: ` if ` at paren/brace depth zero.
    let mut pat = pattern;
    let pb = pat.as_bytes();
    let mut depth = 0i32;
    for i in 0..pb.len() {
        match pb[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'i' if depth == 0
                && pat[i..].starts_with("if")
                && i > 0
                && pb[i - 1].is_ascii_whitespace()
                && pb.get(i + 2).is_some_and(|c| c.is_ascii_whitespace() || *c == b'(') =>
            {
                pat = pat[..i].trim_end();
                break;
            }
            _ => {}
        }
    }
    // Strip a binder: `name @ (…)` or `name @ Enum::V`.
    if let Some(at) = pat.find('@') {
        let before = pat[..at].trim();
        if before.bytes().all(is_ident) && !before.is_empty() {
            pat = pat[at + 1..].trim();
            if pat.starts_with('(') && pat.ends_with(')') {
                pat = pat[1..pat.len() - 1].trim();
            }
        }
    }
    // Split or-pattern alternatives at depth zero.
    let mut alts = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let pb = pat.as_bytes();
    for i in 0..pb.len() {
        match pb[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'|' if depth == 0 => {
                alts.push(pat[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    alts.push(pat[start..].trim());

    let mut out = Expansion { variants: Vec::new(), rest: false };
    for alt in alts {
        if alt.is_empty() {
            continue; // leading `|`
        }
        if alt == "_" || (alt.bytes().all(is_ident) && !alt.contains("::")) {
            out.rest = true;
            continue;
        }
        let qualifier = format!("{enum_name}::");
        let Some(p) = alt.find(&qualifier) else {
            return Err(ParseError {
                file: file.to_path_buf(),
                line,
                detail: format!("pattern alternative `{alt}` does not name `{enum_name}`"),
            });
        };
        let rest = &alt[p + qualifier.len()..];
        let name: String =
            rest.bytes().take_while(|c| is_ident(*c)).map(char::from).collect();
        let idx = variants.iter().position(|v| *v == name).ok_or_else(|| ParseError {
            file: file.to_path_buf(),
            line,
            detail: format!("pattern names unknown variant `{enum_name}::{name}`"),
        })?;
        out.variants.push(idx);
    }
    Ok(out)
}

/// A function body located in the source: `[open, close)` byte range of
/// the braced block, plus where the `fn` keyword sits for reporting.
#[derive(Debug, Clone)]
pub struct FnBody {
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub fn_kw: usize,
    /// `[open, close)` byte range of the braced body.
    pub body: (usize, usize),
}

/// One `impl` block: the type it implements (for `impl Trait for Type`,
/// the type after `for`) and the braced body byte range.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    pub type_name: String,
    /// Byte offset of the `impl` keyword.
    pub impl_kw: usize,
    /// `[open, close)` byte range of the braced body.
    pub body: (usize, usize),
}

/// Locates every function definition in the masked source (test ranges
/// excluded), with its body byte range. Bodiless declarations (trait
/// methods ending in `;`) are skipped.
fn find_fn_bodies(source: &str, masked: &[u8], skip: &[(usize, usize)]) -> Vec<FnBody> {
    let mut out = Vec::new();
    for at in occurrences(masked, "fn", skip) {
        let b = masked;
        let bounded = (at == 0 || !is_ident(b[at - 1]))
            && b.get(at + 2).is_some_and(|c| c.is_ascii_whitespace());
        if !bounded {
            continue;
        }
        // Name: next identifier run.
        let mut i = at + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        if i == name_start {
            continue;
        }
        let name = source[name_start..i].to_string();
        // Body: first `{` at paren/bracket depth 0 after the signature;
        // `;` first means a bodiless declaration.
        let mut depth = 0i32;
        let open = loop {
            if i >= b.len() {
                break usize::MAX;
            }
            match b[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break i,
                b';' if depth == 0 => break usize::MAX,
                _ => {}
            }
            i += 1;
        };
        if open == usize::MAX {
            continue;
        }
        let mut brace = 1i32;
        let mut j = open + 1;
        while j < b.len() && brace > 0 {
            match b[j] {
                b'{' => brace += 1,
                b'}' => brace -= 1,
                _ => {}
            }
            j += 1;
        }
        out.push(FnBody { name, fn_kw: at, body: (open, j) });
    }
    out
}

/// Locates every `impl` block in the masked source (test ranges
/// excluded). An `impl` token in return/argument position
/// (`-> impl Iterator`) is distinguished from an item by what precedes
/// it: items follow nothing, `}`, `;`, or a `]` closing an attribute.
fn find_impl_blocks(source: &str, masked: &[u8], skip: &[(usize, usize)]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    for at in occurrences(masked, "impl", skip) {
        let b = masked;
        let bounded = (at == 0 || !is_ident(b[at - 1]))
            && b.get(at + 4).is_none_or(|c| !is_ident(*c));
        if !bounded {
            continue;
        }
        let prev = b[..at].iter().rev().find(|c| !c.is_ascii_whitespace());
        if !matches!(prev, None | Some(b'}') | Some(b';') | Some(b']')) {
            continue; // `-> impl Trait`, `(impl Trait, …)`, `&impl …`
        }
        // Header runs to the `{` opening the impl body.
        let Some(open) = b[at..].iter().position(|c| *c == b'{').map(|p| at + p) else {
            continue;
        };
        let header = &source[at + 4..open];
        let Some(type_name) = impl_header_type(header) else {
            continue;
        };
        let mut depth = 1i32;
        let mut end = open + 1;
        while end < b.len() && depth > 0 {
            match b[end] {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        out.push(ImplBlock { type_name, impl_kw: at, body: (open, end) });
    }
    out
}

/// The implemented type name from an impl header (the text between
/// `impl` and `{`): skips generic parameters, and for trait impls takes
/// the segment after ` for `.
fn impl_header_type(header: &str) -> Option<String> {
    // `impl<P: Payload> Network<P>` → work on the part after the
    // generic-parameter group; `impl Display for Finding` → after `for`.
    let b = header.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'<') {
        let mut depth = 0i32;
        while i < b.len() {
            match b[i] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let rest = &header[i..];
    // Trait impl: the type follows the ` for ` at angle depth zero.
    let rb = rest.as_bytes();
    let mut depth = 0i32;
    let mut from = 0;
    for k in 0..rb.len() {
        match rb[k] {
            b'<' => depth += 1,
            b'>' => depth -= 1,
            b'f' if depth == 0
                && rest[k..].starts_with("for")
                && k > 0
                && rb[k - 1].is_ascii_whitespace()
                && rb.get(k + 3).is_some_and(|c| c.is_ascii_whitespace()) =>
            {
                from = k + 3;
            }
            _ => {}
        }
    }
    // First path segment's last identifier: `crate::module::Type<P>` →
    // `Type`. Walk ident runs separated by `::`.
    let tail = rest[from..].trim_start();
    let tb = tail.as_bytes();
    let mut k = 0;
    while k < tb.len() {
        if is_ident(tb[k]) {
            let name_start = k;
            while k < tb.len() && is_ident(tb[k]) {
                k += 1;
            }
            if tail[k..].starts_with("::") {
                k += 2;
                continue;
            }
            let name = &tail[name_start..k];
            if name.is_empty() || name.bytes().next().is_some_and(|c| c.is_ascii_digit()) {
                return None;
            }
            return Some(name.to_string());
        }
        if tb[k] == b'&' || tb[k].is_ascii_whitespace() {
            k += 1;
            continue;
        }
        return None;
    }
    None
}

/// A cache of parsed source files, keyed by absolute path. Every pass
/// of one `cargo xtask` invocation (lint rules, the matrix builder, the
/// call-graph auditor) loads files through the same set, so each file
/// is read, masked, and token-scanned exactly once.
pub struct SourceSet {
    root: PathBuf,
    files: BTreeMap<PathBuf, SourceFile>,
}

impl SourceSet {
    pub fn new(root: &Path) -> SourceSet {
        SourceSet { root: root.to_path_buf(), files: BTreeMap::new() }
    }

    /// Loads (or returns the cached parse of) `path`.
    pub fn load(&mut self, path: &Path) -> std::io::Result<&SourceFile> {
        if !self.files.contains_key(path) {
            let file = SourceFile::load(&self.root, path)?;
            self.files.insert(path.to_path_buf(), file);
        }
        Ok(&self.files[path])
    }

    /// How many distinct files have been loaded.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Classifies an arm body: does the handler accept the (state, event)
/// pair, or reject it as a protocol violation?
///
/// The protocol crates' rejection idiom is uniform — the body *starts*
/// with `panic!`, `unreachable!`, `Err(` or `return Err(` — so a
/// prefix test is exact for them, and arms that merely produce errors
/// on sub-paths (e.g. a validity check inside a handler) stay
/// `handle`.
pub fn classify_body(body: &str) -> &'static str {
    let mut text = body.trim_start();
    while let Some(stripped) = text.strip_prefix('{') {
        text = stripped.trim_start();
    }
    for prefix in ["panic!", "unreachable!", "Err(", "return Err("] {
        if text.starts_with(prefix) {
            return "reject";
        }
    }
    "handle"
}
