//! The declared transition matrix: for each instrumented dispatch site,
//! the (state, event) → action table parsed from the protocol sources.
//!
//! Each site pairs an enum declaration (the triggers) with one `match`
//! in one function (the dispatch). The builder parses both, expands
//! or-patterns and catch-alls over the declared variants, classifies
//! each arm body as `handle` or `reject`, and cross-checks the parsed
//! declaration against the crate's *runtime* name table
//! (`CoherenceMsg::VARIANT_NAMES`, `inpg_locks::STATE_NAMES`). The
//! cross-check is what ties the static IDs to the recorded bits: if the
//! parser and the running code ever disagree about variant order, the
//! analysis refuses to emit a matrix instead of mislabelling coverage.

use crate::parse::{classify_body, expand_pattern, ParseError, SourceSet};
use inpg_campaign::json::Json;
use inpg_sim::coverage;
use std::path::Path;

/// Static description of one instrumented site.
pub struct SiteSpec {
    pub site: coverage::Site,
    pub enum_name: &'static str,
    /// Workspace-relative path of the file declaring the enum.
    pub enum_file: &'static str,
    /// Workspace-relative path of the file holding the dispatch match.
    pub match_file: &'static str,
    /// Type whose inherent impl holds the dispatch function (needed to
    /// disambiguate same-named functions, e.g. the two `handle`s in
    /// `l1.rs`).
    pub impl_type: &'static str,
    pub fn_name: &'static str,
    /// The runtime name table the parsed declaration must match.
    pub runtime_names: &'static [&'static str],
}

/// Every instrumented site, in transition-ID order. Must stay in sync
/// with [`coverage::SITES`] (checked by [`build`]).
pub fn site_specs() -> [SiteSpec; 5] {
    [
        SiteSpec {
            site: coverage::MSG_VNET,
            enum_name: "CoherenceMsg",
            enum_file: "crates/coherence/src/msg.rs",
            match_file: "crates/coherence/src/msg.rs",
            impl_type: "CoherenceMsg",
            fn_name: "vnet",
            runtime_names: &inpg_coherence::CoherenceMsg::VARIANT_NAMES,
        },
        SiteSpec {
            site: coverage::L1_HANDLE,
            enum_name: "CoherenceMsg",
            enum_file: "crates/coherence/src/msg.rs",
            match_file: "crates/coherence/src/l1.rs",
            impl_type: "L1Core",
            fn_name: "handle",
            runtime_names: &inpg_coherence::CoherenceMsg::VARIANT_NAMES,
        },
        SiteSpec {
            site: coverage::HOME_PROCESS,
            enum_name: "CoherenceMsg",
            enum_file: "crates/coherence/src/msg.rs",
            match_file: "crates/coherence/src/home.rs",
            impl_type: "HomeCore",
            fn_name: "process",
            runtime_names: &inpg_coherence::CoherenceMsg::VARIANT_NAMES,
        },
        SiteSpec {
            site: coverage::LOCK_STEP,
            enum_name: "State",
            enum_file: "crates/locks/src/machines.rs",
            match_file: "crates/locks/src/machines.rs",
            impl_type: "LockHandle",
            fn_name: "step",
            runtime_names: &inpg_locks::STATE_NAMES,
        },
        SiteSpec {
            site: coverage::LOCK_ON_RESULT,
            enum_name: "State",
            enum_file: "crates/locks/src/machines.rs",
            match_file: "crates/locks/src/machines.rs",
            impl_type: "LockHandle",
            fn_name: "on_result",
            runtime_names: &inpg_locks::STATE_NAMES,
        },
    ]
}

/// One declared transition: trigger variant → dispatch action.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Global transition ID (`site.base + variant_index`).
    pub id: usize,
    pub trigger: String,
    /// `"handle"` or `"reject"`.
    pub action: &'static str,
    /// Line of the match arm declaring this transition.
    pub line: usize,
}

/// The declared matrix of one site.
pub struct SiteMatrix {
    pub spec: SiteSpec,
    /// One entry per declared enum variant, in declaration order.
    pub transitions: Vec<Transition>,
}

impl SiteMatrix {
    /// The transition for a trigger name, if declared.
    pub fn transition(&self, trigger: &str) -> Option<&Transition> {
        self.transitions.iter().find(|t| t.trigger == trigger)
    }
}

/// Builds the declared transition matrix for every site by parsing the
/// protocol sources under `root` (the workspace root).
pub fn build(root: &Path) -> Result<Vec<SiteMatrix>, ParseError> {
    let mut sources = SourceSet::new(root);
    build_with(root, &mut sources)
}

/// Like [`build`], loading sources through a caller-owned [`SourceSet`]
/// so files shared between sites (`msg.rs` backs three, `machines.rs`
/// two) — and with other passes of the same invocation — are read and
/// token-scanned exactly once.
pub fn build_with(
    root: &Path,
    sources: &mut SourceSet,
) -> Result<Vec<SiteMatrix>, ParseError> {
    let mut out = Vec::new();
    for spec in site_specs() {
        let enum_src = sources
            .load(&root.join(spec.enum_file))
            .map_err(|e| io_error(spec.enum_file, &e))?;
        let variants = enum_src.parse_enum(spec.enum_name)?;

        // Cross-check: parsed declaration vs the runtime name table the
        // recording hooks index by. Any disagreement means the IDs in
        // the bitset would not mean what the matrix says they mean.
        if variants != spec.runtime_names {
            return Err(ParseError {
                file: spec.enum_file.into(),
                line: 1,
                detail: format!(
                    "parsed `{}` variants disagree with the runtime name table \
                     (parsed {} variants: {:?}; runtime {}: {:?}) — the recording \
                     hooks and the parser are out of sync",
                    spec.enum_name,
                    variants.len(),
                    variants,
                    spec.runtime_names.len(),
                    spec.runtime_names,
                ),
            });
        }
        if variants.len() > spec.site.cap {
            return Err(ParseError {
                file: spec.enum_file.into(),
                line: 1,
                detail: format!(
                    "`{}` has {} variants but site `{}` reserves only {} IDs — widen \
                     the site range in crates/sim/src/coverage.rs",
                    spec.enum_name,
                    variants.len(),
                    spec.site.name,
                    spec.site.cap,
                ),
            });
        }

        let match_src = sources
            .load(&root.join(spec.match_file))
            .map_err(|e| io_error(spec.match_file, &e))?;
        let range = match_src.fn_body_in_impl(spec.impl_type, spec.fn_name)?;
        let arms = match_src.match_arms_over(range, spec.enum_name)?;

        // Expand arms over the variants, in arm order: explicit claims
        // first, then catch-alls take every unclaimed variant (match
        // semantics — a catch-all only sees what earlier arms left).
        let mut claimed: Vec<Option<(usize, &'static str)>> = vec![None; variants.len()];
        let mut catch_alls: Vec<(usize, &'static str)> = Vec::new();
        for arm in &arms {
            let exp = expand_pattern(
                &match_src.path,
                arm.line,
                &arm.pattern,
                spec.enum_name,
                &variants,
            )?;
            let action = classify_body(&arm.body);
            for idx in &exp.variants {
                if let Some((line, _)) = claimed[*idx] {
                    return Err(ParseError {
                        file: spec.match_file.into(),
                        line: arm.line,
                        detail: format!(
                            "variant `{}::{}` claimed twice (also on line {line})",
                            spec.enum_name, variants[*idx]
                        ),
                    });
                }
                claimed[*idx] = Some((arm.line, action));
            }
            if exp.rest && exp.variants.is_empty() {
                catch_alls.push((arm.line, action));
            }
        }
        for slot in claimed.iter_mut().filter(|s| s.is_none()) {
            let Some(first) = catch_alls.first() else {
                break;
            };
            *slot = Some(*first);
        }

        let mut transitions = Vec::new();
        for (idx, variant) in variants.iter().enumerate() {
            let Some((line, action)) = claimed[idx] else {
                return Err(ParseError {
                    file: spec.match_file.into(),
                    line: range.0,
                    detail: format!(
                        "no arm of `{}::{}` covers `{}::{}` — the parser missed an \
                         arm (the compiler enforces exhaustiveness)",
                        spec.impl_type, spec.fn_name, spec.enum_name, variant
                    ),
                });
            };
            transitions.push(Transition {
                id: spec.site.id(idx),
                trigger: variant.clone(),
                action,
                line,
            });
        }
        out.push(SiteMatrix { spec, transitions });
    }
    Ok(out)
}

fn io_error(file: &str, e: &std::io::Error) -> ParseError {
    ParseError { file: file.into(), line: 1, detail: format!("cannot read file: {e}") }
}

/// Serializes the matrix to its canonical JSON artifact. Key order is
/// fixed and all inputs are deterministic, so the output is byte-stable
/// across runs.
pub fn to_json(matrix: &[SiteMatrix]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str("inpg.transition_matrix.v1".into())),
        (
            "sites",
            Json::Arr(
                matrix
                    .iter()
                    .map(|m| {
                        Json::obj(vec![
                            ("site", Json::Str(m.spec.site.name.into())),
                            ("base", Json::UInt(m.spec.site.base as u64)),
                            ("cap", Json::UInt(m.spec.site.cap as u64)),
                            ("enum", Json::Str(m.spec.enum_name.into())),
                            (
                                "function",
                                Json::Str(format!(
                                    "{}::{}",
                                    m.spec.impl_type, m.spec.fn_name
                                )),
                            ),
                            ("file", Json::Str(m.spec.match_file.into())),
                            (
                                "transitions",
                                Json::Arr(
                                    m.transitions
                                        .iter()
                                        .map(|t| {
                                            Json::obj(vec![
                                                ("id", Json::UInt(t.id as u64)),
                                                ("trigger", Json::Str(t.trigger.clone())),
                                                ("action", Json::Str(t.action.into())),
                                                ("line", Json::UInt(t.line as u64)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
