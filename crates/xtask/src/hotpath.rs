//! Hot-path performance lints.
//!
//! Two facts about the simulator's inner loop motivate these passes:
//! every lock-protocol step and every coherence message runs through a
//! handful of functions millions of times per campaign cell, and the
//! directory's sharer bookkeeping is consulted on every protocol hop.
//! An accidental allocation or linear scan in either place is invisible
//! in tests and expensive at scale.
//!
//! * **hot** — functions marked with the `#[hot]` attribute (the
//!   zero-dependency `inpg-hot` proc-macro crate), or listed in a
//!   per-crate `HOTPATH.txt` manifest for crates that should not take
//!   the proc-macro dependency, must not allocate: no `Box::new`,
//!   `vec![`, `format!(`, growth calls (`.push(`, `.insert(`,
//!   `.extend(`, `.collect(`), no `.clone(` of simulation state, no
//!   string construction.
//! * **scan** — directory-state files must not probe collections with
//!   `.iter().position(` / `.iter().any(` / `.iter().find(`; sharer
//!   lookups go through keyed `BTreeMap`/`BTreeSet` structures. A
//!   bounded probe over a small fixed-capacity buffer is waivable with
//!   `// lint: allow(scan) — bounded at <N>`.
//!
//! `HOTPATH.txt` format: one `src/<file>.rs::<fn_name>` entry per line,
//! `#` comments and blank lines ignored. An entry applies to every
//! function with that name in the file (wrappers included — if the name
//! is hot, all bodies sharing it are). Entries naming a missing file or
//! a function the file does not define are reported as parse errors, so
//! a manifest cannot rot silently.

use crate::lint::{in_ranges, line_of, occurrences, Finding, Rule, Waivers};
use crate::parse::{ParseError, SourceFile};
use std::path::{Path, PathBuf};

/// Allocation needles forbidden inside hot function bodies.
pub(crate) const ALLOC_NEEDLES: &[(&str, &str)] = &[
    ("Box::new", "heap allocation (`Box::new`)"),
    ("vec![", "heap allocation (`vec![`)"),
    (".to_vec()", "heap allocation (`.to_vec()`)"),
    (".to_string(", "string allocation (`.to_string`)"),
    ("String::from(", "string allocation (`String::from`)"),
    ("format!(", "string allocation (`format!`)"),
    (".collect(", "collection allocation (`.collect`)"),
    (".push(", "collection growth (`.push`)"),
    (".extend(", "collection growth (`.extend`)"),
    (".insert(", "collection growth (`.insert`)"),
    (".clone(", "clone of simulation state (`.clone`)"),
];

/// Linear-scan needles forbidden over directory state.
pub(crate) const SCAN_NEEDLES: &[&str] =
    &[".iter().position(", ".iter().any(", ".iter().find("];

/// Files holding directory (home-node) state, where the scan pass runs.
pub(crate) const DIRECTORY_FILES: &[&str] = &["home.rs"];

/// One `HOTPATH.txt` entry.
struct ManifestEntry {
    /// Path relative to the crate root (`src/event.rs`).
    file: PathBuf,
    fn_name: String,
    /// 1-based line in the manifest, for error reporting.
    line: usize,
    /// Set once some linted file matched this entry's path.
    matched: std::cell::Cell<bool>,
}

/// A crate's parsed `HOTPATH.txt` (empty when the crate has none).
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Every entry as `(file-in-crate, fn name, manifest line)` — the
    /// auditor's redundancy pass walks these against the call graph.
    pub fn entries(&self) -> impl Iterator<Item = (&Path, &str, usize)> {
        self.entries.iter().map(|e| (e.file.as_path(), e.fn_name.as_str(), e.line))
    }

    /// Function names declared hot for the file at `rel_in_crate`
    /// (a path relative to the crate root).
    pub fn fns_for(&self, rel_in_crate: &Path) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| e.file == rel_in_crate)
            .map(|e| {
                e.matched.set(true);
                e.fn_name.clone()
            })
            .collect()
    }

    /// Errors for entries that matched no linted file.
    pub fn unmatched_errors(&self, crate_dir: &Path, root: &Path) -> Vec<ParseError> {
        let manifest_path = crate_dir.join("HOTPATH.txt");
        let rel = manifest_path.strip_prefix(root).unwrap_or(&manifest_path);
        self.entries
            .iter()
            .filter(|e| !e.matched.get())
            .map(|e| ParseError {
                file: rel.to_path_buf(),
                line: e.line,
                detail: format!(
                    "HOTPATH.txt entry `{}::{}` matches no linted source file",
                    e.file.display(),
                    e.fn_name
                ),
            })
            .collect()
    }
}

/// Loads `<crate_dir>/HOTPATH.txt` if present.
pub fn manifest(crate_dir: &Path) -> std::io::Result<Manifest> {
    let path = crate_dir.join("HOTPATH.txt");
    let mut entries = Vec::new();
    if path.is_file() {
        let text = std::fs::read_to_string(&path)?;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            // Malformed lines become entries that can never match a
            // file, so they surface through `unmatched_errors`.
            let (file, fn_name) = line.split_once("::").unwrap_or((line, ""));
            entries.push(ManifestEntry {
                file: PathBuf::from(file),
                fn_name: fn_name.to_string(),
                line: idx + 1,
                matched: std::cell::Cell::new(false),
            });
        }
    }
    Ok(Manifest { entries })
}

/// Byte offsets (in masked text) of `#[hot]` / `#[inpg_hot::hot]`
/// attribute ends, outside test ranges.
pub(crate) fn hot_attr_ends(masked: &[u8], skip: &[(usize, usize)]) -> Vec<usize> {
    let mut ends = Vec::new();
    for needle in ["#[hot]", "#[inpg_hot::hot]"] {
        for at in occurrences(masked, needle, skip) {
            ends.push(at + needle.len());
        }
    }
    ends.sort_unstable();
    ends
}

/// The hot-allocation pass (rule kind `hot`). Returns findings plus
/// parse errors for manifest functions the file does not define.
pub(crate) fn lint_hot(
    sf: &SourceFile,
    lines: &[&str],
    waivers: &mut Waivers,
    hot_manifest: &[String],
) -> (Vec<Finding>, Vec<ParseError>) {
    let (path, source, masked, skip) = (&sf.path, sf.text.as_str(), sf.masked(), sf.skip());
    let bodies = sf.fn_bodies();
    let attr_ends = hot_attr_ends(masked, skip);
    let mut errors = Vec::new();

    // A body is hot when a hot attribute sits between the previous
    // body's end and its `fn` keyword, or its name is in the manifest.
    let mut hot: Vec<&crate::parse::FnBody> = Vec::new();
    for body in bodies {
        let attr_marked = attr_ends.iter().any(|end| {
            *end <= body.fn_kw
                && !bodies
                    .iter()
                    .any(|other| other.fn_kw > *end && other.fn_kw < body.fn_kw)
        });
        if attr_marked || hot_manifest.contains(&body.name) {
            hot.push(body);
        }
    }
    for name in hot_manifest {
        if !bodies.iter().any(|b| &b.name == name) {
            errors.push(ParseError {
                file: path.to_path_buf(),
                line: 1,
                detail: format!("HOTPATH.txt names `{name}`, but this file defines no such fn"),
            });
        }
    }

    let mut findings = Vec::new();
    for body in hot {
        let (open, close) = body.body;
        let text = std::str::from_utf8(&masked[open..close]).unwrap_or_default();
        for (needle, what) in ALLOC_NEEDLES {
            let mut from = 0;
            while let Some(p) = text[from..].find(needle) {
                let at = open + from + p;
                from += p + 1;
                let line = line_of(source, at);
                if waivers.check(lines, line, "hot") {
                    continue;
                }
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: Rule::HotAlloc,
                    detail: format!(
                        "{what} inside hot function `{}` — hoist it out of the per-step \
                         path, or waive with `// lint: allow(hot) — <why it is cold>`",
                        body.name
                    ),
                });
            }
        }
    }
    (findings, errors)
}

/// The directory linear-scan pass (rule kind `scan`). Only runs on
/// files in [`DIRECTORY_FILES`].
pub(crate) fn lint_scans(
    sf: &SourceFile,
    lines: &[&str],
    waivers: &mut Waivers,
) -> Vec<Finding> {
    let (path, source, masked, skip) = (&sf.path, sf.text.as_str(), sf.masked(), sf.skip());
    let is_directory_file = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| DIRECTORY_FILES.contains(&n));
    if !is_directory_file {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for needle in SCAN_NEEDLES {
        for at in occurrences(masked, needle, skip) {
            if in_ranges(at, skip) {
                continue;
            }
            let line = line_of(source, at);
            if waivers.check(lines, line, "scan") {
                continue;
            }
            findings.push(Finding {
                file: path.to_path_buf(),
                line,
                rule: Rule::LinearScan,
                detail: format!(
                    "linear scan `{needle}…)` over directory state — sharer lookups must \
                     use keyed BTree structures; a bounded probe needs \
                     `// lint: allow(scan) — bounded at <N>`"
                ),
            });
        }
    }
    findings
}
