//! Library surface of the workspace automation tool, so the lint
//! engine is testable from integration tests. The `xtask` binary is a
//! thin CLI over this.

pub mod lint;
