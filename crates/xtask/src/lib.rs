//! Library surface of the workspace automation tool, so the lint
//! engine and the transition-matrix analyzer are testable from
//! integration tests. The `xtask` binary is a thin CLI over this.

pub mod audit;
pub mod callgraph;
pub mod coverage;
pub mod hotpath;
pub mod lint;
pub mod matrix;
pub mod parse;
