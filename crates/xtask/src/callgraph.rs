//! A per-crate, name-resolved call graph over the simulator workspace.
//!
//! Built from the same token scanner as the lint passes (no `syn` in
//! this environment): every function body found by
//! [`SourceFile::fn_bodies`] becomes a node, and every call-shaped
//! token sequence inside a body becomes an edge candidate. The graph is
//! deliberately an **over-approximation** — the auditor that consumes
//! it (`cargo xtask audit`) flags everything *transitively reachable*
//! from the per-cycle entry points, so resolving too many edges errs
//! toward auditing code that is actually cold, never toward missing
//! code that is actually hot.
//!
//! Call shapes recognized:
//!
//! * free / associated calls — `name(…)`, `Type::name(…)`,
//!   `module::name(…)`, with optional turbofish (`name::<T>(…)`);
//! * method calls — `.name(…)`, including chains (`a.b().c()`);
//! * closures — a call inside `|…| …` is attributed to the enclosing
//!   function, which is exactly right for closures passed to iterator
//!   adapters (`.map(|x| step(x))` adds an edge to `step`);
//! * trait-object and generic dispatch — a call through `dyn Trait` or
//!   `T: Trait` is a plain method call textually, so it resolves to
//!   *every* audited function with that method name (all impls).
//!
//! Resolution rules:
//!
//! * `Type::name(…)` (uppercase qualifier) resolves only to functions
//!   named `name` inside an `impl Type` block — this is what keeps
//!   ubiquitous constructors (`Vec::new`, `Router::new`) from wiring
//!   every `new` in the workspace together;
//! * `Self::name(…)` uses the calling function's own impl type;
//! * `module::name(…)` (lowercase qualifier) and bare `name(…)` resolve
//!   by name across all audited crates;
//! * `.name(…)` resolves by name across all audited crates (methods on
//!   foreign types — `Vec::push` — simply find no local target).

use crate::parse::{ParseError, SourceFile, SourceSet};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees enter the call graph. Everything the
/// per-cycle loop can touch lives here; the campaign/analysis layers
/// above the simulator have their own rule sets.
pub const AUDITED_CRATES: &[&str] =
    &["sim", "locks", "coherence", "noc", "manycore", "workloads", "stats", "core"];

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Crate directory name (`noc`, not `inpg-noc`).
    pub krate: &'static str,
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// Enclosing `impl` type, if the function is a method.
    pub impl_type: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword in its file.
    pub fn_kw: usize,
    /// Byte range of the braced body in its file.
    pub body: (usize, usize),
}

impl FnNode {
    /// `Type::name` or `name`, for display and finding keys.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph: nodes in deterministic (crate, file, byte)
/// order plus resolved, deduplicated edges.
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<(String, String), Vec<usize>>,
}

impl CallGraph {
    /// Direct callees of node `i`.
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Nodes matching a (file-suffix, optional impl type, name) triple.
    pub fn resolve_named(
        &self,
        file_suffix: &str,
        impl_type: Option<&str>,
        name: &str,
    ) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.name == name
                    && n.file.to_string_lossy().ends_with(file_suffix)
                    && impl_type.is_none_or(|t| n.impl_type.as_deref() == Some(t))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Every node reachable from `seeds` (inclusive), with the BFS
    /// parent of each reached node for chain reconstruction.
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        let mut sorted_seeds: Vec<usize> = seeds.to_vec();
        sorted_seeds.sort_unstable();
        sorted_seeds.dedup();
        for s in sorted_seeds {
            parent.insert(s, None);
            queue.push_back(s);
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some(at));
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The seed-to-node call chain as `a → b → c` (for reports).
    pub fn chain(&self, parents: &BTreeMap<usize, Option<usize>>, mut at: usize) -> String {
        let mut names = vec![self.nodes[at].qualified()];
        while let Some(Some(p)) = parents.get(&at) {
            names.push(self.nodes[*p].qualified());
            at = *p;
        }
        names.reverse();
        names.join(" → ")
    }
}

/// One extracted call site, before resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// `Type::` / `module::` qualifier, if the call was path-qualified.
    pub qualifier: Option<String>,
    /// True for `.name(…)` receiver-method calls.
    pub method: bool,
    pub name: String,
    /// Byte offset of the name in the file.
    pub at: usize,
}

/// Keywords and intrinsically call-shaped non-calls the extractor skips.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "in", "as", "let", "mut",
    "fn", "pub", "use", "move", "ref", "break", "continue", "unsafe", "where", "impl",
    "dyn", "Some", "None", "Ok", "Err", "self",
];

/// Extracts every call-shaped token sequence from `masked[range]`.
/// `source` provides the original identifier text.
pub fn extract_calls(source: &str, masked: &[u8], range: (usize, usize)) -> Vec<CallSite> {
    let b = masked;
    let (open, close) = range;
    let mut out = Vec::new();
    let mut i = open;
    while i < close && i < b.len() {
        if !is_ident_start(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let name_start = i;
        while i < close && is_ident(b[i]) {
            i += 1;
        }
        let name = &source[name_start..i];
        // Definitions are not calls: `fn name(` has `fn` just before.
        if preceded_by_kw(b, name_start, "fn") {
            continue;
        }
        // What follows? (skip whitespace, allow one turbofish group)
        let mut j = i;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if b.get(j) == Some(&b'!') {
            continue; // macro invocation; needles inside still scanned
        }
        if source[j..].starts_with("::<") {
            // `name::<T>(…)` — skip the turbofish generic group.
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < b.len() {
                match b[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
        } else if source[j..].starts_with("::") {
            continue; // a path segment, not the called name — keep walking
        }
        if b.get(j) != Some(&b'(') {
            continue;
        }
        if NON_CALLS.contains(&name) {
            continue;
        }
        // Qualifier / method receiver: what sits directly before the name?
        let mut p = name_start;
        while p > 0 && b[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        let (qualifier, method) = if p >= 2 && &b[p - 2..p] == b"::" {
            let q_end = p - 2;
            // Skip a generic group backwards: `Network::<P>::send` is
            // not produced by this codebase; plain segment suffices.
            let mut q_start = q_end;
            while q_start > 0 && is_ident(b[q_start - 1]) {
                q_start -= 1;
            }
            if q_start == q_end {
                (None, false)
            } else {
                (Some(source[q_start..q_end].to_string()), false)
            }
        } else if p >= 1 && b[p - 1] == b'.' {
            (None, true)
        } else {
            (None, false)
        };
        out.push(CallSite {
            qualifier,
            method,
            name: name.to_string(),
            at: name_start,
        });
    }
    out
}

/// Names of macros invoked (`name!`) inside `masked[range]`. Used to
/// attribute calls inside locally defined `macro_rules!` bodies to the
/// functions that expand them.
pub fn extract_macro_invocations(source: &str, masked: &[u8], range: (usize, usize)) -> Vec<String> {
    let b = masked;
    let (open, close) = range;
    let mut out = Vec::new();
    let mut i = open;
    while i < close && i < b.len() {
        if !is_ident_start(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let name_start = i;
        while i < close && is_ident(b[i]) {
            i += 1;
        }
        let mut j = i;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        // `name!` but not `name !=` (comparison), and not the
        // `macro_rules!` keyword itself.
        if b.get(j) == Some(&b'!') && b.get(j + 1) != Some(&b'=') {
            let name = &source[name_start..i];
            if name != "macro_rules" {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// `macro_rules!` definitions in a file (outside `#[cfg(test)]`
/// regions): `(name, body_byte_range)` per definition. The body range
/// covers the full delimited token tree including matcher arms; calls
/// inside it are attributed to every invoking function, because the
/// expansion *runs* there — this is what keeps macro-generated match
/// arms inside the audit instead of silently invisible.
pub fn extract_macro_defs(sf: &SourceFile) -> Vec<(String, (usize, usize))> {
    let b = sf.masked();
    let source = &sf.text;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !is_ident_start(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let kw_start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        if &source[kw_start..i] != "macro_rules" {
            continue;
        }
        if sf.skip().iter().any(|&(s, e)| kw_start >= s && kw_start < e) {
            continue;
        }
        let mut j = i;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if b.get(j) != Some(&b'!') {
            continue;
        }
        j += 1;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && is_ident(b[j]) {
            j += 1;
        }
        if name_start == j {
            continue;
        }
        let name = source[name_start..j].to_string();
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let (open_ch, close_ch) = match b.get(j) {
            Some(&b'{') => (b'{', b'}'),
            Some(&b'(') => (b'(', b')'),
            Some(&b'[') => (b'[', b']'),
            _ => continue,
        };
        // Masked text keeps delimiter structure (strings/comments are
        // blanked), so plain depth counting finds the matching close.
        let body_open = j;
        let mut depth = 0i32;
        while j < b.len() {
            if b[j] == open_ch {
                depth += 1;
            } else if b[j] == close_ch {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        out.push((name, (body_open, j)));
        i = j;
    }
    out
}

/// Call sites reachable by expanding `invoked` macros transitively
/// through locally defined macro bodies (macros may invoke macros; a
/// visited set bounds cycles).
fn macro_expanded_sites(
    invoked: &[String],
    sites: &BTreeMap<String, Vec<CallSite>>,
    nested: &BTreeMap<String, Vec<String>>,
) -> Vec<CallSite> {
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<&str> = invoked.iter().map(String::as_str).collect();
    let mut out = Vec::new();
    while let Some(name) = stack.pop() {
        if !visited.insert(name.to_string()) {
            continue;
        }
        if let Some(s) = sites.get(name) {
            out.extend(s.iter().cloned());
        }
        if let Some(next) = nested.get(name) {
            stack.extend(next.iter().map(String::as_str));
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Is the identifier at `at` directly preceded (modulo whitespace) by
/// the keyword `kw`?
fn preceded_by_kw(b: &[u8], at: usize, kw: &str) -> bool {
    let mut p = at;
    while p > 0 && b[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let k = kw.as_bytes();
    p >= k.len()
        && &b[p - k.len()..p] == k
        && (p == k.len() || !is_ident(b[p - k.len() - 1]))
}

/// Builds the call graph for every crate in [`AUDITED_CRATES`], loading
/// sources through the shared `SourceSet`.
pub fn build(root: &Path, sources: &mut SourceSet) -> Result<CallGraph, ParseError> {
    build_for(root, sources, AUDITED_CRATES)
}

/// Builds the call graph over an explicit crate list (tests use
/// fixture trees with a reduced list).
pub fn build_for(
    root: &Path,
    sources: &mut SourceSet,
    crates: &'static [&'static str],
) -> Result<CallGraph, ParseError> {
    let mut all_files: Vec<(&'static str, PathBuf)> = Vec::new();
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        walk(&src, &mut files).map_err(|e| ParseError {
            file: src.clone(),
            line: 1,
            detail: format!("cannot walk crate sources: {e}"),
        })?;
        files.sort();
        all_files.extend(files.into_iter().map(|f| (*krate, f)));
    }

    // Pass 1: locally defined macros. Calls inside a `macro_rules!`
    // body belong to every function that invokes the macro (that is
    // where the expansion runs), so collect them first.
    let mut macro_sites: BTreeMap<String, Vec<CallSite>> = BTreeMap::new();
    let mut macro_nested: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (_, file) in &all_files {
        let sf = sources.load(file).map_err(|e| ParseError {
            file: file.clone(),
            line: 1,
            detail: format!("cannot read file: {e}"),
        })?;
        for (name, body) in extract_macro_defs(sf) {
            macro_sites
                .entry(name.clone())
                .or_default()
                .extend(extract_calls(&sf.text, sf.masked(), body));
            macro_nested
                .entry(name)
                .or_default()
                .extend(extract_macro_invocations(&sf.text, sf.masked(), body));
        }
    }

    // Pass 2: function nodes and their raw call sites (direct calls
    // plus calls expanded out of invoked local macros).
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut raw_calls: Vec<Vec<CallSite>> = Vec::new();
    for (krate, file) in &all_files {
        let sf = sources.load(file).map_err(|e| ParseError {
            file: file.clone(),
            line: 1,
            detail: format!("cannot read file: {e}"),
        })?;
        for body in sf.fn_bodies() {
            let impl_type = sf.impl_type_at(body.fn_kw).map(str::to_string);
            let line = crate::lint::line_of(&sf.text, body.fn_kw);
            nodes.push(FnNode {
                krate,
                file: sf.path.clone(),
                impl_type,
                name: body.name.clone(),
                line,
                fn_kw: body.fn_kw,
                body: body.body,
            });
            let mut calls = extract_calls(&sf.text, sf.masked(), body.body);
            let invoked = extract_macro_invocations(&sf.text, sf.masked(), body.body);
            calls.extend(macro_expanded_sites(&invoked, &macro_sites, &macro_nested));
            raw_calls.push(calls);
        }
    }

    // Index nodes for resolution.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        by_name.entry(node.name.clone()).or_default().push(i);
        if let Some(t) = &node.impl_type {
            by_qual.entry((t.clone(), node.name.clone())).or_default().push(i);
        }
    }

    // Resolve edges.
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    for (i, calls) in raw_calls.iter().enumerate() {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for call in calls {
            let targets: Option<&Vec<usize>> = match &call.qualifier {
                Some(q) if q == "Self" => match &nodes[i].impl_type {
                    Some(t) => by_qual.get(&(t.clone(), call.name.clone())),
                    None => by_name.get(&call.name),
                },
                Some(q) if q.bytes().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                    by_qual.get(&(q.clone(), call.name.clone()))
                }
                // Lowercase qualifier (a module path) or none: by name.
                Some(_) | None => by_name.get(&call.name),
            };
            if let Some(targets) = targets {
                out.extend(targets.iter().copied());
            }
        }
        out.remove(&i); // direct recursion adds nothing to reachability
        edges.push(out.into_iter().collect());
    }

    Ok(CallGraph { nodes, edges, by_name, by_qual })
}

impl CallGraph {
    /// Nodes defined with `name` anywhere in the audited set (used by
    /// tests and diagnostics).
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Nodes defined as `Type::name` (used by tests and diagnostics).
    pub fn method_of(&self, impl_type: &str, name: &str) -> &[usize] {
        self.by_qual
            .get(&(impl_type.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
