//! Transition-coverage observation and diffing.
//!
//! `cargo xtask analyze` drives two execution engines in-process
//! against the same instrumented protocol cores:
//!
//! 1. a **timed** phase — a small campaign sweeping every lock
//!    primitive under the baseline and iNPG mechanisms on a 4×4 mesh
//!    (with a reduced retry budget on the QSL cells so the sleep path
//!    is exercised), and
//! 2. an **untimed** phase — the bounded model checker, which explores
//!    every reachable protocol state rather than one timed trace.
//!
//! The global bitset (`inpg_sim::coverage`) is snapshotted after each
//! phase, and every declared transition is classified as reached by
//! sim, by the checker, by both, or by neither. Observed bits with no
//! declared transition are *undeclared* — always a hard error, because
//! they mean the runtime and the parsed matrix disagree.
//!
//! The classification is compared byte-for-byte against the checked-in
//! baseline (`crates/xtask/coverage_baseline.json`). Any drift —
//! regression *or* progress — fails the run until the baseline is
//! re-blessed with `cargo xtask analyze --bless`, which regenerates the
//! coverage section while preserving the hand-maintained
//! `allow_unreached` map (trigger → documented reason). An unreached
//! `handle` transition without an allowlist entry fails the run; an
//! allowlist entry whose transition is now reached is itself stale and
//! fails the run. `reject` transitions are expected to be unreached
//! (reaching one means a protocol-violation path executed).

use crate::matrix::SiteMatrix;
use inpg::Mechanism;
use inpg_campaign::engine::{execute, ExecOptions};
use inpg_campaign::json::Json;
use inpg_campaign::{Campaign, CellConfig};
use inpg_locks::LockPrimitive;
use inpg_sim::coverage;
use std::path::Path;

/// Snapshots of the transition bitset after each phase.
pub struct Observed {
    pub sim: [u64; coverage::WORDS],
    pub checker: [u64; coverage::WORDS],
}

/// The campaign for the timed phase: every primitive under the
/// baseline and iNPG mechanisms. Small meshes and round counts — the
/// goal is reaching transitions, not statistical confidence.
fn coverage_campaign() -> Campaign {
    let mut campaign = Campaign::new("coverage");
    for mechanism in [Mechanism::Original, Mechanism::Inpg] {
        let tag = match mechanism {
            Mechanism::Original => "orig",
            Mechanism::Inpg => "inpg",
            Mechanism::Ocor | Mechanism::InpgOcor => unreachable!("not swept here"),
        };
        for primitive in LockPrimitive::ALL {
            let mut cfg = CellConfig::hot_lock(8, 80, 30);
            cfg.primitive = primitive;
            cfg.mechanism = mechanism;
            cfg.width = 4;
            cfg.height = 4;
            cfg.max_cycles = 5_000_000;
            if primitive.has_sleep_phase() {
                // Exhaust the QSL retry budget fast so the sleep /
                // OS-wakeup states are reached within a small cell.
                cfg.retry_budget = 4;
            }
            campaign.push(format!("{tag}-{primitive}"), cfg);
        }
    }
    // A rapid-handoff MCS cell (near-empty critical sections, corner
    // lock home) gives the mid-enqueue release race its best odds;
    // `lock_step::McsNextPause` still needs a successor's tail swap
    // inside the link-store latency window and stays allowlisted (see
    // coverage_baseline.json), but the cell keeps the rest of the MCS
    // release path hot.
    let mut cfg = CellConfig::hot_lock(64, 5, 1);
    cfg.primitive = LockPrimitive::Mcs;
    cfg.width = 4;
    cfg.height = 4;
    cfg.lock_home = Some(0);
    cfg.max_cycles = 5_000_000;
    campaign.push("orig-mcs-handoff", cfg);
    campaign
}

/// Runs both phases and snapshots the bitset after each. The bitset is
/// global, so this resets it around each phase; coverage recorded by
/// earlier in-process work is discarded by design.
pub fn observe() -> Result<Observed, String> {
    coverage::reset();
    let campaign = coverage_campaign();
    // No cache: a cache hit would skip execution and lose its coverage.
    let opts = ExecOptions::quiet();
    execute(&campaign, &opts).map_err(|e| format!("coverage campaign failed: {e}"))?;
    let sim = coverage::snapshot();

    coverage::reset();
    for barrier in [false, true] {
        let cfg = inpg_analysis::Config::bounded(2, 1, barrier);
        match inpg_analysis::check(&cfg) {
            inpg_analysis::Verdict::Pass(_) => {}
            inpg_analysis::Verdict::Fail(cx) => {
                return Err(format!(
                    "model checker found a protocol violation during the coverage \
                     run (barrier={barrier}): {}",
                    cx.property
                ));
            }
        }
    }
    let checker = coverage::snapshot();
    Ok(Observed { sim, checker })
}

/// Classification of one declared transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    Both,
    SimOnly,
    CheckerOnly,
    Unreached,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Both => "sim+checker",
            Status::SimOnly => "sim",
            Status::CheckerOnly => "checker",
            Status::Unreached => "unreached",
        }
    }
}

/// The full coverage report: per-site, per-trigger classification plus
/// any undeclared-but-observed bits.
pub struct Report {
    /// `(site, trigger, action, status)` for every declared transition,
    /// in transition-ID order.
    pub rows: Vec<(String, String, &'static str, Status)>,
    /// Observed transition IDs with no declared transition.
    pub undeclared: Vec<usize>,
}

/// Classifies every declared transition against the observed bitsets.
pub fn classify(matrix: &[SiteMatrix], observed: &Observed) -> Report {
    let mut rows = Vec::new();
    let mut declared = [false; coverage::TRANSITION_CAP];
    for site in matrix {
        for t in &site.transitions {
            declared[t.id] = true;
            let in_sim = coverage::is_set(&observed.sim, t.id);
            let in_chk = coverage::is_set(&observed.checker, t.id);
            let status = match (in_sim, in_chk) {
                (true, true) => Status::Both,
                (true, false) => Status::SimOnly,
                (false, true) => Status::CheckerOnly,
                (false, false) => Status::Unreached,
            };
            rows.push((
                site.spec.site.name.to_string(),
                t.trigger.clone(),
                t.action,
                status,
            ));
        }
    }
    let mut undeclared = Vec::new();
    for (id, declared) in declared.iter().enumerate() {
        let seen =
            coverage::is_set(&observed.sim, id) || coverage::is_set(&observed.checker, id);
        if seen && !declared {
            undeclared.push(id);
        }
    }
    Report { rows, undeclared }
}

/// Serializes the report to its canonical JSON artifact (byte-stable:
/// fixed key order, deterministic inputs).
pub fn report_json(matrix: &[SiteMatrix], report: &Report) -> Json {
    let mut sites = Vec::new();
    for site in matrix {
        let name = site.spec.site.name;
        let transitions = report
            .rows
            .iter()
            .filter(|(s, ..)| s == name)
            .map(|(_, trigger, action, status)| {
                Json::obj(vec![
                    ("trigger", Json::Str(trigger.clone())),
                    ("action", Json::Str((*action).into())),
                    ("status", Json::Str(status.label().into())),
                ])
            })
            .collect();
        sites.push(Json::obj(vec![
            ("site", Json::Str(name.into())),
            ("transitions", Json::Arr(transitions)),
        ]));
    }
    Json::obj(vec![
        ("schema", Json::Str("inpg.coverage.v1".into())),
        ("sites", Json::Arr(sites)),
        (
            "undeclared",
            Json::Arr(report.undeclared.iter().map(|id| Json::UInt(*id as u64)).collect()),
        ),
    ])
}

/// The parsed baseline file: the blessed coverage section plus the
/// hand-maintained allowlist of documented-unreached transitions.
pub struct Baseline {
    /// `site::trigger` → reason.
    pub allow_unreached: Vec<(String, String)>,
    /// Canonical serialization of the blessed coverage report.
    pub coverage_compact: String,
}

/// Loads and validates the baseline file.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let json = inpg_campaign::json::parse(&text)
        .map_err(|e| format!("malformed baseline {}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str);
    if schema != Some("inpg.coverage_baseline.v1") {
        return Err(format!(
            "baseline {} has unexpected schema {schema:?}",
            path.display()
        ));
    }
    let mut allow_unreached = Vec::new();
    if let Some(Json::Obj(entries)) = json.get("allow_unreached") {
        for (key, reason) in entries {
            let reason = reason
                .as_str()
                .ok_or_else(|| format!("allow_unreached[{key}] reason must be a string"))?;
            allow_unreached.push((key.clone(), reason.to_string()));
        }
    }
    let coverage_compact = json
        .get("coverage")
        .ok_or_else(|| format!("baseline {} lacks a `coverage` section", path.display()))?
        .to_string_compact();
    Ok(Baseline { allow_unreached, coverage_compact })
}

/// Serializes a baseline (used by `--bless`).
pub fn baseline_json(allow_unreached: &[(String, String)], coverage: Json) -> Json {
    let mut allow: Vec<(String, Json)> = allow_unreached
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    allow.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(vec![
        ("schema".into(), Json::Str("inpg.coverage_baseline.v1".into())),
        ("allow_unreached".into(), Json::Obj(allow)),
        ("coverage".into(), coverage),
    ])
}

/// Validates the classification against the allowlist and the blessed
/// coverage. Returns findings (strings shown to the user); non-empty
/// findings fail the run with exit 2.
pub fn validate(report: &Report, current_compact: &str, baseline: &Baseline) -> Vec<String> {
    let mut findings = Vec::new();
    for id in &report.undeclared {
        findings.push(format!(
            "undeclared-but-observed transition id {id} — the runtime recorded a bit \
             the parsed matrix does not declare (parser/runtime drift)"
        ));
    }
    for (site, trigger, action, status) in &report.rows {
        let key = format!("{site}::{trigger}");
        let allowed = baseline.allow_unreached.iter().find(|(k, _)| *k == key);
        match (*status, *action, allowed) {
            (Status::Unreached, "handle", None) => findings.push(format!(
                "{key}: declared `handle` transition is unreached and has no \
                 allow_unreached entry — extend the coverage campaign or document \
                 why it cannot be reached"
            )),
            (Status::Unreached, _, _) => {}
            (_, _, Some((_, reason))) => findings.push(format!(
                "{key}: allow_unreached entry is stale (transition is now reached; \
                 reason was: {reason}) — remove it and re-bless"
            )),
            _ => {}
        }
    }
    for (key, _) in &baseline.allow_unreached {
        if !report.rows.iter().any(|(s, t, ..)| format!("{s}::{t}") == *key) {
            findings.push(format!(
                "allow_unreached entry `{key}` names no declared transition"
            ));
        }
    }
    if current_compact != baseline.coverage_compact {
        findings.push(
            "coverage differs from the blessed baseline (see the per-transition \
             classification above; run `cargo xtask analyze --bless` after reviewing \
             the drift)"
                .into(),
        );
    }
    findings
}
