//! The interprocedural hot-path auditor (`cargo xtask audit`).
//!
//! Where the lint passes enforce purity on functions *declared* hot
//! (`#[hot]` attributes, `HOTPATH.txt` manifests), the auditor derives
//! hotness from the program itself: it builds the workspace call graph
//! ([`crate::callgraph`]), seeds it with the per-cycle entry points of
//! the simulator loop, and flags every heap allocation, panic path,
//! wall-clock read, hash-collection use, and linear directory scan that
//! is *transitively reachable* from those seeds. A helper three hops
//! below `L1Core::handle` is exactly as hot as `handle` itself, and the
//! auditor treats it that way — no annotation required, no annotation
//! to forget.
//!
//! Enforcement is baseline-driven: every finding is keyed by
//! `kind|file|function|needle` and counted, and the current finding map
//! must match `crates/xtask/audit_baseline.json` exactly. New findings,
//! changed counts, *and* stale baseline entries all fail with exit 2
//! until the baseline is re-blessed (`cargo xtask audit --bless`) —
//! drift in either direction is reviewed, never absorbed. Exit codes
//! match `lint`/`analyze`: 0 clean, 2 findings, 3 internal or parse
//! error.
//!
//! Two further passes ride on the same graph:
//!
//! * **sync** — every atomic-ordering use and every
//!   `Mutex`/`Condvar`/`Atomic*` construction in the concurrency
//!   kernels (`crates/sim/src/coverage.rs`, `crates/campaign/src`)
//!   must carry a `// sync:` justification comment (same line or the
//!   comment block directly above) explaining why the chosen ordering
//!   or primitive is correct;
//! * **redundant** — `#[hot]` attributes and `HOTPATH.txt` entries on
//!   functions the call graph already reaches from the seeds are
//!   reported as redundant: reachability supersedes the manual
//!   annotation, which should be deleted rather than left to rot.

use crate::callgraph::{self, CallGraph, FnNode};
use crate::hotpath::{self, ALLOC_NEEDLES, SCAN_NEEDLES};
use crate::lint::{line_of, occurrences};
use crate::parse::{ParseError, SourceSet};
use inpg_campaign::json::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Per-cycle entry points: the functions the simulator executes every
/// cycle (or every protocol hop). Everything reachable from here runs
/// millions of times per campaign cell. Each seed is
/// `(file suffix, impl type, fn name)`; resolution failure is a hard
/// error so the seed list cannot rot when code moves.
pub const SEEDS: &[(&str, &str, &str)] = &[
    ("noc/src/network.rs", "Network", "tick"),
    ("noc/src/network.rs", "Network", "send"),
    ("noc/src/network.rs", "Network", "pop_delivered"),
    ("coherence/src/l1.rs", "L1Core", "handle"),
    ("coherence/src/home.rs", "HomeCore", "process"),
    ("locks/src/machines.rs", "LockHandle", "step"),
    ("locks/src/machines.rs", "LockHandle", "on_result"),
    ("manycore/src/system.rs", "System", "tick"),
    ("manycore/src/system.rs", "System", "try_tick"),
    ("sim/src/event.rs", "EventWheel", "pop_due"),
    ("sim/src/event.rs", "EventWheel", "next_due"),
];

/// Panic-path needles. Dotted needles bind to a receiver; bare-word
/// needles get a word-boundary check so `debug_assert!` (compiled out
/// in release) never matches `assert!`.
const PANIC_NEEDLES: &[(&str, &str)] = &[
    ("panic!(", "explicit panic (`panic!`)"),
    ("unreachable!(", "explicit panic (`unreachable!`)"),
    ("todo!(", "explicit panic (`todo!`)"),
    (".unwrap()", "panic on None/Err (`.unwrap`)"),
    (".expect(", "panic on None/Err (`.expect`)"),
    ("assert!(", "release-mode assert (`assert!`)"),
    ("assert_eq!(", "release-mode assert (`assert_eq!`)"),
    ("assert_ne!(", "release-mode assert (`assert_ne!`)"),
];

/// Wall-clock needles: the per-cycle path must be deterministic and
/// syscall-free; time belongs to the harness boundary
/// (`Experiment::run_timed`).
const WALLCLOCK_NEEDLES: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read (`Instant::now`)"),
    ("SystemTime::now", "wall-clock read (`SystemTime::now`)"),
];

/// Hash-collection needles: iteration order is nondeterministic, and
/// SipHash costs more than the keyed BTree lookups the simulator uses.
const HASH_NEEDLES: &[(&str, &str)] = &[
    ("HashMap", "hash collection (`HashMap`)"),
    ("HashSet", "hash collection (`HashSet`)"),
];

/// Files whose synchronization sites require `// sync:` justifications:
/// the coverage bitset plus the whole campaign runtime (worker pool,
/// serve daemon, shared cache).
const SYNC_KERNELS: &[&str] = &["crates/sim/src/coverage.rs", "crates/campaign/src"];

/// Construction needles audited by the sync pass, alongside every
/// `Ordering::` use.
const SYNC_CTOR_NEEDLES: &[&str] = &[
    "Mutex::new(",
    "Condvar::new(",
    "AtomicBool::new(",
    "AtomicU8::new(",
    "AtomicU32::new(",
    "AtomicU64::new(",
    "AtomicUsize::new(",
    "AtomicI64::new(",
];

/// One aggregated audit finding: all occurrences of one needle in one
/// function (or one sync construct in one file), with the first line
/// for the report.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// `alloc` | `panic` | `wallclock` | `hash` | `scan` | `sync` |
    /// `redundant`.
    pub kind: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// `Type::fn` (empty for file-level findings).
    pub func: String,
    /// The matched needle (or construct name).
    pub needle: String,
    /// Human detail, including the seed→function chain for
    /// reachability findings.
    pub detail: String,
    /// 1-based line of the first occurrence.
    pub line: usize,
    pub count: usize,
}

impl AuditFinding {
    /// The stable baseline key. Line numbers are deliberately excluded
    /// so unrelated edits above a blessed site do not invalidate it.
    pub fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.kind, self.file, self.func, self.needle)
    }
}

/// The full audit: graph statistics plus the finding list, sorted by
/// key (byte-stable given identical sources).
pub struct Audit {
    pub nodes: usize,
    pub reachable: usize,
    pub findings: Vec<AuditFinding>,
}

/// Runs every audit pass over the workspace at `root`, loading sources
/// through the shared `SourceSet`.
pub fn run(root: &Path, sources: &mut SourceSet) -> Result<Audit, ParseError> {
    let graph = callgraph::build(root, sources)?;

    // Resolve seeds; an unresolvable seed is tooling rot, not a finding.
    let mut seed_ids = Vec::new();
    for (file, impl_type, name) in SEEDS {
        let ids = graph.resolve_named(file, Some(impl_type), name);
        if ids.is_empty() {
            return Err(ParseError {
                file: (*file).into(),
                line: 1,
                detail: format!(
                    "audit seed `{impl_type}::{name}` not found in {file} — update \
                     `audit::SEEDS` to follow the code"
                ),
            });
        }
        seed_ids.extend(ids);
    }
    let reached = graph.reachable(&seed_ids);

    let mut findings = reachability_findings(root, sources, &graph, &reached)?;
    findings.extend(sync_findings(root, sources)?);
    findings.extend(redundancy_findings(root, sources, &graph, &reached)?);
    findings.sort_by(|a, b| a.key().cmp(&b.key()).then(a.line.cmp(&b.line)));

    Ok(Audit { nodes: graph.nodes.len(), reachable: reached.len(), findings })
}

/// Loads the (already cached) source file backing a graph node.
fn node_source<'s>(
    root: &Path,
    sources: &'s mut SourceSet,
    node: &FnNode,
) -> Result<&'s crate::parse::SourceFile, ParseError> {
    sources.load(&root.join(&node.file)).map_err(|e| ParseError {
        file: node.file.clone(),
        line: node.line,
        detail: format!("cannot reload file: {e}"),
    })
}

/// Pass 1: needle scan over every reachable function body.
fn reachability_findings(
    root: &Path,
    sources: &mut SourceSet,
    graph: &CallGraph,
    reached: &BTreeMap<usize, Option<usize>>,
) -> Result<Vec<AuditFinding>, ParseError> {
    let passes: &[(&'static str, &[(&str, &str)])] = &[
        ("alloc", ALLOC_NEEDLES),
        ("panic", PANIC_NEEDLES),
        ("wallclock", WALLCLOCK_NEEDLES),
        ("hash", HASH_NEEDLES),
    ];
    let mut out = Vec::new();
    for &id in reached.keys() {
        let node = &graph.nodes[id];
        let chain = graph.chain(reached, id);
        let sf = node_source(root, sources, node)?;
        for (kind, needles) in passes {
            for (needle, what) in *needles {
                push_needle_finding(&mut out, sf, node, kind, needle, what, &chain);
            }
        }
        if hotpath::DIRECTORY_FILES
            .iter()
            .any(|f| node.file.to_string_lossy().ends_with(f))
        {
            for needle in SCAN_NEEDLES {
                push_needle_finding(
                    &mut out,
                    sf,
                    node,
                    "scan",
                    needle,
                    "linear scan over directory state",
                    &chain,
                );
            }
        }
    }
    Ok(out)
}

/// Counts bounded occurrences of `needle` in the node's body and pushes
/// one aggregated finding when the count is nonzero.
fn push_needle_finding(
    out: &mut Vec<AuditFinding>,
    sf: &crate::parse::SourceFile,
    node: &FnNode,
    kind: &'static str,
    needle: &str,
    what: &str,
    chain: &str,
) {
    let masked = sf.masked();
    let (open, close) = node.body;
    let text = std::str::from_utf8(&masked[open..close]).unwrap_or_default();
    let word_start = needle.bytes().next().is_some_and(|c| c.is_ascii_alphabetic());
    let mut count = 0;
    let mut first_at = 0;
    let mut from = 0;
    while let Some(p) = text[from..].find(needle) {
        let at = from + p;
        from = at + 1;
        // Word boundary for bare-word needles: `debug_assert!` must not
        // match `assert!`, `FxHashMap` must not match `HashMap`.
        if word_start {
            let prev = text[..at].bytes().last();
            if prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                continue;
            }
        }
        if count == 0 {
            first_at = open + at;
        }
        count += 1;
    }
    if count > 0 {
        out.push(AuditFinding {
            kind,
            file: node.file.to_string_lossy().into_owned(),
            func: node.qualified(),
            needle: needle.to_string(),
            detail: format!("{what}, reachable via {chain}"),
            line: line_of(&sf.text, first_at),
            count,
        });
    }
}

/// Pass 2: unjustified synchronization sites in the concurrency
/// kernels. A site is any `Ordering::` use or `Mutex`/`Condvar`/
/// `Atomic*` construction outside test code; it is justified when its
/// line, or the contiguous `//` comment block directly above it,
/// contains a `sync:` tag.
fn sync_findings(
    root: &Path,
    sources: &mut SourceSet,
) -> Result<Vec<AuditFinding>, ParseError> {
    let mut files = Vec::new();
    for kernel in SYNC_KERNELS {
        let path = root.join(kernel);
        if path.is_dir() {
            walk_rs(&path, &mut files).map_err(|e| ParseError {
                file: path.clone(),
                line: 1,
                detail: format!("cannot walk sync kernel: {e}"),
            })?;
        } else {
            files.push(path);
        }
    }
    files.sort();

    let mut out = Vec::new();
    for file in files {
        let sf = sources.load(&file).map_err(|e| ParseError {
            file: file.clone(),
            line: 1,
            detail: format!("cannot read file: {e}"),
        })?;
        let lines: Vec<&str> = sf.text.lines().collect();
        // construct → (first unjustified line, unjustified count)
        let mut sites: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for at in occurrences(sf.masked(), "Ordering::", sf.skip()) {
            // The ordering name itself keys the finding, so weakening a
            // blessed `SeqCst` to `Relaxed` cannot hide inside a count.
            let rest = &sf.text[at + "Ordering::".len()..];
            let name: String =
                rest.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
            record_sync_site(&mut sites, &lines, &sf.text, &format!("Ordering::{name}"), at);
        }
        for needle in SYNC_CTOR_NEEDLES {
            for at in occurrences(sf.masked(), needle, sf.skip()) {
                record_sync_site(&mut sites, &lines, &sf.text, needle.trim_end_matches('('), at);
            }
        }
        let rel = sf.path.to_string_lossy().into_owned();
        for (construct, (line, count)) in sites {
            out.push(AuditFinding {
                kind: "sync",
                file: rel.clone(),
                func: String::new(),
                needle: construct.clone(),
                detail: format!(
                    "`{construct}` site without a `// sync:` justification — document \
                     why the ordering/primitive is correct on the same line or in the \
                     comment block above"
                ),
                line,
                count,
            });
        }
    }
    Ok(out)
}

/// Records one sync site into the per-file aggregation if unjustified.
fn record_sync_site(
    sites: &mut BTreeMap<String, (usize, usize)>,
    lines: &[&str],
    source: &str,
    construct: &str,
    at: usize,
) {
    let line = line_of(source, at);
    if sync_justified(lines, line) {
        return;
    }
    let entry = sites.entry(construct.to_string()).or_insert((line, 0));
    entry.1 += 1;
}

/// Is the sync site on 1-based `line` justified by a `sync:` tag?
fn sync_justified(lines: &[&str], line: usize) -> bool {
    let idx = line.saturating_sub(1);
    if lines.get(idx).is_some_and(|l| l.contains("// sync:")) {
        return true;
    }
    // Walk the contiguous comment block directly above.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = lines[i].trim_start();
        if trimmed.starts_with("//") {
            if trimmed.contains("sync:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Pass 3: manual hot annotations superseded by reachability. Checks
/// every audited crate's `HOTPATH.txt` entries and `#[hot]` attributes
/// against the reachable set.
fn redundancy_findings(
    root: &Path,
    sources: &mut SourceSet,
    graph: &CallGraph,
    reached: &BTreeMap<usize, Option<usize>>,
) -> Result<Vec<AuditFinding>, ParseError> {
    let mut out = Vec::new();
    for krate in callgraph::AUDITED_CRATES {
        let crate_dir = root.join("crates").join(krate);
        // Manifest entries naming reachable functions.
        let manifest = hotpath::manifest(&crate_dir).map_err(|e| ParseError {
            file: crate_dir.join("HOTPATH.txt"),
            line: 1,
            detail: format!("cannot read manifest: {e}"),
        })?;
        for (file, fn_name, line) in manifest.entries() {
            let suffix = Path::new(krate).join(file);
            let ids = graph.resolve_named(&suffix.to_string_lossy(), None, fn_name);
            if ids.iter().any(|id| reached.contains_key(id)) {
                out.push(AuditFinding {
                    kind: "redundant",
                    file: format!("crates/{krate}/HOTPATH.txt"),
                    func: format!("{}::{fn_name}", file.display()),
                    needle: "manifest".into(),
                    detail: format!(
                        "HOTPATH.txt entry `{}::{fn_name}` is redundant — the function \
                         is reachable from the audit seeds, so `cargo xtask audit` \
                         already enforces its purity; delete the entry",
                        file.display()
                    ),
                    line,
                    count: 1,
                });
            }
        }
        // `#[hot]` attributes on reachable functions.
        for (id, node) in graph.nodes.iter().enumerate() {
            if node.krate != *krate || !reached.contains_key(&id) {
                continue;
            }
            let sf = node_source(root, sources, node)?;
            let attr_ends = hotpath::hot_attr_ends(sf.masked(), sf.skip());
            let marked = attr_ends.iter().any(|end| {
                *end <= node.fn_kw
                    && !sf
                        .fn_bodies()
                        .iter()
                        .any(|other| other.fn_kw > *end && other.fn_kw < node.fn_kw)
            });
            if marked {
                out.push(AuditFinding {
                    kind: "redundant",
                    file: node.file.to_string_lossy().into_owned(),
                    func: node.qualified(),
                    needle: "#[hot]".into(),
                    detail: format!(
                        "`#[hot]` on `{}` is redundant — the function is reachable \
                         from the audit seeds; delete the attribute (and the \
                         `inpg-hot` dependency if it was the last use)",
                        node.qualified()
                    ),
                    line: node.line,
                    count: 1,
                });
            }
        }
    }
    Ok(out)
}

/// Serializes the audit to its canonical JSON artifact (byte-stable:
/// sorted findings, fixed key order, deterministic inputs).
pub fn report_json(audit: &Audit) -> Json {
    Json::obj(vec![
        ("schema", Json::Str("inpg.audit.v1".into())),
        ("nodes", Json::UInt(audit.nodes as u64)),
        ("reachable", Json::UInt(audit.reachable as u64)),
        (
            "seeds",
            Json::Arr(
                SEEDS
                    .iter()
                    .map(|(file, ty, name)| Json::Str(format!("{file}::{ty}::{name}")))
                    .collect(),
            ),
        ),
        (
            "findings",
            Json::Arr(
                audit
                    .findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("key", Json::Str(f.key())),
                            ("line", Json::UInt(f.line as u64)),
                            ("count", Json::UInt(f.count as u64)),
                            ("detail", Json::Str(f.detail.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The blessed baseline: finding key → blessed occurrence count.
pub struct Baseline {
    pub blessed: Vec<(String, u64)>,
}

/// Loads and validates the baseline file.
pub fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let json = inpg_campaign::json::parse(&text)
        .map_err(|e| format!("malformed baseline {}: {e}", path.display()))?;
    let schema = json.get("schema").and_then(Json::as_str);
    if schema != Some("inpg.audit_baseline.v1") {
        return Err(format!("baseline {} has unexpected schema {schema:?}", path.display()));
    }
    let mut blessed = Vec::new();
    if let Some(Json::Obj(entries)) = json.get("blessed") {
        for (key, count) in entries {
            let count = count
                .as_u64()
                .ok_or_else(|| format!("blessed[{key}] count must be an integer"))?;
            blessed.push((key.clone(), count));
        }
    }
    Ok(Baseline { blessed })
}

/// Serializes a baseline (used by `--bless`). Keys are sorted, so the
/// file is byte-stable for a given finding set.
pub fn baseline_json(audit: &Audit) -> Json {
    let mut blessed: Vec<(String, Json)> = audit
        .findings
        .iter()
        .map(|f| (f.key(), Json::UInt(f.count as u64)))
        .collect();
    blessed.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(vec![
        ("schema".into(), Json::Str("inpg.audit_baseline.v1".into())),
        ("blessed".into(), Json::Obj(blessed)),
    ])
}

/// Diffs the audit against the blessed baseline. Non-empty result fails
/// the run with exit 2.
pub fn validate(audit: &Audit, baseline: &Baseline) -> Vec<String> {
    let current: BTreeMap<String, u64> =
        audit.findings.iter().map(|f| (f.key(), f.count as u64)).collect();
    let blessed: BTreeMap<&str, u64> =
        baseline.blessed.iter().map(|(k, c)| (k.as_str(), *c)).collect();
    let mut out = Vec::new();
    for f in &audit.findings {
        match blessed.get(f.key().as_str()) {
            None => out.push(format!(
                "new: {} at {}:{} ({} occurrence(s)) — {}",
                f.key(),
                f.file,
                f.line,
                f.count,
                f.detail
            )),
            Some(b) if *b != f.count as u64 => out.push(format!(
                "count changed: {} — blessed {b}, now {} (at {}:{}); review the \
                 drift, then `cargo xtask audit --bless`",
                f.key(),
                f.count,
                f.file,
                f.line
            )),
            Some(_) => {}
        }
    }
    for (key, _) in &baseline.blessed {
        if !current.contains_key(key) {
            out.push(format!(
                "stale baseline entry: {key} — the finding no longer exists; \
                 `cargo xtask audit --bless` to drop it"
            ));
        }
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
