//! Property-based tests of the NoC: packet conservation, latency lower
//! bounds, and big-router bookkeeping under randomized traffic.

use inpg_noc::packet::{OpaquePayload, Sink, VirtualNetwork};
use inpg_noc::{BigRouterPlacement, Coord, FaultKind, FaultPlan, Message, Network, NocConfig};
use inpg_sim::{CoreId, Cycle};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TrafficCase {
    width: u8,
    height: u8,
    vc_depth: u8,
    big: bool,
    /// (src, dst, flits, inject_cycle)
    packets: Vec<(usize, usize, u8, u64)>,
}

fn traffic_case() -> impl Strategy<Value = TrafficCase> {
    (2u8..6, 2u8..6, 1u8..5, any::<bool>()).prop_flat_map(|(width, height, vc_depth, big)| {
        let nodes = width as usize * height as usize;
        let packet = (0..nodes, 0..nodes, prop_oneof![Just(1u8), Just(8u8)], 0u64..200);
        proptest::collection::vec(packet, 1..40).prop_map(move |packets| TrafficCase {
            width,
            height,
            vc_depth,
            big,
            packets,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected packet is delivered exactly once, to the right
    /// node, no earlier than the zero-load latency bound, and the
    /// network fully drains.
    #[test]
    fn packets_are_conserved_and_respect_latency_bounds(case in traffic_case()) {
        let cfg = NocConfig {
            width: case.width,
            height: case.height,
            vc_depth: case.vc_depth,
            placement: if case.big { BigRouterPlacement::Checkerboard } else { BigRouterPlacement::None },
            ..NocConfig::paper_default()
        };
        let mut network: Network<OpaquePayload> = Network::new(cfg).expect("valid config");
        let mut pending = case.packets.clone();
        pending.sort_by_key(|p| p.3);
        let mut expected: std::collections::HashMap<usize, usize> = Default::default();
        for &(_, dst, _, _) in &pending {
            *expected.entry(dst).or_default() += 1;
        }

        let mut now = Cycle::ZERO;
        let mut sent: Vec<(inpg_noc::PacketId, usize, usize, u64)> = Vec::new();
        let deadline = 40_000u64;
        let mut received = 0usize;
        let total = pending.len();
        let mut iter = pending.into_iter().peekable();
        while now.as_u64() < deadline && (received < total) {
            while iter.peek().is_some_and(|p| p.3 <= now.as_u64()) {
                let (src, dst, flits, _) = iter.next().expect("peeked");
                let id = network.send(now, Message {
                    src: CoreId::new(src),
                    dst: CoreId::new(dst),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::REQUEST,
                    flits,
                    priority: 0,
                    payload: OpaquePayload,
                });
                sent.push((id, src, dst, now.as_u64()));
            }
            network.tick(now);
            for node in 0..network.config().nodes() {
                while let Some(packet) = network.pop_delivered(CoreId::new(node)) {
                    received += 1;
                    let (_, src, dst, injected) = *sent
                        .iter()
                        .find(|(id, ..)| *id == packet.id)
                        .expect("delivered packet was sent");
                    prop_assert_eq!(dst, node, "delivered to the wrong node");
                    // Zero-load bound: at least 2 cycles per hop.
                    let hops = Coord::from_core(CoreId::new(src), case.width, case.height)
                        .hops_to(Coord::from_core(CoreId::new(dst), case.width, case.height));
                    let latency = now.as_u64() - injected;
                    prop_assert!(
                        latency >= 2 * hops as u64,
                        "latency {} below the {}-hop bound",
                        latency,
                        hops
                    );
                }
            }
            now = now.next();
        }
        prop_assert_eq!(received, total, "every packet must be delivered");
        prop_assert_eq!(network.in_flight(), 0, "network must drain");
        prop_assert_eq!(network.stats().delivered, total as u64);
    }

    /// Packet conservation survives seeded jitter fault injection: every
    /// packet is still delivered exactly once and every periodic
    /// invariant check passes, for any traffic pattern and any fault
    /// seed. Jitter only delays injection eligibility, so the network
    /// must degrade in latency, never in correctness.
    #[test]
    fn packets_conserved_under_random_jitter_faults(
        case in traffic_case(),
        fault_seed in any::<u64>(),
        max_extra in 1u64..48,
    ) {
        let cfg = NocConfig {
            width: case.width,
            height: case.height,
            vc_depth: case.vc_depth,
            placement: if case.big { BigRouterPlacement::Checkerboard } else { BigRouterPlacement::None },
            faults: FaultPlan::none()
                .seeded(fault_seed)
                .with(FaultKind::DelayJitter { max_extra }),
            ..NocConfig::paper_default()
        };
        let mut network: Network<OpaquePayload> = Network::new(cfg).expect("valid config");
        let mut pending = case.packets.clone();
        pending.sort_by_key(|p| p.3);
        let total = pending.len();
        let mut iter = pending.into_iter().peekable();
        let mut received = 0usize;
        let mut now = Cycle::ZERO;
        while now.as_u64() < 60_000 && received < total {
            while iter.peek().is_some_and(|p| p.3 <= now.as_u64()) {
                let (src, dst, flits, _) = iter.next().expect("peeked");
                network.send(now, Message {
                    src: CoreId::new(src),
                    dst: CoreId::new(dst),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::REQUEST,
                    flits,
                    priority: 0,
                    payload: OpaquePayload,
                });
            }
            network.tick(now);
            if now.as_u64().is_multiple_of(64) {
                if let Err(violation) = network.try_check_invariants() {
                    prop_assert!(false, "cycle {}: {violation}", now.as_u64());
                }
            }
            for node in 0..network.config().nodes() {
                while network.pop_delivered(CoreId::new(node)).is_some() {
                    received += 1;
                }
            }
            now = now.next();
        }
        prop_assert_eq!(received, total, "every packet delivered despite jitter");
        prop_assert_eq!(network.in_flight(), 0, "network must drain");
        if max_extra > 0 && total >= 10 {
            // With dozens of injections and nonzero jitter range, at
            // least one packet should statistically have been delayed.
            // (Not guaranteed per-seed, so only sanity-check the counter
            // is wired: it must never exceed the injection count.)
            prop_assert!(network.stats().jitter_delays <= network.stats().injected);
        }
        if let Err(violation) = network.try_check_invariants() {
            prop_assert!(false, "after drain: {violation}");
        }
    }

    /// With opaque payloads, big routers never generate packets, never
    /// install barriers, and never stop anything, at any mesh size.
    #[test]
    fn opaque_traffic_is_invisible_to_big_routers(case in traffic_case()) {
        let cfg = NocConfig {
            width: case.width,
            height: case.height,
            vc_depth: case.vc_depth,
            placement: BigRouterPlacement::All,
            ..NocConfig::paper_default()
        };
        let mut network: Network<OpaquePayload> = Network::new(cfg).expect("valid config");
        let mut now = Cycle::ZERO;
        for &(src, dst, flits, _) in &case.packets {
            network.send(now, Message {
                src: CoreId::new(src),
                dst: CoreId::new(dst),
                sink: Sink::NetworkInterface,
                vnet: VirtualNetwork::RESPONSE,
                flits,
                priority: 0,
                payload: OpaquePayload,
            });
        }
        for _ in 0..20_000 {
            if network.in_flight() == 0 {
                break;
            }
            network.tick(now);
            for node in 0..network.config().nodes() {
                while network.pop_delivered(CoreId::new(node)).is_some() {}
            }
            now = now.next();
        }
        prop_assert_eq!(network.in_flight(), 0);
        prop_assert_eq!(network.stats().generated_packets, 0);
        let b = network.barrier_stats();
        prop_assert_eq!(b.barriers_installed, 0);
        prop_assert_eq!(b.requests_stopped, 0);
    }
}

#[test]
fn credit_conservation_holds_every_cycle() {
    // Deterministic stress: hotspot + uniform traffic on the paper mesh,
    // invariants checked after every cycle.
    let mut network: Network<OpaquePayload> =
        Network::new(NocConfig::paper_default()).expect("valid config");
    let mut now = Cycle::ZERO;
    for cycle in 0..3_000u64 {
        if cycle % 40 == 0 {
            for src in 0..64usize {
                network.send(
                    now,
                    Message {
                        src: CoreId::new(src),
                        dst: CoreId::new(if src % 2 == 0 { 27 } else { (src * 13) % 64 }),
                        sink: Sink::NetworkInterface,
                        vnet: VirtualNetwork::new((src % 4) as u8),
                        flits: if src % 5 == 0 { 8 } else { 1 },
                        priority: (src % 9) as u8,
                        payload: OpaquePayload,
                    },
                );
            }
        }
        network.tick(now);
        network.check_invariants();
        for node in 0..64usize {
            while network.pop_delivered(CoreId::new(node)).is_some() {}
        }
        now = now.next();
    }
    // Drain and re-check.
    for _ in 0..30_000 {
        if network.in_flight() == 0 {
            break;
        }
        network.tick(now);
        for node in 0..64usize {
            while network.pop_delivered(CoreId::new(node)).is_some() {}
        }
        now = now.next();
    }
    network.check_invariants();
    assert_eq!(network.in_flight(), 0);
}
