//! End-to-end tests of big-router interception with a miniature
//! lock-aware payload, independent of the real coherence protocol.

use inpg_noc::packet::{EarlyAck, LockRequest, PacketGenPayload, Sink, VirtualNetwork};
use inpg_noc::{BigRouterPlacement, FaultKind, FaultPlan, Message, Network, NocConfig};
use inpg_sim::{Addr, CoreId, Cycle};

/// A toy protocol: lock GetX requests, invalidations, and acks.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TestMsg {
    LockGetx { addr: Addr, requester: CoreId, home: CoreId },
    FwdGetx { addr: Addr, requester: CoreId, home: CoreId },
    EarlyInv { addr: Addr, target: CoreId, home: CoreId, ack_router: CoreId },
    EarlyInvAck { addr: Addr, from: CoreId, home: CoreId, inv_sent_at: Cycle },
    RelayedAck { addr: Addr, from: CoreId },
}

impl PacketGenPayload for TestMsg {
    fn as_lock_request(&self) -> Option<LockRequest> {
        match *self {
            TestMsg::LockGetx { addr, requester, home } => {
                Some(LockRequest { addr, requester, home })
            }
            _ => None,
        }
    }

    fn as_early_ack(&self) -> Option<EarlyAck> {
        match *self {
            TestMsg::EarlyInvAck { addr, from, home, inv_sent_at } => {
                Some(EarlyAck { addr, from, home, inv_sent_at })
            }
            _ => None,
        }
    }

    fn early_inv(request: LockRequest, ack_router: CoreId, _now: Cycle) -> Self {
        TestMsg::EarlyInv {
            addr: request.addr,
            target: request.requester,
            home: request.home,
            ack_router,
        }
    }

    fn forwarded_getx(&self, _now: Cycle) -> Self {
        match *self {
            TestMsg::LockGetx { addr, requester, home } => {
                TestMsg::FwdGetx { addr, requester, home }
            }
            ref other => other.clone(),
        }
    }

    fn relayed_ack(ack: EarlyAck, _now: Cycle) -> Self {
        TestMsg::RelayedAck { addr: ack.addr, from: ack.from }
    }
}

fn getx(src: usize, home: usize, addr: u64) -> Message<TestMsg> {
    Message {
        src: CoreId::new(src),
        dst: CoreId::new(home),
        sink: Sink::NetworkInterface,
        vnet: VirtualNetwork::REQUEST,
        flits: 1,
        priority: 0,
        payload: TestMsg::LockGetx {
            addr: Addr::new(addr),
            requester: CoreId::new(src),
            home: CoreId::new(home),
        },
    }
}

/// Runs `network` for `cycles`, returning everything delivered as
/// `(cycle, dst, payload)` triples.
fn run(network: &mut Network<TestMsg>, cycles: u64) -> Vec<(u64, usize, TestMsg)> {
    let mut out = Vec::new();
    let mut now = Cycle::ZERO;
    for _ in 0..cycles {
        network.tick(now);
        for node in 0..network.config().nodes() {
            while let Some(p) = network.pop_delivered(CoreId::new(node)) {
                out.push((now.as_u64(), node, p.payload));
            }
        }
        now = now.next();
    }
    out
}

#[test]
fn all_big_single_getx_passes_untouched() {
    let cfg = NocConfig { placement: BigRouterPlacement::All, ..NocConfig::paper_default() };
    let mut network = Network::new(cfg).unwrap();
    network.send(Cycle::ZERO, getx(0, 63, 0x1000));
    let delivered = run(&mut network, 200);
    assert_eq!(delivered.len(), 1);
    assert!(matches!(delivered[0].2, TestMsg::LockGetx { .. }));
    assert_eq!(delivered[0].1, 63);
    // The single GetX installed barriers along its path but stopped nothing.
    assert!(network.barrier_stats().barriers_installed > 0);
    assert_eq!(network.barrier_stats().requests_stopped, 0);
}

#[test]
fn second_getx_on_same_path_is_stopped_and_early_invalidated() {
    // Two requesters on the same row as the home node, so their XY paths
    // share every router between the later requester and the home.
    let cfg = NocConfig { placement: BigRouterPlacement::All, ..NocConfig::paper_default() };
    let mut network = Network::new(cfg).unwrap();
    let home = 7; // (7,0)
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));
    let delivered = run(&mut network, 400);

    // Exactly one of the requesters loses and is early-invalidated.
    let invs: Vec<_> = delivered
        .iter()
        .filter(|(_, _, p)| matches!(p, TestMsg::EarlyInv { .. }))
        .collect();
    assert_eq!(invs.len(), 1, "one loser early-invalidated: {delivered:?}");
    let TestMsg::EarlyInv { addr, target, ack_router, .. } = invs[0].2.clone() else {
        unreachable!()
    };
    let loser = target.index();
    assert_eq!(invs[0].1, loser, "Inv delivered to the loser");
    assert_eq!(addr, Addr::new(0x2000));
    assert!(ack_router.index() < 8, "ack router on the shared row, got {ack_router}");
    let winner = if loser == 0 { 2 } else { 0 };

    // The home node receives the winner's GetX and the loser's FwdGetX.
    assert!(delivered
        .iter()
        .any(|(_, node, p)| *node == home
            && matches!(p, TestMsg::LockGetx { requester, .. } if requester.index() == winner)));
    assert!(delivered.iter().any(|(_, node, p)| *node == home
        && matches!(p, TestMsg::FwdGetx { requester, .. } if requester.index() == loser)));
    assert_eq!(network.barrier_stats().requests_stopped, 1);
}

#[test]
fn early_ack_is_relayed_to_home() {
    let cfg = NocConfig { placement: BigRouterPlacement::All, ..NocConfig::paper_default() };
    let mut network = Network::new(cfg).unwrap();
    let home = 7;
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));

    // Drive the network; when the loser receives the EarlyInv, answer it
    // with an EarlyInvAck addressed to the generating router.
    let mut now = Cycle::ZERO;
    let mut relayed = None;
    let mut loser = None;
    for _ in 0..600 {
        network.tick(now);
        for node in 0..64 {
            while let Some(p) = network.pop_delivered(CoreId::new(node)) {
                match p.payload {
                    TestMsg::EarlyInv { addr, target, home, ack_router } => {
                        assert_eq!(target.index(), node);
                        loser = Some(target);
                        network.send(
                            now,
                            Message {
                                src: target,
                                dst: ack_router,
                                sink: Sink::Router,
                                vnet: VirtualNetwork::RESPONSE,
                                flits: 1,
                                priority: 0,
                                payload: TestMsg::EarlyInvAck {
                                    addr,
                                    from: target,
                                    home,
                                    inv_sent_at: now,
                                },
                            },
                        );
                    }
                    TestMsg::RelayedAck { addr, from } => {
                        relayed = Some((node, addr, from));
                    }
                    _ => {}
                }
            }
        }
        now = now.next();
    }
    let (node, addr, from) = relayed.expect("relayed ack reached the home node");
    assert_eq!(node, home);
    assert_eq!(addr, Addr::new(0x2000));
    assert_eq!(Some(from), loser, "relayed ack names the early-invalidated core");
    assert_eq!(network.barrier_stats().acks_relayed, 1);
    assert_eq!(network.in_flight(), 0);
}

#[test]
fn no_big_routers_means_no_interception() {
    let mut network = Network::new(NocConfig::baseline()).unwrap();
    network.send(Cycle::ZERO, getx(0, 7, 0x2000));
    network.send(Cycle::new(6), getx(2, 7, 0x2000));
    let delivered = run(&mut network, 300);
    let getx_count = delivered
        .iter()
        .filter(|(_, node, p)| *node == 7 && matches!(p, TestMsg::LockGetx { .. }))
        .count();
    assert_eq!(getx_count, 2, "both GetX reach home untouched");
    assert_eq!(network.stats().generated_packets, 0);
}

#[test]
fn getx_ejecting_at_home_router_is_not_stopped() {
    // A big router at the home node must not intercept requests that are
    // about to eject there; arbitration happens at the home node itself.
    let cfg = NocConfig { placement: BigRouterPlacement::All, ..NocConfig::paper_default() };
    let mut network = Network::new(cfg).unwrap();
    let home = 9;
    // Both requesters are direct neighbours of home; their only shared
    // router is the home router itself (one hop each).
    network.send(Cycle::ZERO, getx(8, home, 0x3000));
    network.send(Cycle::ZERO, getx(10, home, 0x3000));
    let delivered = run(&mut network, 300);
    let getx_count = delivered
        .iter()
        .filter(|(_, node, p)| {
            *node == home && matches!(p, TestMsg::LockGetx { .. } | TestMsg::FwdGetx { .. })
        })
        .count();
    // Neither may be converted: both must arrive as original GetX.
    let fwd_count = delivered
        .iter()
        .filter(|(_, node, p)| *node == home && matches!(p, TestMsg::FwdGetx { .. }))
        .count();
    assert_eq!(getx_count, 2);
    assert_eq!(fwd_count, 0);
}

#[test]
fn barrier_table_size_one_still_works() {
    let cfg = NocConfig {
        placement: BigRouterPlacement::All,
        barrier_entries: 1,
        ..NocConfig::paper_default()
    };
    let mut network = Network::new(cfg).unwrap();
    // Two different locks from the same source row; table of 1 barrier
    // per router can hold only one of them at a time.
    network.send(Cycle::ZERO, getx(0, 7, 0x1000));
    network.send(Cycle::ZERO, getx(1, 7, 0x2000));
    network.send(Cycle::new(8), getx(2, 7, 0x1000));
    network.send(Cycle::new(8), getx(3, 7, 0x2000));
    let delivered = run(&mut network, 500);
    // Every request is accounted for at home: as GetX or FwdGetX.
    let at_home = delivered
        .iter()
        .filter(|(_, node, p)| {
            *node == 7 && matches!(p, TestMsg::LockGetx { .. } | TestMsg::FwdGetx { .. })
        })
        .count();
    assert_eq!(at_home, 4);
}

#[test]
fn ei_pool_exhaustion_fault_degrades_to_pass_through() {
    // With the EI pool clamped to zero, barriers install but can never
    // stop anything: every request must pass through to the home node
    // exactly as in a normal router.
    let cfg = NocConfig {
        placement: BigRouterPlacement::All,
        faults: FaultPlan::none().with(FaultKind::EiExhaust { capacity: 0 }),
        ..NocConfig::paper_default()
    };
    let mut network = Network::new(cfg).unwrap();
    let home = 7;
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));
    let delivered = run(&mut network, 400);

    let getx_count = delivered
        .iter()
        .filter(|(_, node, p)| *node == home && matches!(p, TestMsg::LockGetx { .. }))
        .count();
    assert_eq!(getx_count, 2, "both GetX pass through untouched: {delivered:?}");
    assert!(!delivered.iter().any(|(_, _, p)| matches!(p, TestMsg::EarlyInv { .. })));
    assert_eq!(network.barrier_stats().requests_stopped, 0);
    assert!(network.barrier_stats().barriers_installed > 0, "barriers still install");
    assert_eq!(network.in_flight(), 0, "network drains");
    network.check_invariants();
}

#[test]
fn drop_ack_fault_swallows_the_relay() {
    // The first observed invalidation acknowledgement is the loser's
    // early ack consumed at the big router: the drop-ack fault must
    // swallow it after bookkeeping, so no relay ever reaches the home
    // node and nothing leaks in the network.
    let cfg = NocConfig {
        placement: BigRouterPlacement::All,
        faults: FaultPlan::none().with(FaultKind::DropAck { nth: 1 }),
        ..NocConfig::paper_default()
    };
    let mut network = Network::new(cfg).unwrap();
    let home = 7;
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));

    let mut now = Cycle::ZERO;
    let mut relayed = 0;
    for _ in 0..600 {
        network.tick(now);
        for node in 0..64 {
            while let Some(p) = network.pop_delivered(CoreId::new(node)) {
                match p.payload {
                    TestMsg::EarlyInv { addr, target, home, ack_router } => {
                        network.send(
                            now,
                            Message {
                                src: target,
                                dst: ack_router,
                                sink: Sink::Router,
                                vnet: VirtualNetwork::RESPONSE,
                                flits: 1,
                                priority: 0,
                                payload: TestMsg::EarlyInvAck {
                                    addr,
                                    from: target,
                                    home,
                                    inv_sent_at: now,
                                },
                            },
                        );
                    }
                    TestMsg::RelayedAck { .. } => relayed += 1,
                    _ => {}
                }
            }
        }
        now = now.next();
    }
    assert_eq!(relayed, 0, "the dropped ack must never be relayed");
    assert_eq!(network.stats().acks_dropped_by_fault, 1);
    assert_eq!(network.in_flight(), 0, "the drop must not leak flits");
    network.check_invariants();
}

#[test]
fn barrier_off_fault_mid_run_still_relays_outstanding_acks() {
    // Disable and flush every barrier table *after* an interception is in
    // flight. The returning early-inv ack must still be consumed and
    // relayed to the home node (which deduplicates), not leaked —
    // otherwise the winner would wait forever.
    let cfg = NocConfig {
        placement: BigRouterPlacement::All,
        faults: FaultPlan::none().with(FaultKind::BarrierOff { at_cycle: 60 }),
        ..NocConfig::paper_default()
    };
    let mut network = Network::new(cfg).unwrap();
    let home = 7;
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));

    let mut now = Cycle::ZERO;
    let mut relayed = 0;
    let mut pending_ack: Option<Message<TestMsg>> = None;
    for _ in 0..600 {
        // Hold the loser's ack until after the fault has fired, so the
        // table state it matched is guaranteed gone.
        if now.as_u64() == 100 {
            if let Some(ack) = pending_ack.take() {
                network.send(now, ack);
            }
        }
        network.tick(now);
        for node in 0..64 {
            while let Some(p) = network.pop_delivered(CoreId::new(node)) {
                match p.payload {
                    TestMsg::EarlyInv { addr, target, home, ack_router } => {
                        pending_ack = Some(Message {
                            src: target,
                            dst: ack_router,
                            sink: Sink::Router,
                            vnet: VirtualNetwork::RESPONSE,
                            flits: 1,
                            priority: 0,
                            payload: TestMsg::EarlyInvAck {
                                addr,
                                from: target,
                                home,
                                inv_sent_at: now,
                            },
                        });
                    }
                    TestMsg::RelayedAck { .. } => relayed += 1,
                    _ => {}
                }
            }
        }
        now = now.next();
    }
    assert_eq!(relayed, 1, "stale ack still relayed to the home node");
    assert_eq!(network.barrier_stats().stale_acks_dropped, 1);
    assert_eq!(network.in_flight(), 0, "no packet leaked by the flush");
    network.check_invariants();
}

#[test]
fn ttl_storm_while_ei_live_preserves_the_ack_relay() {
    // A TTL-expiry storm must not kill barriers that are pinned by a live
    // early-invalidation entry: the loser's ack is still matched and
    // relayed, and only afterwards does the barrier expire.
    let cfg = NocConfig {
        placement: BigRouterPlacement::All,
        faults: FaultPlan::none().with(FaultKind::TtlStorm { at_cycle: 50 }),
        ..NocConfig::paper_default()
    };
    let mut network = Network::new(cfg).unwrap();
    let home = 7;
    network.send(Cycle::ZERO, getx(0, home, 0x2000));
    network.send(Cycle::ZERO, getx(2, home, 0x2000));

    let mut now = Cycle::ZERO;
    let mut relayed = 0;
    let mut pending_ack: Option<Message<TestMsg>> = None;
    for _ in 0..600 {
        // The ack returns at cycle 120, well after the storm at 50: the
        // EI entry alone keeps the barrier alive in between.
        if now.as_u64() == 120 {
            if let Some(ack) = pending_ack.take() {
                network.send(now, ack);
            }
        }
        network.tick(now);
        for node in 0..64 {
            while let Some(p) = network.pop_delivered(CoreId::new(node)) {
                match p.payload {
                    TestMsg::EarlyInv { addr, target, home, ack_router } => {
                        pending_ack = Some(Message {
                            src: target,
                            dst: ack_router,
                            sink: Sink::Router,
                            vnet: VirtualNetwork::RESPONSE,
                            flits: 1,
                            priority: 0,
                            payload: TestMsg::EarlyInvAck {
                                addr,
                                from: target,
                                home,
                                inv_sent_at: now,
                            },
                        });
                    }
                    TestMsg::RelayedAck { .. } => relayed += 1,
                    _ => {}
                }
            }
        }
        now = now.next();
    }
    assert_eq!(relayed, 1, "EI-pinned barrier matched and relayed the ack");
    assert_eq!(network.barrier_stats().acks_relayed, 1);
    assert_eq!(network.barrier_stats().stale_acks_dropped, 0);
    // After the ack drained the entry, the 1-cycle TTL expired the tables.
    assert!(network.barrier_stats().barriers_expired > 0);
    assert_eq!(network.in_flight(), 0);
    network.check_invariants();
}

#[test]
fn ocor_priority_wins_contended_arbitration() {
    // Two streams converge on the same output port; with OCOR
    // arbitration the high-priority stream must see a lower mean
    // latency than the low-priority one.
    let cfg = NocConfig { ocor_arbitration: true, ..NocConfig::baseline() };
    let mut network: Network<TestMsg> = Network::new(cfg).unwrap();
    let mut now = Cycle::ZERO;
    let mut hi_lat = Vec::new();
    let mut lo_lat = Vec::new();
    let mut hi_ids = std::collections::HashSet::new();
    for _ in 0..3000 {
        // Saturating cross traffic from two sources into node 7: the
        // shared path can carry only one flit per cycle, so the two
        // streams genuinely contend for every switch grant.
        if now.as_u64() < 1500 {
            let id = network.send(
                now,
                Message {
                    src: CoreId::new(0),
                    dst: CoreId::new(7),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::REQUEST,
                    flits: 1,
                    priority: 8,
                    payload: TestMsg::RelayedAck { addr: Addr::new(0), from: CoreId::new(0) },
                },
            );
            hi_ids.insert(id);
            network.send(
                now,
                Message {
                    src: CoreId::new(1),
                    dst: CoreId::new(7),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::REQUEST,
                    flits: 1,
                    priority: 0,
                    payload: TestMsg::RelayedAck { addr: Addr::new(0), from: CoreId::new(1) },
                },
            );
        }
        network.tick(now);
        while let Some(p) = network.pop_delivered(CoreId::new(7)) {
            let lat = now.as_u64() - p.injected_at.as_u64();
            if hi_ids.contains(&p.id) {
                hi_lat.push(lat);
            } else {
                lo_lat.push(lat);
            }
        }
        now = now.next();
    }
    assert!(!hi_lat.is_empty() && !lo_lat.is_empty());
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    assert!(
        mean(&hi_lat) + 10.0 < mean(&lo_lat),
        "priority-8 stream should clearly beat priority-0: {:.1} !< {:.1}",
        mean(&hi_lat),
        mean(&lo_lat)
    );
}
