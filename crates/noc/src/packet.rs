//! Packets, flits, virtual networks, and the payload interface through
//! which big routers understand (and generate) coherence traffic.

use crate::coord::Coord;
use inpg_sim::{Addr, CoreId, Cycle};
use std::fmt;

/// A unique packet identity, assigned at injection time by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet id from a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw sequence number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt {}", self.0)
    }
}

/// A virtual network. Different coherence message classes travel on
/// different virtual networks to break protocol deadlock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualNetwork(u8);

impl VirtualNetwork {
    /// Coherence requests (GetS / GetX / lock FwdGetX relays).
    pub const REQUEST: VirtualNetwork = VirtualNetwork(0);
    /// Directory-initiated forwards and invalidations.
    pub const FORWARD: VirtualNetwork = VirtualNetwork(1);
    /// Data and acknowledgement responses (always sinkable).
    pub const RESPONSE: VirtualNetwork = VirtualNetwork(2);
    /// OS-level messages (queue-spin-lock wakeup IPIs).
    pub const SYSTEM: VirtualNetwork = VirtualNetwork(3);

    /// Creates a virtual network from its index.
    pub const fn new(index: u8) -> Self {
        VirtualNetwork(index)
    }

    /// The dense index of this virtual network.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VirtualNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vnet {}", self.0)
    }
}

/// Where a packet terminates: the tile's network interface, or the router
/// itself (used by invalidation acknowledgements answering an *early*
/// invalidation that a big router generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// Deliver to the local network interface (core / cache controller).
    NetworkInterface,
    /// Consume inside the router's packet generator.
    Router,
}

/// A packet traversing the NoC.
///
/// `P` is the payload type; the coherence crate instantiates it with its
/// protocol message. Control messages occupy one flit, cache-block data
/// eight (Table 1 of the paper).
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Identity assigned at injection.
    pub id: PacketId,
    /// Source coordinate (tile or generating router).
    pub src: Coord,
    /// Destination coordinate.
    pub dst: Coord,
    /// Whether the packet terminates at the NI or inside the router.
    pub sink: Sink,
    /// Virtual network class.
    pub vnet: VirtualNetwork,
    /// Length in flits (1 for control, 8 for a cache block).
    pub flits: u8,
    /// OCOR arbitration priority; higher wins. 0 for non-OCOR traffic.
    pub priority: u8,
    /// Cycle the packet entered the network.
    pub injected_at: Cycle,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Number of flits in this packet.
    pub fn flit_count(&self) -> u8 {
        self.flits
    }
}

/// Fields a big router extracts from an interceptable exclusive lock
/// request (a `GetX` produced by an atomic read-modify-write on a lock
/// variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRequest {
    /// The lock variable's cache-block address.
    pub addr: Addr,
    /// The core whose L1 issued the request (and will be early-invalidated).
    pub requester: CoreId,
    /// The home node (L2 bank / directory) of the block.
    pub home: CoreId,
}

/// Fields extracted from an invalidation acknowledgement answering an
/// early invalidation, on its way back to the generating big router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarlyAck {
    /// The lock variable's cache-block address.
    pub addr: Addr,
    /// The core whose L1 acknowledged.
    pub from: CoreId,
    /// The home node of the block (relay destination).
    pub home: CoreId,
    /// When the early invalidation was generated; lets the evaluation
    /// measure the Inv–Ack round trip of Figure 10.
    pub inv_sent_at: Cycle,
}

/// The interface big routers use to understand and generate packets.
///
/// The NoC crate knows nothing about the coherence protocol; instead the
/// payload type teaches routers to (1) recognise interceptable lock
/// requests, (2) recognise acknowledgements to early invalidations, and
/// (3) fabricate the three packet kinds the paper's packet generator
/// emits: early `Inv`, converted `FwdGetX`, and the relayed `InvAck`.
pub trait PacketGenPayload: Clone + fmt::Debug {
    /// If this payload is an interceptable lock `GetX`, its fields.
    fn as_lock_request(&self) -> Option<LockRequest>;

    /// True when this payload carries an invalidation acknowledgement of
    /// any kind (direct, forwarded via the home node, or router-relayed).
    /// Routing never consults this; only the fault-injection harness
    /// does, to target ack traffic.
    fn is_inv_ack(&self) -> bool {
        false
    }

    /// If this payload acknowledges an early invalidation, its fields.
    fn as_early_ack(&self) -> Option<EarlyAck>;

    /// Builds the early-invalidation payload a big router sends to the
    /// losing requester's L1 at cycle `now`. `ack_router` is the tile id
    /// of the generating router, to which the L1 must address its
    /// acknowledgement (with [`Sink::Router`]).
    fn early_inv(request: LockRequest, ack_router: CoreId, now: Cycle) -> Self;

    /// Converts a stopped lock `GetX` into the `FwdGetX` relayed to the
    /// home node (which will queue it like the original request and knows
    /// the requester was early-invalidated). `now` is the stop cycle; the
    /// home node uses it to match the relayed request with the relayed
    /// acknowledgement of the same interception.
    fn forwarded_getx(&self, now: Cycle) -> Self;

    /// Builds the payload relaying a received early acknowledgement to
    /// the home node (the paper's `AckFwd` phase: destination rewritten
    /// to the home node's id). `now` is the cycle the acknowledgement
    /// reached the router, closing the early Inv–Ack round trip.
    fn relayed_ack(ack: EarlyAck, now: Cycle) -> Self;
}

/// A payload with no lock semantics; packets of this type are never
/// intercepted. Handy for NoC-only tests and traffic-pattern benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpaquePayload;

impl PacketGenPayload for OpaquePayload {
    fn as_lock_request(&self) -> Option<LockRequest> {
        None
    }

    fn as_early_ack(&self) -> Option<EarlyAck> {
        None
    }

    fn early_inv(_request: LockRequest, _ack_router: CoreId, _now: Cycle) -> Self {
        OpaquePayload
    }

    fn forwarded_getx(&self, _now: Cycle) -> Self {
        OpaquePayload
    }

    fn relayed_ack(_ack: EarlyAck, _now: Cycle) -> Self {
        OpaquePayload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vnet_constants_are_distinct() {
        let all = [
            VirtualNetwork::REQUEST,
            VirtualNetwork::FORWARD,
            VirtualNetwork::RESPONSE,
            VirtualNetwork::SYSTEM,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
            assert_eq!(all[i].index(), i);
        }
    }

    #[test]
    fn opaque_payload_is_never_intercepted() {
        assert!(OpaquePayload.as_lock_request().is_none());
        assert!(OpaquePayload.as_early_ack().is_none());
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(PacketId::new(12).to_string(), "pkt 12");
        assert_eq!(PacketId::new(12).as_u64(), 12);
    }
}
