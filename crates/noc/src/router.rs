//! Router micro-architecture: input-buffered virtual-channel router with a
//! 2-stage pipeline, plus the big-router packet generator attachment.
//!
//! Pipeline model: a flit that arrives in an input VC at cycle *t* becomes
//! eligible at *t + 1* (Route Computation, VC Allocation and Switch
//! Allocation happen in that stage, speculatively in parallel as in the
//! Peh–Dally router the paper baselines on); if it wins switch allocation
//! it traverses the switch and the output link in the same motion and
//! lands in the downstream input VC at the end of the cycle. An
//! uncontended hop therefore costs 2 cycles, matching the paper's 2-stage
//! pipelined router with single-cycle links.

use crate::barrier::LockingBarrierTable;
use crate::coord::{Coord, Port};
use crate::packet::{Packet, PacketGenPayload, PacketId};
use inpg_sim::Cycle;
use std::collections::{BTreeMap, VecDeque};

/// One flit in a buffer. The head flit carries the packet; body flits
/// carry only the packet identity for reassembly.
#[derive(Debug, Clone)]
pub(crate) struct Flit<P> {
    pub packet_id: PacketId,
    pub head: Option<Box<Packet<P>>>,
    pub tail: bool,
    /// First cycle this flit may compete for the switch.
    pub eligible_at: Cycle,
}

/// The output route assigned to the packet currently draining a VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OutRoute {
    pub port: Port,
    /// Downstream VC index; meaningless for local ejection.
    pub vc: usize,
}

/// One input virtual channel.
#[derive(Debug)]
pub(crate) struct InputVc<P> {
    pub flits: VecDeque<Flit<P>>,
    /// Route of the packet at the head of the queue, once computed.
    pub route: Option<OutRoute>,
}

impl<P> InputVc<P> {
    fn new() -> Self {
        InputVc { flits: VecDeque::new(), route: None }
    }

    /// Number of buffered flits.
    pub fn occupancy(&self) -> usize {
        self.flits.len()
    }
}

/// Where a switch-allocation candidate's flit lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlitSource {
    /// An input VC: (port index, vc index).
    Vc(usize, usize),
    /// The front of the packet generator's output queue.
    Generator,
}

/// One switch-allocation candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub source: FlitSource,
    pub out: OutRoute,
    /// True when the flit is a head flit that must claim the output VC.
    pub claims_vc: bool,
    pub priority: u8,
    /// Deterministic round-robin ordering key.
    pub order_key: usize,
}

/// Per-packet ejection reassembly state.
#[derive(Debug)]
pub(crate) struct EjectSlot<P> {
    pub packet: Box<Packet<P>>,
    pub flits_seen: u8,
}

/// One mesh router (normal or big).
#[derive(Debug)]
pub(crate) struct Router<P> {
    pub coord: Coord,
    /// Input VC buffers, indexed `[port][vc]`.
    pub inputs: Vec<Vec<InputVc<P>>>,
    /// Credits toward the downstream input VC on each output link,
    /// indexed `[port][vc]`. Entries for the local port are unused.
    pub out_credits: Vec<Vec<u8>>,
    /// Which packet currently owns each downstream VC.
    pub out_owner: Vec<Vec<Option<PacketId>>>,
    /// Packet generator output queue (big routers only; empty otherwise).
    pub gen_queue: VecDeque<Packet<P>>,
    /// Locking barrier table; `Some` iff this is a big router.
    pub barrier: Option<LockingBarrierTable>,
    /// Round-robin pointer per output port.
    pub rr: [usize; 5],
    /// In-progress ejection reassembly. Ordered so router state stays
    /// canonical — iteration order must not depend on hash seeds.
    pub eject: BTreeMap<PacketId, EjectSlot<P>>,
    /// Total flits buffered across all input VCs (fast-path check so the
    /// per-cycle sweep can skip idle routers).
    pub buffered: usize,
}

impl<P: PacketGenPayload> Router<P> {
    pub(crate) fn new(
        coord: Coord,
        vcs_per_port: usize,
        vc_depth: u8,
        barrier: Option<LockingBarrierTable>,
    ) -> Self {
        let inputs =
            (0..5).map(|_| (0..vcs_per_port).map(|_| InputVc::new()).collect()).collect();
        Router {
            coord,
            inputs,
            out_credits: (0..5).map(|_| vec![vc_depth; vcs_per_port]).collect(),
            out_owner: (0..5).map(|_| vec![None; vcs_per_port]).collect(),
            gen_queue: VecDeque::new(),
            barrier,
            rr: [0; 5],
            eject: BTreeMap::new(),
            buffered: 0,
        }
    }

    /// Whether this router carries a packet generator.
    pub(crate) fn is_big(&self) -> bool {
        self.barrier.is_some()
    }

    /// Picks a free downstream VC for a head flit of `vnet` on `port`:
    /// unowned and with at least one credit. Returns its index.
    pub(crate) fn allocate_vc(
        &self,
        port: Port,
        vnet: usize,
        vcs_per_vnet: usize,
    ) -> Option<usize> {
        let p = port.index();
        let base = vnet * vcs_per_vnet;
        (base..base + vcs_per_vnet)
            .find(|&vc| self.out_owner[p][vc].is_none() && self.out_credits[p][vc] > 0)
    }

    /// Deterministic round-robin winner selection for one output port.
    ///
    /// Highest priority wins when `by_priority` is set (OCOR); ties (and
    /// the non-OCOR case) fall to a cyclic round-robin over `order_key`.
    pub(crate) fn pick_winner(
        &mut self,
        out_port: Port,
        candidates: &[Candidate],
        by_priority: bool,
    ) -> Option<Candidate> {
        let p = out_port.index();
        let ptr = self.rr[p];
        // Cyclic distance from the round-robin pointer.
        let distance = |c: &Candidate| {
            let k = c.order_key;
            if k >= ptr { k - ptr } else { k + 1_000_000 - ptr }
        };
        let winner = if by_priority {
            let max = candidates.iter().map(|c| c.priority).max()?;
            candidates.iter().filter(|c| c.priority == max).copied().min_by_key(distance)?
        } else {
            candidates.iter().copied().min_by_key(distance)?
        };
        self.rr[p] = winner.order_key + 1;
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::OpaquePayload;

    fn router() -> Router<OpaquePayload> {
        Router::new(Coord::new(0, 0), 8, 4, None)
    }

    fn cand(order_key: usize, priority: u8) -> Candidate {
        Candidate {
            source: FlitSource::Vc(0, order_key),
            out: OutRoute { port: Port::Local, vc: 0 },
            claims_vc: false,
            priority,
            order_key,
        }
    }

    #[test]
    fn allocate_vc_respects_vnet_partition() {
        let mut r = router();
        // vnet 1 with 2 VCs per vnet owns VCs 2 and 3.
        assert_eq!(r.allocate_vc(Port::Local, 1, 2), Some(2));
        r.out_owner[Port::Local.index()][2] = Some(PacketId::new(1));
        assert_eq!(r.allocate_vc(Port::Local, 1, 2), Some(3));
        r.out_credits[Port::Local.index()][3] = 0;
        assert_eq!(r.allocate_vc(Port::Local, 1, 2), None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut r = router();
        let cands = vec![cand(0, 0), cand(1, 0), cand(2, 0)];
        let w1 = r.pick_winner(Port::Local, &cands, false).unwrap();
        assert_eq!(w1.order_key, 0);
        let w2 = r.pick_winner(Port::Local, &cands, false).unwrap();
        assert_eq!(w2.order_key, 1);
        let w3 = r.pick_winner(Port::Local, &cands, false).unwrap();
        assert_eq!(w3.order_key, 2);
        let w4 = r.pick_winner(Port::Local, &cands, false).unwrap();
        assert_eq!(w4.order_key, 0, "wraps around");
    }

    #[test]
    fn priority_beats_round_robin_when_enabled() {
        let mut r = router();
        let cands = vec![cand(0, 1), cand(1, 5), cand(2, 3)];
        let w = r.pick_winner(Port::Local, &cands, true).unwrap();
        assert_eq!(w.order_key, 1, "highest OCOR priority wins");
        // Without OCOR arbitration, round-robin ignores priority.
        let w = r.pick_winner(Port::Local, &cands, false).unwrap();
        assert_eq!(w.order_key, 2, "rr pointer advanced past 1");
    }

    #[test]
    fn priority_ties_fall_to_round_robin() {
        let mut r = router();
        let cands = vec![cand(0, 5), cand(3, 5), cand(7, 2)];
        let w1 = r.pick_winner(Port::Local, &cands, true).unwrap();
        assert_eq!(w1.order_key, 0);
        let w2 = r.pick_winner(Port::Local, &cands, true).unwrap();
        assert_eq!(w2.order_key, 3);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut r = router();
        assert!(r.pick_winner(Port::Local, &[], false).is_none());
    }
}
