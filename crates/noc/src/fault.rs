//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] rides inside [`NocConfig`](crate::NocConfig) and tells
//! the network to misbehave in controlled, reproducible ways: delay
//! jitter on injected packets, disabling or flushing the locking barrier
//! tables mid-run, forcing TTL-expiry storms, shrinking the shared EI
//! pool, or dropping relayed early-invalidation acknowledgements. The
//! watchdog / invariant-checker layers and the graceful-degradation tests
//! use these to prove the simulator fails loudly (or degrades to
//! pass-through) instead of hanging silently.
//!
//! All randomness is derived from the plan's seed with a SplitMix64
//! stream, so a faulty run replays cycle for cycle.

use std::fmt;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Adds a pseudo-random `0..=max_extra` cycle delay to every injected
    /// packet's first switch-allocation eligibility.
    DelayJitter {
        /// Largest extra delay, in cycles.
        max_extra: u64,
    },
    /// At `at_cycle`, flushes every locking barrier table and disables
    /// interception for the rest of the run. Outstanding early-inv acks
    /// are still consumed and relayed (the tables degrade to
    /// pass-through; they must not leak router-sink packets).
    BarrierOff {
        /// Cycle the tables go dark.
        at_cycle: u64,
    },
    /// At `at_cycle`, forces every live barrier's TTL to one cycle so the
    /// whole population expires as soon as its EI entries drain.
    TtlStorm {
        /// Cycle the storm hits.
        at_cycle: u64,
    },
    /// Clamps every barrier table's early-invalidation pool to at most
    /// `capacity` entries from the start of the run (0 = no EI entries at
    /// all: every competing request passes through).
    EiExhaust {
        /// Pool size ceiling.
        capacity: usize,
    },
    /// Silently drops the `nth` (1-based) invalidation acknowledgement
    /// the network observes: early acks consumed by big routers and
    /// `InvAck`/`RelayedInvAck` packets arriving at their destination
    /// both count. The drop fires once; recovery retransmissions are not
    /// re-dropped. Without recovery, losing the ack wedges the lock
    /// winner — the invariant checker and watchdog must catch it.
    DropAck {
        /// Which observed ack to drop, counting from 1.
        nth: u64,
    },
    /// Silently drops the `nth` (1-based) REQUEST-class packet at
    /// injection — a transient link loss swallowing a request before it
    /// enters the mesh. Fires once.
    LinkDrop {
        /// Which injected request packet to drop, counting from 1.
        nth: u64,
    },
    /// At `at_cycle`, permanently fails every big router's barrier
    /// table: tables are flushed and the routers degrade to pass-through
    /// (Original behaviour) for the rest of the run.
    RouterFail {
        /// Cycle the routers fail.
        at_cycle: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DelayJitter { max_extra } => write!(f, "jitter:{max_extra}"),
            FaultKind::BarrierOff { at_cycle } => write!(f, "barrier-off:{at_cycle}"),
            FaultKind::TtlStorm { at_cycle } => write!(f, "ttl-storm:{at_cycle}"),
            FaultKind::EiExhaust { capacity } => write!(f, "ei-exhaust:{capacity}"),
            FaultKind::DropAck { nth } => write!(f, "drop-ack:{nth}"),
            FaultKind::LinkDrop { nth } => write!(f, "link-drop:{nth}"),
            FaultKind::RouterFail { at_cycle } => write!(f, "router-fail:{at_cycle}"),
        }
    }
}

impl FaultKind {
    /// Parses one `kind:value` fault specification (the `--fault` CLI
    /// syntax): `jitter:<max>`, `barrier-off:<cycle>`, `ttl-storm:<cycle>`,
    /// `ei-exhaust:<capacity>`, `drop-ack:<nth>`, `link-drop:<nth>`,
    /// `router-fail:<cycle>`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the bad spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, value) =
            spec.split_once(':').ok_or_else(|| format!("fault spec `{spec}` needs `kind:value`"))?;
        let number = |what: &str| -> Result<u64, String> {
            value.parse::<u64>().map_err(|_| format!("bad {what} `{value}` in fault `{spec}`"))
        };
        match kind {
            "jitter" => Ok(FaultKind::DelayJitter { max_extra: number("max delay")? }),
            "barrier-off" => Ok(FaultKind::BarrierOff { at_cycle: number("cycle")? }),
            "ttl-storm" => Ok(FaultKind::TtlStorm { at_cycle: number("cycle")? }),
            "ei-exhaust" => Ok(FaultKind::EiExhaust { capacity: number("capacity")? as usize }),
            "drop-ack" => {
                let nth = number("ack index")?;
                if nth == 0 {
                    return Err(format!("drop-ack index is 1-based, got 0 in `{spec}`"));
                }
                Ok(FaultKind::DropAck { nth })
            }
            "link-drop" => {
                let nth = number("packet index")?;
                if nth == 0 {
                    return Err(format!("link-drop index is 1-based, got 0 in `{spec}`"));
                }
                Ok(FaultKind::LinkDrop { nth })
            }
            "router-fail" => Ok(FaultKind::RouterFail { at_cycle: number("cycle")? }),
            other => Err(format!("unknown fault kind `{other}` in `{spec}`")),
        }
    }
}

/// A deterministic fault-injection schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the jitter stream.
    pub seed: u64,
    /// The faults to inject.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults; the network behaves normally).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds one fault to the plan (builder style).
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// Sets the jitter seed (builder style).
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured jitter bound, if any.
    pub fn jitter_max(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::DelayJitter { max_extra } => Some(*max_extra),
            _ => None,
        })
    }

    /// The configured barrier-off cycle, if any.
    pub fn barrier_off_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::BarrierOff { at_cycle } => Some(*at_cycle),
            _ => None,
        })
    }

    /// The configured TTL-storm cycle, if any.
    pub fn ttl_storm_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::TtlStorm { at_cycle } => Some(*at_cycle),
            _ => None,
        })
    }

    /// The configured EI-pool ceiling, if any.
    pub fn ei_capacity_clamp(&self) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::EiExhaust { capacity } => Some(*capacity),
            _ => None,
        })
    }

    /// The configured dropped-ack ordinal, if any.
    pub fn drop_ack_nth(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::DropAck { nth } => Some(*nth),
            _ => None,
        })
    }

    /// The configured link-drop ordinal, if any.
    pub fn link_drop_nth(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::LinkDrop { nth } => Some(*nth),
            _ => None,
        })
    }

    /// The configured router-failure cycle, if any.
    pub fn router_fail_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::RouterFail { at_cycle } => Some(*at_cycle),
            _ => None,
        })
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return f.write_str("none");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        for spec in [
            "jitter:8",
            "barrier-off:5000",
            "ttl-storm:300",
            "ei-exhaust:0",
            "drop-ack:3",
            "link-drop:2",
            "router-fail:400",
        ] {
            let fault = FaultKind::parse(spec).expect(spec);
            assert_eq!(fault.to_string(), spec);
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultKind::parse("jitter").is_err(), "missing value");
        assert!(FaultKind::parse("jitter:lots").is_err(), "non-numeric");
        assert!(FaultKind::parse("gamma-ray:1").is_err(), "unknown kind");
        assert!(FaultKind::parse("drop-ack:0").is_err(), "1-based ordinal");
        assert!(FaultKind::parse("link-drop:0").is_err(), "1-based ordinal");
    }

    #[test]
    fn plan_accessors_find_their_kind() {
        let plan = FaultPlan::none()
            .seeded(42)
            .with(FaultKind::DelayJitter { max_extra: 6 })
            .with(FaultKind::DropAck { nth: 2 });
        assert_eq!(plan.jitter_max(), Some(6));
        assert_eq!(plan.drop_ack_nth(), Some(2));
        assert_eq!(plan.barrier_off_at(), None);
        assert_eq!(plan.link_drop_nth(), None);
        assert_eq!(plan.router_fail_at(), None);
        assert_eq!(plan.to_string(), "jitter:6,drop-ack:2");
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().to_string(), "none");
        let plan = plan
            .with(FaultKind::LinkDrop { nth: 1 })
            .with(FaultKind::RouterFail { at_cycle: 9 });
        assert_eq!(plan.link_drop_nth(), Some(1));
        assert_eq!(plan.router_fail_at(), Some(9));
    }
}
