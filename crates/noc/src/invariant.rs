//! Typed invariant violations the network's self-checks can report.

use crate::coord::Coord;
use inpg_sim::Addr;
use std::fmt;

/// One violated network invariant, with enough identity to find the
/// culprit (router coordinate, VC, packet counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocViolation {
    /// The number of packets actually present in the network (inject
    /// queues, VC buffers, generator queues, ejection reassembly) does not
    /// match `injected + generated - delivered - consumed`.
    PacketConservation {
        /// Packets counted by walking every buffer.
        counted: u64,
        /// Packets the counters say should be in flight.
        expected: u64,
    },
    /// A router's cached buffered-flit counter disagrees with its buffers.
    BufferAccounting {
        /// Router coordinate.
        router: Coord,
        /// The cached counter.
        counter: usize,
        /// Flits actually buffered.
        actual: usize,
    },
    /// Credits plus downstream occupancy no longer equal the VC depth.
    CreditConservation {
        /// Upstream router coordinate.
        router: Coord,
        /// Output port direction name.
        port: &'static str,
        /// Virtual channel index.
        vc: usize,
        /// Credits held upstream.
        credits: usize,
        /// Flits buffered downstream.
        occupancy: usize,
        /// Configured VC depth.
        depth: usize,
    },
    /// A live barrier-table entry has an out-of-range TTL (zero, or above
    /// the configured default — entries must expire, and must never be
    /// refreshed beyond the reset value).
    BarrierTtl {
        /// Big router coordinate.
        router: Coord,
        /// Lock block address of the barrier.
        addr: Addr,
        /// The entry's TTL.
        ttl: u32,
        /// The configured reset TTL.
        max: u32,
    },
}

impl fmt::Display for NocViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocViolation::PacketConservation { counted, expected } => write!(
                f,
                "packet conservation: {counted} packets found in buffers but counters \
                 imply {expected} in flight"
            ),
            NocViolation::BufferAccounting { router, counter, actual } => write!(
                f,
                "router {router}: buffered counter {counter} != {actual} flits actually buffered"
            ),
            NocViolation::CreditConservation { router, port, vc, credits, occupancy, depth } => {
                write!(
                    f,
                    "credit leak at router {router} port {port} vc {vc}: {credits} credits + \
                     {occupancy} buffered != depth {depth}"
                )
            }
            NocViolation::BarrierTtl { router, addr, ttl, max } => write!(
                f,
                "barrier TTL out of range at big router {router}: lock {addr} has ttl {ttl} \
                 (valid range 1..={max})"
            ),
        }
    }
}

impl std::error::Error for NocViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_culprit() {
        let v = NocViolation::BarrierTtl {
            router: Coord::new(2, 3),
            addr: Addr::new(0x400),
            ttl: 0,
            max: 128,
        };
        let text = v.to_string();
        assert!(text.contains("(2, 3)") || text.contains("2,3") || text.contains("2, 3"));
        assert!(text.contains("ttl 0"));
    }
}
