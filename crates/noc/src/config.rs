//! NoC configuration: mesh geometry, buffering, and big-router deployment.

use crate::coord::Coord;
use crate::fault::FaultPlan;
use inpg_sim::ConfigError;

/// How big routers are distributed over the mesh.
///
/// The paper's default (Figure 3) deploys one big router between every two
/// normal routers — 32 big routers on the 8×8 mesh. Figure 14 sweeps the
/// count from 0 to 64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BigRouterPlacement {
    /// No big routers: the Original / OCOR baselines.
    None,
    /// A checkerboard pattern: a router at `(x, y)` is big when
    /// `(x + y)` is odd — one big router interleaved with every normal
    /// router, the paper's default deployment.
    #[default]
    Checkerboard,
    /// Every router is big (the paper's 64-big-router point).
    All,
    /// `count` big routers spread evenly over the mesh in row-major
    /// order (the paper's 4- and 16-router points in Figure 14).
    Spread(usize),
}

impl BigRouterPlacement {
    /// Whether the router at `coord` is big under this placement.
    pub fn is_big(self, coord: Coord, width: u8, height: u8) -> bool {
        match self {
            BigRouterPlacement::None => false,
            BigRouterPlacement::Checkerboard => (coord.x() + coord.y()) % 2 == 1,
            BigRouterPlacement::All => true,
            BigRouterPlacement::Spread(count) => {
                let total = width as usize * height as usize;
                if count == 0 {
                    return false;
                }
                if count >= total {
                    return true;
                }
                // Spread evenly in row-major order: position `idx` hosts a
                // big router iff the cumulative quota floor((idx+1)·count/total)
                // increments there, which selects exactly `count` positions.
                let idx = coord.y() as usize * width as usize + coord.x() as usize;
                ((idx + 1) * count) / total > (idx * count) / total
            }
        }
    }

    /// Number of big routers this placement yields on a mesh.
    pub fn count(self, width: u8, height: u8) -> usize {
        let mut n = 0;
        for y in 0..height {
            for x in 0..width {
                if self.is_big(Coord::new(x, y), width, height) {
                    n += 1;
                }
            }
        }
        n
    }
}

/// Static NoC parameters.
///
/// Defaults follow Table 1 of the paper: an 8×8 mesh, XY routing,
/// 2-stage pipelined routers, 4 virtual networks, 4-flit VC buffers,
/// 128-bit links (one cache block = one 8-flit packet, one control
/// message = one single-flit packet), checkerboard big-router deployment
/// and a 16-entry locking barrier table with a 128-cycle TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: u8,
    /// Mesh height (rows).
    pub height: u8,
    /// Number of virtual networks (message classes).
    pub vnets: u8,
    /// Virtual channels per virtual network per port.
    pub vcs_per_vnet: u8,
    /// Buffer depth of each VC, in flits.
    pub vc_depth: u8,
    /// Flits in a data (cache-block) packet.
    pub data_flits: u8,
    /// Big router deployment pattern.
    pub placement: BigRouterPlacement,
    /// Lock-barrier entries (and early-invalidation entries) per big
    /// router's locking barrier table.
    pub barrier_entries: usize,
    /// Barrier time-to-live, in cycles.
    pub barrier_ttl: u32,
    /// Whether routers arbitrate by OCOR packet priority.
    pub ocor_arbitration: bool,
    /// Deterministic fault-injection schedule (empty = none).
    pub faults: FaultPlan,
}

impl NocConfig {
    /// The paper's Table-1 configuration for iNPG.
    pub fn paper_default() -> Self {
        NocConfig {
            width: 8,
            height: 8,
            vnets: 4,
            vcs_per_vnet: 2,
            vc_depth: 4,
            data_flits: 8,
            placement: BigRouterPlacement::Checkerboard,
            barrier_entries: 16,
            barrier_ttl: 128,
            ocor_arbitration: false,
            faults: FaultPlan::none(),
        }
    }

    /// The paper's baseline (Original) configuration: no big routers.
    pub fn baseline() -> Self {
        NocConfig { placement: BigRouterPlacement::None, ..Self::paper_default() }
    }

    /// Total routers on the mesh.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Total VCs per port.
    pub fn vcs_per_port(&self) -> usize {
        self.vnets as usize * self.vcs_per_vnet as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any dimension or buffer parameter is
    /// zero, or the barrier table is configured on a mesh with no routers.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 || self.height == 0 {
            return Err(ConfigError::new("mesh dimensions must be nonzero"));
        }
        if self.vnets == 0 {
            return Err(ConfigError::new("at least one virtual network is required"));
        }
        if self.vcs_per_vnet == 0 {
            return Err(ConfigError::new("at least one VC per virtual network is required"));
        }
        if self.vc_depth == 0 {
            return Err(ConfigError::new("VC buffers must hold at least one flit"));
        }
        if self.data_flits == 0 {
            return Err(ConfigError::new("data packets must have at least one flit"));
        }
        if self.barrier_entries == 0 && self.placement != BigRouterPlacement::None {
            return Err(ConfigError::new(
                "big routers require at least one locking barrier entry",
            ));
        }
        if self.barrier_ttl == 0 && self.placement != BigRouterPlacement::None {
            return Err(ConfigError::new("barrier TTL must be nonzero"));
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_places_half() {
        assert_eq!(BigRouterPlacement::Checkerboard.count(8, 8), 32);
    }

    #[test]
    fn all_and_none_counts() {
        assert_eq!(BigRouterPlacement::All.count(8, 8), 64);
        assert_eq!(BigRouterPlacement::None.count(8, 8), 0);
    }

    #[test]
    fn spread_counts_match() {
        for count in [0usize, 1, 4, 16, 32, 63, 64] {
            assert_eq!(
                BigRouterPlacement::Spread(count).count(8, 8),
                count.min(64),
                "spread({count})"
            );
        }
    }

    #[test]
    fn spread_is_actually_spread() {
        // 4 big routers on an 8x8 mesh should not all sit in row 0.
        let rows: std::collections::HashSet<u8> = (0..8u8)
            .flat_map(|y| (0..8u8).map(move |x| Coord::new(x, y)))
            .filter(|c| BigRouterPlacement::Spread(4).is_big(*c, 8, 8))
            .map(|c| c.y())
            .collect();
        assert!(rows.len() >= 2, "4 spread big routers should span rows, got {rows:?}");
    }

    #[test]
    fn paper_default_validates() {
        assert!(NocConfig::paper_default().validate().is_ok());
        assert!(NocConfig::baseline().validate().is_ok());
        assert_eq!(NocConfig::paper_default().nodes(), 64);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = NocConfig::paper_default();
        cfg.width = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::paper_default();
        cfg.vc_depth = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::paper_default();
        cfg.barrier_entries = 0;
        assert!(cfg.validate().is_err());
        cfg.placement = BigRouterPlacement::None;
        assert!(cfg.validate().is_ok());
    }
}
