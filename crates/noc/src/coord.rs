//! Mesh coordinates, ports, and dimension-ordered (XY) routing.

use inpg_sim::CoreId;
use std::fmt;

/// A position on the 2D mesh, `x` growing eastward and `y` southward.
///
/// # Example
///
/// ```
/// use inpg_noc::coord::{Coord, Direction};
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 2);
/// assert_eq!(a.xy_next_hop(b), Some(Direction::East));
/// assert_eq!(a.hops_to(b), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    x: u8,
    y: u8,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Column index (0 = west edge).
    pub const fn x(self) -> u8 {
        self.x
    }

    /// Row index (0 = north edge).
    pub const fn y(self) -> u8 {
        self.y
    }

    /// Maps a row-major core id to its mesh coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the id is outside the `width × height` mesh.
    pub fn from_core(core: CoreId, width: u8, height: u8) -> Self {
        let idx = core.index();
        assert!(
            idx < width as usize * height as usize,
            "core id {idx} outside {width}x{height} mesh"
        );
        Coord { x: (idx % width as usize) as u8, y: (idx / width as usize) as u8 }
    }

    /// Maps this coordinate back to its row-major core id.
    pub fn to_core(self, width: u8) -> CoreId {
        CoreId::new(self.y as usize * width as usize + self.x as usize)
    }

    /// Manhattan distance in hops.
    pub fn hops_to(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Next output direction under XY dimension-ordered routing, or
    /// `None` when already at the destination (eject locally).
    pub fn xy_next_hop(self, dst: Coord) -> Option<Direction> {
        if self.x < dst.x {
            Some(Direction::East)
        } else if self.x > dst.x {
            Some(Direction::West)
        } else if self.y < dst.y {
            Some(Direction::South)
        } else if self.y > dst.y {
            Some(Direction::North)
        } else {
            None
        }
    }

    /// The neighbouring coordinate in `dir`, or `None` at a mesh edge.
    pub fn neighbor(self, dir: Direction, width: u8, height: u8) -> Option<Coord> {
        match dir {
            Direction::North if self.y > 0 => Some(Coord::new(self.x, self.y - 1)),
            Direction::South if self.y + 1 < height => Some(Coord::new(self.x, self.y + 1)),
            Direction::West if self.x > 0 => Some(Coord::new(self.x - 1, self.y)),
            Direction::East if self.x + 1 < width => Some(Coord::new(self.x + 1, self.y)),
            _ => None,
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One of the four mesh directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Toward row 0.
    North,
    /// Toward the last row.
    South,
    /// Toward column 0.
    West,
    /// Toward the last column.
    East,
}

impl Direction {
    /// All four directions in a fixed iteration order.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::South, Direction::West, Direction::East];

    /// The direction a flit sent this way arrives *from* at the neighbour.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
            Direction::East => Direction::West,
        }
    }

    /// The lowercase direction name.
    pub fn name(self) -> &'static str {
        match self {
            Direction::North => "north",
            Direction::South => "south",
            Direction::West => "west",
            Direction::East => "east",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A router port: one of the four neighbour links or the local tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// Link to/from a neighbouring router.
    Link(Direction),
    /// The local network interface (injection/ejection).
    Local,
}

impl Port {
    /// All five ports in a fixed iteration order (local first, so that a
    /// freshly injected packet does not starve behind through traffic in
    /// the deterministic sweep; actual fairness comes from round-robin).
    pub const ALL: [Port; 5] = [
        Port::Local,
        Port::Link(Direction::North),
        Port::Link(Direction::South),
        Port::Link(Direction::West),
        Port::Link(Direction::East),
    ];

    /// Dense index for table lookups.
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::Link(Direction::North) => 1,
            Port::Link(Direction::South) => 2,
            Port::Link(Direction::West) => 3,
            Port::Link(Direction::East) => 4,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Local => f.write_str("local"),
            Port::Link(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_coord_roundtrip() {
        let width = 8;
        let height = 8;
        for idx in 0..64usize {
            let c = Coord::from_core(CoreId::new(idx), width, height);
            assert_eq!(c.to_core(width), CoreId::new(idx));
        }
    }

    #[test]
    fn core_coord_row_major() {
        let c = Coord::from_core(CoreId::new(8 + 5), 8, 8);
        assert_eq!((c.x(), c.y()), (5, 1));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn core_coord_out_of_range_panics() {
        Coord::from_core(CoreId::new(64), 8, 8);
    }

    #[test]
    fn xy_routes_x_first() {
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        assert_eq!(src.xy_next_hop(dst), Some(Direction::East));
        let mid = Coord::new(3, 0);
        assert_eq!(mid.xy_next_hop(dst), Some(Direction::South));
        assert_eq!(dst.xy_next_hop(dst), None);
    }

    #[test]
    fn xy_path_reaches_destination() {
        let width = 8;
        let height = 8;
        let src = Coord::new(7, 0);
        let dst = Coord::new(1, 6);
        let mut cur = src;
        let mut hops = 0;
        while let Some(dir) = cur.xy_next_hop(dst) {
            cur = cur.neighbor(dir, width, height).expect("route stays on mesh");
            hops += 1;
            assert!(hops <= 32, "routing loop");
        }
        assert_eq!(cur, dst);
        assert_eq!(hops, src.hops_to(dst));
    }

    #[test]
    fn neighbor_edges_are_none() {
        assert_eq!(Coord::new(0, 0).neighbor(Direction::North, 8, 8), None);
        assert_eq!(Coord::new(0, 0).neighbor(Direction::West, 8, 8), None);
        assert_eq!(Coord::new(7, 7).neighbor(Direction::South, 8, 8), None);
        assert_eq!(Coord::new(7, 7).neighbor(Direction::East, 8, 8), None);
        assert_eq!(
            Coord::new(3, 3).neighbor(Direction::East, 8, 8),
            Some(Coord::new(4, 3))
        );
    }

    #[test]
    fn opposite_is_involutive() {
        for dir in Direction::ALL {
            assert_eq!(dir.opposite().opposite(), dir);
        }
    }

    #[test]
    fn port_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for port in Port::ALL {
            let i = port.index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
