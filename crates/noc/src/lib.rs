//! A cycle-driven, flit-level 2D-mesh network-on-chip with iNPG "big"
//! routers, reproducing the NoC substrate of Yao & Lu, *iNPG:
//! Accelerating Critical Section Access with In-Network Packet Generation
//! for NoC Based Many-Cores* (HPCA 2018).
//!
//! # Model
//!
//! * 2D mesh, XY dimension-ordered routing (deadlock-free);
//! * input-buffered routers with virtual channels partitioned into
//!   virtual networks (message classes), credit-based flow control,
//!   wormhole switching;
//! * a 2-stage pipeline per the Peh–Dally speculative router the paper
//!   baselines on: RC/VA/SA in one stage, switch+link traversal in the
//!   next — 2 cycles per uncontended hop;
//! * control packets are one flit, cache-block data packets eight
//!   (128-bit links, 128-byte blocks, Table 1);
//! * **big routers** add the paper's packet generator: a locking barrier
//!   table that stops competing lock `GetX` requests, generates early
//!   invalidations toward the losing cores, converts the stopped request
//!   into a `FwdGetX` to the home node, and relays the returning
//!   invalidation acknowledgement to the home node.
//!
//! The network is generic over a payload type implementing
//! [`PacketGenPayload`], which is how the coherence protocol teaches big
//! routers to recognise and fabricate its messages without this crate
//! depending on the protocol.
//!
//! # Example
//!
//! ```
//! use inpg_noc::{Message, Network, NocConfig};
//! use inpg_noc::packet::{OpaquePayload, Sink, VirtualNetwork};
//! use inpg_sim::{CoreId, Cycle};
//!
//! let mut network = Network::new(NocConfig::baseline())?;
//! network.send(Cycle::ZERO, Message {
//!     src: CoreId::new(0),
//!     dst: CoreId::new(63),
//!     sink: Sink::NetworkInterface,
//!     vnet: VirtualNetwork::REQUEST,
//!     flits: 1,
//!     priority: 0,
//!     payload: OpaquePayload,
//! });
//! let mut now = Cycle::ZERO;
//! while network.in_flight() > 0 {
//!     network.tick(now);
//!     now = now.next();
//! }
//! assert!(network.pop_delivered(CoreId::new(63)).is_some());
//! # Ok::<(), inpg_sim::ConfigError>(())
//! ```

pub mod barrier;
pub mod config;
pub mod coord;
pub mod fault;
pub mod invariant;
pub mod network;
pub mod packet;
mod router;
pub mod stats;

pub use barrier::{BarrierFsm, LockingBarrierTable};
pub use config::{BigRouterPlacement, NocConfig};
pub use coord::{Coord, Direction, Port};
pub use fault::{FaultKind, FaultPlan};
pub use invariant::NocViolation;
pub use network::{Message, Network};
pub use packet::{
    EarlyAck, LockRequest, Packet, PacketGenPayload, PacketId, Sink, VirtualNetwork,
};
pub use stats::NocStats;
