//! The mesh network: injection, per-cycle switching, big-router
//! interception, and delivery.

use crate::barrier::{BarrierSnapshot, BarrierStats, LockingBarrierTable};
use crate::config::NocConfig;
use crate::coord::{Coord, Direction, Port};
use crate::invariant::NocViolation;
use crate::packet::{Packet, PacketGenPayload, PacketId, Sink, VirtualNetwork};
use crate::router::{Candidate, EjectSlot, Flit, FlitSource, OutRoute, Router};
use crate::stats::NocStats;
use inpg_sim::{ConfigError, CoreId, Cycle};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// SplitMix64 step for the fault-injection jitter stream.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything needed to inject one packet.
#[derive(Debug, Clone)]
pub struct Message<P> {
    /// Source core (tile) id.
    pub src: CoreId,
    /// Destination core (tile) id.
    pub dst: CoreId,
    /// Whether the packet terminates at the NI or inside the router.
    pub sink: Sink,
    /// Virtual network class.
    pub vnet: VirtualNetwork,
    /// Packet length in flits.
    pub flits: u8,
    /// OCOR arbitration priority (0 when unused).
    pub priority: u8,
    /// Protocol payload.
    pub payload: P,
}

/// OCOR anti-starvation: a packet's effective priority rises with age
/// (the paper embeds program-progress information in request packets so
/// low-priority requests cannot starve). One level per 128 cycles in
/// flight, capped at the top spinning level.
fn aged_priority<P>(packet: &Packet<P>, now: Cycle) -> u8 {
    let boost = (now.saturating_since(packet.injected_at) / 128).min(8) as u8;
    packet.priority.saturating_add(boost).min(8)
}

/// Injection progress of the packet currently streaming into a local
/// input VC.
#[derive(Debug, Clone, Copy)]
struct InjectProgress {
    packet_id: PacketId,
    vc: usize,
    sent: u8,
    total: u8,
}

/// A cycle-driven 2D-mesh network-on-chip.
///
/// See the crate-level docs for the micro-architecture model. The network
/// is generic over the payload `P`; big routers use the
/// [`PacketGenPayload`] hooks to intercept lock requests and generate
/// early invalidations.
#[derive(Debug)]
pub struct Network<P> {
    cfg: NocConfig,
    routers: Vec<Router<P>>,
    /// Per-node, per-vnet injection queues.
    inject: Vec<Vec<VecDeque<Packet<P>>>>,
    /// Per-node, per-vnet injection progress.
    inject_state: Vec<Vec<Option<InjectProgress>>>,
    /// Per-node round-robin over vnets at the injection port.
    inject_rr: Vec<usize>,
    /// Per-node delivered packets awaiting pickup by the tile.
    delivered: Vec<VecDeque<Packet<P>>>,
    next_packet_id: u64,
    stats: NocStats,
    /// Fault-injection jitter stream state.
    fault_rng: u64,
    /// Invalidation acknowledgements observed so far — early acks
    /// consumed at big routers plus ack packets ejected at their NI
    /// (the drop-ack fault's 1-based ordinal).
    acks_observed: u64,
    /// The barrier-off fault has fired: tables are flushed and
    /// interception is off, but router-sink acks are still consumed.
    barrier_disabled: bool,
    /// The TTL-storm fault has fired.
    ttl_storm_fired: bool,
    /// The router-fail fault has fired.
    router_fail_fired: bool,
    /// REQUEST-class packets seen at injection (the link-drop fault's
    /// 1-based ordinal; only counted while that fault is configured).
    requests_observed: u64,
}

impl<P: PacketGenPayload> Network<P> {
    /// Builds the mesh described by `cfg`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `cfg` fails validation.
    pub fn new(cfg: NocConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let nodes = cfg.nodes();
        let vcs = cfg.vcs_per_port();
        let mut routers = Vec::with_capacity(nodes);
        for idx in 0..nodes {
            let coord = Coord::from_core(CoreId::new(idx), cfg.width, cfg.height);
            let barrier = cfg
                .placement
                .is_big(coord, cfg.width, cfg.height)
                .then(|| {
                    let mut table = LockingBarrierTable::new(
                        cfg.barrier_entries,
                        cfg.barrier_entries,
                        cfg.barrier_ttl,
                    );
                    if let Some(cap) = cfg.faults.ei_capacity_clamp() {
                        table.clamp_ei_capacity(cap);
                    }
                    table
                });
            routers.push(Router::new(coord, vcs, cfg.vc_depth, barrier));
        }
        Ok(Network {
            inject: (0..nodes).map(|_| (0..cfg.vnets as usize).map(|_| VecDeque::new()).collect()).collect(),
            inject_state: (0..nodes).map(|_| vec![None; cfg.vnets as usize]).collect(),
            inject_rr: vec![0; nodes],
            delivered: (0..nodes).map(|_| VecDeque::new()).collect(),
            next_packet_id: 0,
            stats: NocStats::default(),
            fault_rng: cfg.faults.seed ^ 0x6a09_e667_f3bc_c908,
            acks_observed: 0,
            barrier_disabled: false,
            ttl_storm_fired: false,
            router_fail_fired: false,
            requests_observed: 0,
            routers,
            cfg,
        })
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of big routers on the mesh.
    pub fn big_router_count(&self) -> usize {
        self.routers.iter().filter(|r| r.is_big()).count()
    }

    /// Enqueues `msg` for injection at its source tile. Returns the
    /// assigned packet id.
    ///
    /// # Panics
    ///
    /// Panics if the vnet index or either core id is out of range, or the
    /// flit count is zero.
    pub fn send(&mut self, now: Cycle, msg: Message<P>) -> PacketId {
        assert!(msg.flits > 0, "packets must have at least one flit");
        assert!((msg.vnet.index()) < self.cfg.vnets as usize, "vnet out of range");
        assert!(msg.src.index() < self.cfg.nodes(), "src out of range");
        assert!(msg.dst.index() < self.cfg.nodes(), "dst out of range");
        let id = PacketId::new(self.next_packet_id);
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            src: Coord::from_core(msg.src, self.cfg.width, self.cfg.height),
            dst: Coord::from_core(msg.dst, self.cfg.width, self.cfg.height),
            sink: msg.sink,
            vnet: msg.vnet,
            flits: msg.flits,
            priority: msg.priority,
            injected_at: now,
            payload: msg.payload,
        };
        self.stats.injected += 1;
        self.stats.in_flight += 1;
        self.inject[msg.src.index()][msg.vnet.index()].push_back(packet);
        id
    }

    /// Removes and returns the next packet delivered to `node`'s NI.
    pub fn pop_delivered(&mut self, node: CoreId) -> Option<Packet<P>> {
        self.delivered[node.index()].pop_front()
    }

    /// Packets currently inside the network (injected or generated but
    /// not yet delivered/consumed).
    pub fn in_flight(&self) -> u64 {
        self.stats.in_flight
    }

    /// Accumulated network statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Sums barrier-table counters over all big routers.
    pub fn barrier_stats(&self) -> BarrierStats {
        let mut total = BarrierStats::default();
        for r in &self.routers {
            if let Some(b) = &r.barrier {
                let s = b.stats();
                total.barriers_installed += s.barriers_installed;
                total.barriers_expired += s.barriers_expired;
                total.requests_stopped += s.requests_stopped;
                total.passes_table_full += s.passes_table_full;
                total.acks_relayed += s.acks_relayed;
                total.stale_acks_dropped += s.stale_acks_dropped;
                total.degraded_transitions += s.degraded_transitions;
                total.in_pass_through += s.in_pass_through;
            }
        }
        total
    }

    /// Verifies internal conservation invariants (test support). See
    /// [`try_check_invariants`](Self::try_check_invariants) for the
    /// non-panicking form.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        if let Err(violation) = self.try_check_invariants() {
            panic!("{violation}");
        }
    }

    /// Verifies internal conservation invariants, reporting the first
    /// violation as a typed value instead of panicking:
    ///
    /// * every router's cached flit counter matches its buffers,
    /// * credits plus downstream buffer occupancy equal the VC depth,
    /// * every live barrier entry's TTL is in `1..=default`,
    /// * packets found by walking every queue and buffer equal
    ///   `injected + generated - delivered - consumed` (conservation).
    ///
    /// # Errors
    ///
    /// Returns the first [`NocViolation`] found.
    pub fn try_check_invariants(&self) -> Result<(), NocViolation> {
        let vcs = self.cfg.vcs_per_port();
        for router in &self.routers {
            let total: usize = router.inputs.iter().flatten().map(|vc| vc.occupancy()).sum();
            if total != router.buffered {
                return Err(NocViolation::BufferAccounting {
                    router: router.coord,
                    counter: router.buffered,
                    actual: total,
                });
            }
            for dir in Direction::ALL {
                let Some(neighbor) = router.coord.neighbor(dir, self.cfg.width, self.cfg.height)
                else {
                    continue;
                };
                let n_node = neighbor.to_core(self.cfg.width).index();
                let in_port = Port::Link(dir.opposite()).index();
                let out_port = Port::Link(dir).index();
                for vc in 0..vcs {
                    let credits = router.out_credits[out_port][vc] as usize;
                    let occupancy = self.routers[n_node].inputs[in_port][vc].occupancy();
                    if credits + occupancy != self.cfg.vc_depth as usize {
                        return Err(NocViolation::CreditConservation {
                            router: router.coord,
                            port: dir.name(),
                            vc,
                            credits,
                            occupancy,
                            depth: self.cfg.vc_depth as usize,
                        });
                    }
                }
            }
            if let Some(barrier) = &router.barrier {
                for (addr, ttl, _eis) in barrier.snapshot() {
                    if ttl == 0 || ttl > barrier.default_ttl() {
                        return Err(NocViolation::BarrierTtl {
                            router: router.coord,
                            addr,
                            ttl,
                            max: barrier.default_ttl(),
                        });
                    }
                }
            }
        }
        let counted = self.count_resident_packets();
        let expected = self.stats.in_flight;
        if counted != expected {
            return Err(NocViolation::PacketConservation { counted, expected });
        }
        Ok(())
    }

    /// Counts the packets physically present in the network by walking
    /// every injection queue, input-VC head flit, generator queue and
    /// ejection-reassembly slot. Each in-flight packet appears in exactly
    /// one of those places.
    fn count_resident_packets(&self) -> u64 {
        let mut n = 0u64;
        for queues in &self.inject {
            for q in queues {
                n += q.len() as u64;
            }
        }
        for router in &self.routers {
            n += router.gen_queue.len() as u64;
            n += router.eject.len() as u64;
            for port in &router.inputs {
                for vc in port {
                    n += vc.flits.iter().filter(|f| f.head.is_some()).count() as u64;
                }
            }
        }
        n
    }

    /// Snapshot of every non-empty barrier table:
    /// `(big router tile, entries)` with each entry `(lock, ttl, live EIs)`.
    pub fn barrier_snapshots(&self) -> Vec<(CoreId, BarrierSnapshot)> {
        self.routers
            .iter()
            .filter_map(|r| {
                let snap = r.barrier.as_ref()?.snapshot();
                (!snap.is_empty()).then(|| (r.coord.to_core(self.cfg.width), snap))
            })
            .collect()
    }

    /// Multi-line occupancy report for stall diagnostics: per-router
    /// buffered flits, VC occupancy and credits, generator backlogs, live
    /// barrier entries, and the oldest in-flight packet's identity and
    /// position.
    pub fn congestion_report(&self, now: Cycle) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "noc: {} in flight ({} injected, {} generated, {} delivered, {} consumed)",
            self.stats.in_flight,
            self.stats.injected,
            self.stats.generated_packets,
            self.stats.delivered,
            self.stats.consumed,
        );
        for (node, router) in self.routers.iter().enumerate() {
            let pending_inject: usize = self.inject[node].iter().map(VecDeque::len).sum();
            if router.buffered == 0 && router.gen_queue.is_empty() && pending_inject == 0 {
                continue;
            }
            let _ = write!(
                out,
                "  router {} ({}): {} flits buffered",
                router.coord,
                if router.is_big() { "big" } else { "normal" },
                router.buffered,
            );
            if pending_inject > 0 {
                let _ = write!(out, ", {pending_inject} awaiting injection");
            }
            if !router.gen_queue.is_empty() {
                let _ = write!(out, ", {} in generator queue", router.gen_queue.len());
            }
            let _ = writeln!(out);
            for (port, vcs) in router.inputs.iter().enumerate() {
                for (vc, input) in vcs.iter().enumerate() {
                    if input.occupancy() == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "    in port {port} vc {vc}: {} flits (credits out {:?})",
                        input.occupancy(),
                        router.out_credits[port][vc],
                    );
                }
            }
            if let Some(barrier) = &router.barrier {
                for (addr, ttl, eis) in barrier.snapshot() {
                    let _ = writeln!(
                        out,
                        "    barrier {addr}: ttl {ttl}, {eis} live EI entr{}",
                        if eis == 1 { "y" } else { "ies" },
                    );
                }
            }
        }
        if let Some(line) = self.oldest_in_flight_line(now) {
            let _ = writeln!(out, "  oldest in flight: {line}");
        }
        out
    }

    /// Describes the oldest packet still inside the network: id, age,
    /// endpoints, and where it is stuck.
    fn oldest_in_flight_line(&self, now: Cycle) -> Option<String> {
        let mut best: Option<(Cycle, String)> = None;
        let mut note = |injected_at: Cycle, line: String| {
            if best.as_ref().is_none_or(|(t, _)| injected_at < *t) {
                best = Some((injected_at, line));
            }
        };
        for (node, queues) in self.inject.iter().enumerate() {
            for q in queues {
                for p in q {
                    note(
                        p.injected_at,
                        format!(
                            "{} {} {}->{} awaiting injection at node {node}",
                            p.id, p.vnet, p.src, p.dst
                        ),
                    );
                }
            }
        }
        for router in &self.routers {
            for p in &router.gen_queue {
                note(
                    p.injected_at,
                    format!(
                        "{} {} {}->{} in generator queue at {}",
                        p.id, p.vnet, p.src, p.dst, router.coord
                    ),
                );
            }
            for slot in router.eject.values() {
                let p = &slot.packet;
                note(
                    p.injected_at,
                    format!(
                        "{} {} {}->{} reassembling at {} ({}/{} flits)",
                        p.id, p.vnet, p.src, p.dst, router.coord, slot.flits_seen, p.flits
                    ),
                );
            }
            for (port, vcs) in router.inputs.iter().enumerate() {
                for (vc, input) in vcs.iter().enumerate() {
                    for flit in &input.flits {
                        if let Some(p) = flit.head.as_deref() {
                            note(
                                p.injected_at,
                                format!(
                                    "{} {} {}->{} buffered at {} port {port} vc {vc}",
                                    p.id, p.vnet, p.src, p.dst, router.coord
                                ),
                            );
                        }
                    }
                }
            }
        }
        best.map(|(injected_at, line)| {
            format!("{line} (age {} cycles)", now.saturating_since(injected_at))
        })
    }

    /// Advances the network one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.apply_scheduled_faults(now);
        self.intercept_phase(now);
        self.barrier_tick_phase();
        self.switch_phase(now);
        self.inject_phase(now);
    }

    /// Fires cycle-triggered faults from the configured plan.
    fn apply_scheduled_faults(&mut self, now: Cycle) {
        if !self.barrier_disabled {
            if let Some(at) = self.cfg.faults.barrier_off_at() {
                if now.as_u64() >= at {
                    self.barrier_disabled = true;
                    for router in &mut self.routers {
                        if let Some(barrier) = router.barrier.as_mut() {
                            barrier.flush();
                        }
                    }
                }
            }
        }
        if !self.ttl_storm_fired {
            if let Some(at) = self.cfg.faults.ttl_storm_at() {
                if now.as_u64() >= at {
                    self.ttl_storm_fired = true;
                    for router in &mut self.routers {
                        if let Some(barrier) = router.barrier.as_mut() {
                            barrier.set_all_ttls(1);
                        }
                    }
                }
            }
        }
        if !self.router_fail_fired {
            if let Some(at) = self.cfg.faults.router_fail_at() {
                if now.as_u64() >= at {
                    self.router_fail_fired = true;
                    for router in &mut self.routers {
                        if let Some(barrier) = router.barrier.as_mut() {
                            barrier.fail();
                        }
                    }
                }
            }
        }
    }

    // ---- interception (big-router packet generation) ------------------

    fn intercept_phase(&mut self, now: Cycle) {
        let nodes = self.cfg.nodes();
        let vcs = self.cfg.vcs_per_port();
        for node in 0..nodes {
            if !self.routers[node].is_big() || self.routers[node].buffered == 0 {
                continue;
            }
            for port in 0..5 {
                for vc in 0..vcs {
                    self.intercept_vc_head(now, node, port, vc);
                }
            }
        }
    }

    /// Inspects the head flit of one input VC and consumes it if it is a
    /// router-sink ack or a stoppable lock GetX.
    fn intercept_vc_head(&mut self, now: Cycle, node: usize, port: usize, vc: usize) {
        enum Action {
            ConsumeAck,
            StopGetx,
            InstallBarrier,
        }
        let action = {
            let router = &self.routers[node];
            let Some(flit) = router.inputs[port][vc].flits.front() else { return };
            if flit.eligible_at > now {
                return;
            }
            let Some(packet) = flit.head.as_deref() else { return };
            if packet.sink == Sink::Router && packet.dst == router.coord {
                Action::ConsumeAck
            } else if self.barrier_disabled {
                // Barrier-off fault: interception is dark, lock requests
                // pass through like in a normal router.
                return;
            } else if let Some(barrier) = &router.barrier {
                let ejecting = packet.dst == router.coord;
                match packet.payload.as_lock_request() {
                    Some(req) if !ejecting => {
                        if barrier.should_stop(req.addr) {
                            Action::StopGetx
                        } else if !barrier.has_barrier(req.addr) {
                            Action::InstallBarrier
                        } else {
                            // Barrier exists but the EI pool is full: the
                            // request passes through like in a normal
                            // router (paper §4.1).
                            return;
                        }
                    }
                    _ => return,
                }
            } else {
                return;
            }
        };

        match action {
            Action::ConsumeAck => {
                let packet = self.pop_head_packet(node, port, vc);
                self.stats.in_flight -= 1;
                self.stats.consumed += 1;
                let coord = self.routers[node].coord;
                match packet.payload.as_early_ack() {
                    Some(ack) => {
                        if let Some(barrier) = self.routers[node].barrier.as_mut() {
                            // Bookkeeping only: even a "stale" ack is
                            // relayed, because the home node is the
                            // protocol-level deduplicator and losing an
                            // InvAck would wedge the winner.
                            let _ = barrier.take_ack(ack.addr, ack.from);
                        }
                        self.acks_observed += 1;
                        if self.cfg.faults.drop_ack_nth() == Some(self.acks_observed) {
                            // Fault injection: lose this ack instead of
                            // relaying it. The home never learns the
                            // loser's copy died — exactly the coherence
                            // bug the invariant checker must catch.
                            self.stats.acks_dropped_by_fault += 1;
                            return;
                        }
                        let relay = Packet {
                            id: self.alloc_id(),
                            src: coord,
                            dst: Coord::from_core(ack.home, self.cfg.width, self.cfg.height),
                            sink: Sink::NetworkInterface,
                            vnet: VirtualNetwork::RESPONSE,
                            flits: 1,
                            priority: 0,
                            injected_at: now,
                            payload: P::relayed_ack(ack, now),
                        };
                        self.push_generated(node, relay);
                    }
                    None => {
                        self.stats.dropped_router_sink += 1;
                    }
                }
            }
            Action::StopGetx => {
                let packet = self.pop_head_packet(node, port, vc);
                debug_assert_eq!(packet.flits, 1, "lock GetX must be single-flit");
                self.stats.in_flight -= 1;
                self.stats.consumed += 1;
                let coord = self.routers[node].coord;
                // lint: allow(unwrap) — Action::StopGetx is only chosen after
                // as_lock_request() returned Some for this very flit.
                let req = packet.payload.as_lock_request().expect("checked above");
                self.routers[node]
                    .barrier
                    .as_mut()
                    // lint: allow(unwrap) — decide_action emits StopGetx only
                    // when the router has a barrier table (is_big()).
                    .expect("stop only on big routers")
                    .stop(req.addr, req.requester);
                self.stats.early_invs_generated += 1;
                let inv = Packet {
                    id: self.alloc_id(),
                    src: coord,
                    dst: Coord::from_core(req.requester, self.cfg.width, self.cfg.height),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::FORWARD,
                    flits: 1,
                    priority: 0,
                    injected_at: now,
                    payload: P::early_inv(req, coord.to_core(self.cfg.width), now),
                };
                let fwd = Packet {
                    id: self.alloc_id(),
                    src: packet.src,
                    dst: Coord::from_core(req.home, self.cfg.width, self.cfg.height),
                    sink: Sink::NetworkInterface,
                    vnet: VirtualNetwork::REQUEST,
                    flits: 1,
                    priority: packet.priority,
                    // The FwdGetX continues the stopped request's journey,
                    // so it keeps the original injection timestamp.
                    injected_at: packet.injected_at,
                    payload: packet.payload.forwarded_getx(now),
                };
                self.push_generated(node, inv);
                self.push_generated(node, fwd);
            }
            Action::InstallBarrier => {
                // Install at first sight. The paper installs the barrier
                // when the first GetX is *transferred*; installing when it
                // reaches the head of an input VC is at most a couple of
                // cycles earlier and keeps the pipeline model simple.
                let router = &mut self.routers[node];
                let req = router.inputs[port][vc]
                    .flits
                    .front()
                    .and_then(|f| f.head.as_deref())
                    .and_then(|p| p.payload.as_lock_request())
                    // lint: allow(unwrap) — InstallBarrier is only chosen after
                    // the same chain returned Some in decide_action.
                    .expect("checked above");
                // lint: allow(unwrap) — InstallBarrier only fires on big routers.
                router.barrier.as_mut().expect("big router").observe_transfer(req.addr);
            }
        }
    }

    fn alloc_id(&mut self) -> PacketId {
        let id = PacketId::new(self.next_packet_id);
        self.next_packet_id += 1;
        id
    }

    fn push_generated(&mut self, node: usize, packet: Packet<P>) {
        self.stats.generated_packets += 1;
        self.stats.in_flight += 1;
        self.routers[node].gen_queue.push_back(packet);
    }

    /// Pops the (single-flit) head packet of a VC, returning credit to
    /// the upstream router.
    fn pop_head_packet(&mut self, node: usize, port: usize, vc: usize) -> Packet<P> {
        let flit = self.routers[node].inputs[port][vc]
            .flits
            .pop_front()
            // lint: allow(unwrap) — interception actions are decided while
            // inspecting this VC's front flit, which stays put until here.
            .expect("caller checked the flit exists");
        self.routers[node].buffered -= 1;
        debug_assert!(flit.tail, "interception only consumes single-flit packets");
        self.routers[node].inputs[port][vc].route = None;
        self.return_credit(node, port, vc);
        // lint: allow(unwrap) — only head flits carry a lock request, and
        // decide_action matched on one.
        *flit.head.expect("caller checked this is a head flit")
    }

    /// Returns one credit to whatever feeds `(node, port, vc)`.
    fn return_credit(&mut self, node: usize, port: usize, vc: usize) {
        if port == Port::Local.index() {
            // Injection checks occupancy directly; no credit counter.
            return;
        }
        let dir = match port {
            1 => Direction::North,
            2 => Direction::South,
            3 => Direction::West,
            4 => Direction::East,
            _ => unreachable!("port index out of range"),
        };
        let coord = self.routers[node].coord;
        let upstream = coord
            .neighbor(dir, self.cfg.width, self.cfg.height)
            // lint: allow(unwrap) — a flit can only have arrived on a link
            // port if a neighbour exists in that direction.
            .expect("link ports always have a neighbour");
        let upstream_node = upstream.to_core(self.cfg.width).index();
        // The upstream router's output toward us is the opposite port.
        let up_port = Port::Link(dir.opposite()).index();
        self.routers[upstream_node].out_credits[up_port][vc] += 1;
    }

    // ---- barrier TTLs --------------------------------------------------

    fn barrier_tick_phase(&mut self) {
        for router in &mut self.routers {
            if let Some(barrier) = router.barrier.as_mut() {
                barrier.tick();
            }
        }
    }

    // ---- switch allocation & traversal ---------------------------------

    fn switch_phase(&mut self, now: Cycle) {
        let nodes = self.cfg.nodes();
        for node in 0..nodes {
            self.switch_router(now, node);
        }
    }

    fn switch_router(&mut self, now: Cycle, node: usize) {
        if self.routers[node].buffered == 0 && self.routers[node].gen_queue.is_empty() {
            return;
        }
        let mut used_inputs = [false; 6]; // 5 ports + generator
        for out_port in Port::ALL {
            let candidates = self.gather_candidates(now, node, out_port, &used_inputs);
            let winner = self.routers[node].pick_winner(
                out_port,
                &candidates,
                self.cfg.ocor_arbitration,
            );
            if let Some(winner) = winner {
                match winner.source {
                    FlitSource::Vc(p, _) => used_inputs[p] = true,
                    FlitSource::Generator => used_inputs[5] = true,
                }
                self.apply_move(now, node, winner);
            }
        }
    }

    /// Collects the switch-allocation candidates targeting `out_port`.
    fn gather_candidates(
        &self,
        now: Cycle,
        node: usize,
        out_port: Port,
        used_inputs: &[bool; 6],
    ) -> Vec<Candidate> {
        let router = &self.routers[node];
        let vcs = self.cfg.vcs_per_port();
        let vcs_per_vnet = self.cfg.vcs_per_vnet as usize;
        let mut out = Vec::new();
        #[allow(clippy::needless_range_loop)] // port is an index into two tables
        for port in 0..5 {
            if used_inputs[port] {
                continue;
            }
            for vc in 0..vcs {
                let input = &router.inputs[port][vc];
                let Some(flit) = input.flits.front() else { continue };
                if flit.eligible_at > now {
                    continue;
                }
                let candidate = if let Some(packet) = flit.head.as_deref() {
                    // Head flit: route computation + VC allocation.
                    let route_port = match router.coord.xy_next_hop(packet.dst) {
                        Some(dir) => Port::Link(dir),
                        None => Port::Local,
                    };
                    if route_port == Port::Local && packet.sink == Sink::Router {
                        // Router-sink packets are consumed by the
                        // interception phase, never ejected; leave the
                        // flit for the next cycle's interception sweep.
                        continue;
                    }
                    if route_port != out_port {
                        continue;
                    }
                    let out_vc = if route_port == Port::Local {
                        0
                    } else {
                        match router.allocate_vc(route_port, packet.vnet.index(), vcs_per_vnet)
                        {
                            Some(v) => v,
                            None => continue, // VA stall
                        }
                    };
                    Candidate {
                        source: FlitSource::Vc(port, vc),
                        out: OutRoute { port: route_port, vc: out_vc },
                        claims_vc: route_port != Port::Local,
                        priority: aged_priority(packet, now),
                        order_key: port * vcs + vc,
                    }
                } else {
                    // Body flit: follows the route claimed by its head.
                    let Some(route) = input.route else { continue };
                    if route.port != out_port {
                        continue;
                    }
                    if route.port != Port::Local
                        && router.out_credits[route.port.index()][route.vc] == 0
                    {
                        continue; // no credit downstream
                    }
                    Candidate {
                        source: FlitSource::Vc(port, vc),
                        out: route,
                        claims_vc: false,
                        priority: 0,
                        order_key: port * vcs + vc,
                    }
                };
                out.push(candidate);
            }
        }
        // The packet generator's front packet bids like a sixth input.
        if !used_inputs[5] {
            if let Some(packet) = router.gen_queue.front() {
                let route_port = match router.coord.xy_next_hop(packet.dst) {
                    Some(dir) => Port::Link(dir),
                    None => Port::Local,
                };
                if route_port == out_port {
                    let out_vc = if route_port == Port::Local {
                        Some(0)
                    } else {
                        router.allocate_vc(route_port, packet.vnet.index(), vcs_per_vnet)
                    };
                    if let Some(out_vc) = out_vc {
                        out.push(Candidate {
                            source: FlitSource::Generator,
                            out: OutRoute { port: route_port, vc: out_vc },
                            claims_vc: route_port != Port::Local,
                            priority: aged_priority(packet, now),
                            order_key: 5 * vcs,
                        });
                    }
                }
            }
        }
        out
    }

    /// Executes one granted switch traversal.
    fn apply_move(&mut self, now: Cycle, node: usize, winner: Candidate) {
        let flit = match winner.source {
            FlitSource::Vc(port, vc) => {
                let input = &mut self.routers[node].inputs[port][vc];
                // lint: allow(unwrap) — the candidate was built from this
                // VC's front flit in the same cycle; nothing drains between.
                let flit = input.flits.pop_front().expect("candidate flit exists");
                if flit.head.is_some() {
                    input.route = Some(winner.out);
                }
                if flit.tail {
                    input.route = None;
                }
                self.routers[node].buffered -= 1;
                self.return_credit(node, port, vc);
                flit
            }
            FlitSource::Generator => {
                let packet =
                    // lint: allow(unwrap) — a Generator candidate is only
                    // emitted when gen_queue has a front packet.
                    self.routers[node].gen_queue.pop_front().expect("candidate packet exists");
                debug_assert_eq!(packet.flits, 1, "generated packets are single-flit");
                Flit {
                    packet_id: packet.id,
                    tail: true,
                    eligible_at: now,
                    head: Some(Box::new(packet)),
                }
            }
        };
        self.stats.flit_hops += 1;

        match winner.out.port {
            Port::Local => self.eject_flit(now, node, flit),
            Port::Link(dir) => {
                let router = &mut self.routers[node];
                let p = winner.out.port.index();
                if winner.claims_vc {
                    debug_assert!(router.out_owner[p][winner.out.vc].is_none());
                    router.out_owner[p][winner.out.vc] = Some(flit.packet_id);
                }
                debug_assert!(router.out_credits[p][winner.out.vc] > 0);
                router.out_credits[p][winner.out.vc] -= 1;
                if flit.tail {
                    router.out_owner[p][winner.out.vc] = None;
                }
                let coord = router.coord;
                let neighbor = coord
                    .neighbor(dir, self.cfg.width, self.cfg.height)
                    // lint: allow(unwrap) — XY route computation only picks a
                    // direction with an in-mesh neighbour.
                    .expect("route stays on mesh");
                let n_node = neighbor.to_core(self.cfg.width).index();
                let in_port = Port::Link(dir.opposite()).index();
                let mut flit = flit;
                // One cycle of link traversal plus the downstream router's
                // RC/VA/SA stage: the flit competes for the next switch two
                // cycles after leaving this one (2-cycle hop, Table 1's
                // 2-stage pipelined router).
                flit.eligible_at = now + 2;
                self.routers[n_node].inputs[in_port][winner.out.vc].flits.push_back(flit);
                self.routers[n_node].buffered += 1;
            }
        }
    }

    /// Accumulates an ejected flit; delivers the packet when complete.
    fn eject_flit(&mut self, now: Cycle, node: usize, flit: Flit<P>) {
        let router = &mut self.routers[node];
        let id = flit.packet_id;
        if let Some(packet) = flit.head {
            router.eject.insert(id, EjectSlot { packet, flits_seen: 1 });
        } else {
            router
                .eject
                .get_mut(&id)
                // lint: allow(unwrap) — wormhole switching keeps a packet's
                // flits in order, so the head opened this slot already.
                .expect("body flit follows its head at ejection")
                .flits_seen += 1;
        }
        if flit.tail {
            // lint: allow(unwrap) — inserted or incremented a few lines up.
            let slot = router.eject.remove(&id).expect("slot just touched");
            debug_assert_eq!(slot.flits_seen, slot.packet.flits, "all flits ejected");
            let packet = *slot.packet;
            debug_assert_eq!(packet.sink, Sink::NetworkInterface, "router-sink packets are consumed by interception");
            if self.cfg.faults.drop_ack_nth().is_some() && packet.payload.is_inv_ack() {
                self.acks_observed += 1;
                if self.cfg.faults.drop_ack_nth() == Some(self.acks_observed) {
                    // Fault injection: the acknowledgement vanishes at the
                    // last hop. Counted as consumed so packet conservation
                    // still balances; the *protocol* is what breaks.
                    self.stats.in_flight -= 1;
                    self.stats.consumed += 1;
                    self.stats.acks_dropped_by_fault += 1;
                    return;
                }
            }
            let latency = now.saturating_since(packet.injected_at);
            self.stats.record_delivery(packet.vnet, latency);
            self.stats.in_flight -= 1;
            self.delivered[node].push_back(packet);
        }
    }

    // ---- injection -------------------------------------------------------

    fn inject_phase(&mut self, now: Cycle) {
        let nodes = self.cfg.nodes();
        let vnets = self.cfg.vnets as usize;
        for node in 0..nodes {
            let start = self.inject_rr[node];
            for offset in 0..vnets {
                let vnet = (start + offset) % vnets;
                if self.try_inject_flit(now, node, vnet) {
                    self.inject_rr[node] = vnet + 1;
                    break;
                }
            }
        }
    }

    /// Tries to inject one flit for `vnet` at `node`. Returns whether a
    /// flit entered the router.
    fn try_inject_flit(&mut self, now: Cycle, node: usize, vnet: usize) -> bool {
        let vc_depth = self.cfg.vc_depth as usize;
        let vcs_per_vnet = self.cfg.vcs_per_vnet as usize;
        let local = Port::Local.index();

        if let Some(progress) = self.inject_state[node][vnet] {
            // Continue streaming the in-flight packet.
            let input = &mut self.routers[node].inputs[local][progress.vc];
            if input.occupancy() >= vc_depth {
                return false;
            }
            let sent = progress.sent + 1;
            let tail = sent == progress.total;
            input.flits.push_back(Flit {
                packet_id: progress.packet_id,
                head: None,
                tail,
                eligible_at: now + 1,
            });
            self.routers[node].buffered += 1;
            self.inject_state[node][vnet] =
                (!tail).then_some(InjectProgress { sent, ..progress });
            return true;
        }

        if self.inject[node][vnet].is_empty() {
            return false;
        }
        // Pick a local input VC in this vnet's partition with space. The
        // injector is the only writer of local input VCs and streams one
        // packet per vnet at a time, so any VC with space and no other
        // vnet's in-flight packet is usable; the vnet partition makes the
        // latter impossible by construction.
        let base = vnet * vcs_per_vnet;
        let vc = (base..base + vcs_per_vnet)
            .find(|&vc| self.routers[node].inputs[local][vc].occupancy() < vc_depth);
        let Some(vc) = vc else { return false };
        let Some(packet) = self.inject[node][vnet].pop_front() else { return false };
        // Link-drop fault: the nth REQUEST-class packet vanishes at the
        // injection link instead of entering the mesh. Counted as
        // consumed so packet conservation still balances; the lost
        // request is the recovery layer's problem to retransmit.
        if packet.vnet == VirtualNetwork::REQUEST && self.cfg.faults.link_drop_nth().is_some() {
            self.requests_observed += 1;
            if self.cfg.faults.link_drop_nth() == Some(self.requests_observed) {
                self.stats.in_flight -= 1;
                self.stats.consumed += 1;
                self.stats.requests_dropped_by_fault += 1;
                return false;
            }
        }
        let id = packet.id;
        let total = packet.flits;
        let tail = total == 1;
        // Jitter fault: delay this packet's first switch eligibility by a
        // seeded pseudo-random amount. Body flits queue behind the head in
        // the same VC, so per-packet flit order is unaffected.
        let mut eligible_at = now + 1;
        if let Some(max_extra) = self.cfg.faults.jitter_max() {
            if max_extra > 0 {
                let extra = splitmix_next(&mut self.fault_rng) % (max_extra + 1);
                if extra > 0 {
                    self.stats.jitter_delays += 1;
                    eligible_at = now + 1 + extra;
                }
            }
        }
        self.routers[node].inputs[local][vc].flits.push_back(Flit {
            packet_id: id,
            head: Some(Box::new(packet)),
            tail,
            eligible_at,
        });
        self.routers[node].buffered += 1;
        if !tail {
            self.inject_state[node][vnet] =
                Some(InjectProgress { packet_id: id, vc, sent: 1, total });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::OpaquePayload;

    fn net(cfg: NocConfig) -> Network<OpaquePayload> {
        Network::new(cfg).expect("valid config")
    }

    fn run_until_delivered(
        network: &mut Network<OpaquePayload>,
        dst: CoreId,
        deadline: u64,
    ) -> (Packet<OpaquePayload>, Cycle) {
        let mut now = Cycle::ZERO;
        for _ in 0..deadline {
            network.tick(now);
            if let Some(p) = network.pop_delivered(dst) {
                return (p, now);
            }
            now = now.next();
        }
        panic!("packet not delivered within {deadline} cycles");
    }

    fn msg(src: usize, dst: usize, flits: u8) -> Message<OpaquePayload> {
        Message {
            src: CoreId::new(src),
            dst: CoreId::new(dst),
            sink: Sink::NetworkInterface,
            vnet: VirtualNetwork::REQUEST,
            flits,
            priority: 0,
            payload: OpaquePayload,
        }
    }

    #[test]
    fn single_flit_delivery_and_latency() {
        let mut network = net(NocConfig::baseline());
        // (0,0) -> (3,0): 3 hops.
        network.send(Cycle::ZERO, msg(0, 3, 1));
        let (packet, when) = run_until_delivered(&mut network, CoreId::new(3), 100);
        assert_eq!(packet.src, Coord::new(0, 0));
        assert_eq!(packet.dst, Coord::new(3, 0));
        // 1 cycle injection + 2 cycles per hop + ejection, uncontended.
        let latency = when.saturating_since(packet.injected_at);
        assert!((6..=10).contains(&latency), "unexpected latency {latency}");
        assert_eq!(network.in_flight(), 0);
        assert_eq!(network.stats().delivered, 1);
    }

    #[test]
    fn local_delivery_no_hops() {
        let mut network = net(NocConfig::baseline());
        network.send(Cycle::ZERO, msg(5, 5, 1));
        let (_, when) = run_until_delivered(&mut network, CoreId::new(5), 20);
        assert!(when.as_u64() <= 4);
    }

    #[test]
    fn multi_flit_packet_arrives_whole() {
        let mut network = net(NocConfig::baseline());
        network.send(Cycle::ZERO, msg(0, 63, 8));
        let (packet, _) = run_until_delivered(&mut network, CoreId::new(63), 300);
        assert_eq!(packet.flits, 8);
        assert_eq!(network.in_flight(), 0);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut network = net(NocConfig::baseline());
        let mut now = Cycle::ZERO;
        // Every core sends to the diagonally opposite core.
        for src in 0..64usize {
            network.send(now, msg(src, 63 - src, 1));
        }
        let mut received = 0;
        for _ in 0..2000 {
            network.tick(now);
            for dst in 0..64usize {
                while network.pop_delivered(CoreId::new(dst)).is_some() {
                    received += 1;
                }
            }
            now = now.next();
            if received == 64 {
                break;
            }
        }
        assert_eq!(received, 64);
        assert_eq!(network.in_flight(), 0);
    }

    #[test]
    fn hotspot_traffic_drains() {
        let mut network = net(NocConfig::baseline());
        let mut now = Cycle::ZERO;
        for src in 0..64usize {
            for _ in 0..4 {
                network.send(now, msg(src, 27, 1));
            }
        }
        let mut received = 0;
        for _ in 0..5000 {
            network.tick(now);
            while network.pop_delivered(CoreId::new(27)).is_some() {
                received += 1;
            }
            now = now.next();
        }
        assert_eq!(received, 64 * 4);
        assert_eq!(network.in_flight(), 0);
    }

    #[test]
    fn mixed_sizes_interleave_without_loss() {
        let mut network = net(NocConfig::baseline());
        let mut now = Cycle::ZERO;
        let mut expected = 0;
        for src in 0..8usize {
            network.send(now, msg(src, 60, 8));
            network.send(now, msg(src, 60, 1));
            expected += 2;
        }
        let mut received = 0;
        for _ in 0..3000 {
            network.tick(now);
            while network.pop_delivered(CoreId::new(60)).is_some() {
                received += 1;
            }
            now = now.next();
        }
        assert_eq!(received, expected);
    }

    #[test]
    fn vnets_do_not_block_each_other_at_injection() {
        let mut network = net(NocConfig::baseline());
        let mut now = Cycle::ZERO;
        // Saturate vnet 0 from node 0, then send one vnet-2 packet; it
        // must still get through promptly.
        for _ in 0..50 {
            network.send(now, msg(0, 7, 8));
        }
        let mut m = msg(0, 8, 1);
        m.vnet = VirtualNetwork::RESPONSE;
        network.send(now, m);
        let mut response_seen_at = None;
        for _ in 0..4000 {
            network.tick(now);
            if network.pop_delivered(CoreId::new(8)).is_some() {
                response_seen_at = Some(now);
                break;
            }
            now = now.next();
        }
        let at = response_seen_at.expect("response delivered");
        assert!(at.as_u64() < 100, "response crawled: {at}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut network = net(NocConfig::paper_default());
            let mut now = Cycle::ZERO;
            for src in 0..64usize {
                network.send(now, msg(src, (src * 7 + 3) % 64, if src % 3 == 0 { 8 } else { 1 }));
            }
            let mut log = Vec::new();
            for _ in 0..1500 {
                network.tick(now);
                for dst in 0..64usize {
                    while let Some(p) = network.pop_delivered(CoreId::new(dst)) {
                        log.push((now.as_u64(), dst, p.id.as_u64()));
                    }
                }
                now = now.next();
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn big_router_count_matches_placement() {
        let network = net(NocConfig::paper_default());
        assert_eq!(network.big_router_count(), 32);
        let network = net(NocConfig::baseline());
        assert_eq!(network.big_router_count(), 0);
    }

    #[test]
    fn opaque_payloads_are_never_intercepted() {
        let mut network = net(NocConfig::paper_default());
        let mut now = Cycle::ZERO;
        for src in 0..32usize {
            network.send(now, msg(src, 45, 1));
        }
        let mut received = 0;
        for _ in 0..2000 {
            network.tick(now);
            while network.pop_delivered(CoreId::new(45)).is_some() {
                received += 1;
            }
            now = now.next();
        }
        assert_eq!(received, 32);
        assert_eq!(network.stats().generated_packets, 0);
        assert_eq!(network.barrier_stats().barriers_installed, 0);
    }
}
